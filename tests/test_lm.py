"""Tests for the LM stack: tokenizer, vocab, n-gram LM, transformer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TrainingError
from repro.lm import (
    CodeTokenizer,
    CorpusConfig,
    IncrementalPretrainer,
    NgramLanguageModel,
    TransformerConfig,
    TransformerLM,
    Vocabulary,
    build_corpus,
    pretrain_base_lm,
)
from repro.lm.corpus import code_corpus, nl2code_corpus, nl_corpus, sql_corpus


class TestTokenizer:
    def test_sql_tokens(self):
        tokens = CodeTokenizer().tokenize("SELECT name FROM t WHERE x >= 3")
        assert tokens == ["select", "name", "from", "t", "where", "x", ">=", "<num>"]

    def test_strings_collapse(self):
        tokens = CodeTokenizer().tokenize("WHERE city = 'Praha'")
        assert tokens[-1] == "<str>"

    def test_empty(self):
        assert CodeTokenizer().tokenize("") == []


class TestVocabulary:
    def test_build_and_encode(self):
        vocab = Vocabulary.build(["select a from b", "select c from b"])
        ids = vocab.encode(["select", "a"])
        assert ids[0] == vocab.bos_id and ids[-1] == vocab.eos_id
        assert vocab.decode(ids) == ["select", "a"]

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary.build(["alpha beta"])
        assert vocab.id_of("gamma") == vocab.unk_id

    def test_max_size_cap(self):
        vocab = Vocabulary.build(["a b c d e f g h"], max_size=6)
        assert len(vocab) == 6

    def test_max_size_too_small(self):
        with pytest.raises(TrainingError):
            Vocabulary.build(["a"], max_size=4)

    def test_empty_corpus_raises(self):
        with pytest.raises(TrainingError):
            Vocabulary.build([])

    def test_token_of_out_of_range(self):
        vocab = Vocabulary.build(["a"])
        with pytest.raises(ValueError):
            vocab.token_of(10_000)

    def test_frequency_ordering(self):
        # max_size 5 leaves room for exactly one non-special token: the
        # most frequent one must win.
        vocab = Vocabulary.build(["x x x y"], max_size=5)
        assert "x" in vocab
        assert "y" not in vocab


class TestNgramLM:
    def test_fit_and_score(self):
        lm = NgramLanguageModel(order=3)
        lm.fit(["select a from t"] * 20)
        fluent = lm.mean_log_prob("select a from t")
        weird = lm.mean_log_prob("from from from select")
        assert fluent > weird

    def test_perplexity_drops_with_training(self):
        held_out = sql_corpus(50, seed=99)
        untrained = NgramLanguageModel(order=3)
        untrained.fit(nl_corpus(50, seed=1))
        trained = NgramLanguageModel(order=3)
        trained.fit(sql_corpus(400, seed=1))
        assert trained.perplexity(held_out) < untrained.perplexity(held_out)

    def test_weight_multiplies_counts(self):
        lm_single = NgramLanguageModel(order=2)
        lm_single.fit(["a b"], weight=3)
        lm_triple = NgramLanguageModel(order=2)
        lm_triple.fit(["a b", "a b", "a b"])
        assert lm_single.log_prob("a b") == pytest.approx(lm_triple.log_prob("a b"))

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            NgramLanguageModel(order=0)

    def test_invalid_interpolation(self):
        with pytest.raises(ValueError):
            NgramLanguageModel(interpolation=1.0)

    def test_invalid_weight(self):
        with pytest.raises(TrainingError):
            NgramLanguageModel().fit(["a"], weight=0)

    def test_empty_perplexity_raises(self):
        with pytest.raises(TrainingError):
            NgramLanguageModel().perplexity([])

    def test_higher_order_fits_training_data_better(self):
        corpus = sql_corpus(200, seed=0)
        low = NgramLanguageModel(order=1)
        low.fit(corpus)
        high = NgramLanguageModel(order=4)
        high.fit(corpus)
        assert high.perplexity(corpus[:50]) < low.perplexity(corpus[:50])

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="abc ", max_size=20))
    def test_log_prob_finite(self, text):
        lm = NgramLanguageModel(order=2)
        lm.fit(["a b c"])
        assert np.isfinite(lm.log_prob(text))


class TestTransformer:
    def _tiny_model(self):
        vocab = Vocabulary.build(["select a from t where a > 1"])
        config = TransformerConfig(
            vocab_size=len(vocab), dim=8, n_heads=2, n_layers=2, max_len=16
        )
        return TransformerLM(config, seed=0), vocab

    def test_logits_shape(self):
        model, vocab = self._tiny_model()
        ids = np.array([[1, 2, 3, 4]])
        assert model.logits(ids).shape == (1, 4, len(vocab))

    def test_gradients_match_numerical(self):
        model, vocab = self._tiny_model()
        ids = np.array([[vocab.bos_id, 5, 6, 7, vocab.eos_id]])
        loss, grads = model.loss_and_grads(ids, pad_id=vocab.pad_id)
        params = model.params()
        eps = 1e-5
        rng = np.random.default_rng(0)
        for p_index in range(len(params)):
            flat = params[p_index].ravel()
            flat_grad = grads[p_index].ravel()
            for __ in range(3):
                index = int(rng.integers(0, flat.size))
                original = flat[index]
                flat[index] = original + eps
                loss_plus, _ = model.loss_and_grads(ids, pad_id=vocab.pad_id)
                flat[index] = original - eps
                loss_minus, _ = model.loss_and_grads(ids, pad_id=vocab.pad_id)
                flat[index] = original
                numeric = (loss_plus - loss_minus) / (2 * eps)
                assert numeric == pytest.approx(flat_grad[index], abs=2e-4), (
                    f"param {p_index} entry {index}"
                )

    def test_training_reduces_loss(self):
        model, vocab = self._tiny_model()
        text = "select a from t where a > 1"
        seqs = [vocab.encode(CodeTokenizer().tokenize(text)) for _ in range(8)]
        history = model.fit(seqs, vocab, epochs=15, lr=1e-2)
        assert history[-1] < history[0]

    def test_perplexity_improves_with_training(self):
        model, vocab = self._tiny_model()
        text = "select a from t where a > 1"
        seqs = [vocab.encode(CodeTokenizer().tokenize(text)) for _ in range(8)]
        before = model.perplexity(seqs, vocab)
        model.fit(seqs, vocab, epochs=15, lr=1e-2)
        assert model.perplexity(seqs, vocab) < before

    def test_memorizes_sequence(self):
        model, vocab = self._tiny_model()
        tokens = CodeTokenizer().tokenize("select a from t")
        seq = vocab.encode(tokens)
        model.fit([seq] * 16, vocab, epochs=40, lr=2e-2)
        generated = model.generate([vocab.bos_id, vocab.id_of("select")], vocab)
        decoded = vocab.decode(generated)
        assert decoded[:4] == ["select", "a", "from", "t"]

    def test_causality(self):
        """Changing a future token must not affect earlier logits."""
        model, vocab = self._tiny_model()
        base = np.array([[1, 2, 3, 4]])
        altered = np.array([[1, 2, 3, 9]])
        logits_base = model.logits(base)
        logits_altered = model.logits(altered)
        assert np.allclose(logits_base[0, :3], logits_altered[0, :3])

    def test_sequence_too_long_raises(self):
        model, vocab = self._tiny_model()
        with pytest.raises(TrainingError):
            model.logits(np.zeros((1, 40), dtype=np.int64))

    def test_empty_fit_raises(self):
        model, vocab = self._tiny_model()
        with pytest.raises(TrainingError):
            model.fit([], vocab)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TransformerConfig(vocab_size=10, dim=7, n_heads=2)
        with pytest.raises(ValueError):
            TransformerConfig(vocab_size=0)

    def test_parameter_count_matches_arrays(self):
        model, vocab = self._tiny_model()
        total = sum(p.size for p in model.params())
        assert total == model.config.parameter_count


class TestCorpus:
    def test_deterministic(self):
        assert sql_corpus(10, seed=3) == sql_corpus(10, seed=3)
        assert nl_corpus(5, seed=3) == nl_corpus(5, seed=3)

    def test_slices_differ_by_seed(self):
        assert sql_corpus(10, seed=1) != sql_corpus(10, seed=2)

    def test_sql_docs_are_parseable_mostly(self):
        from repro.sqlgen.skeleton import try_extract_skeleton

        docs = sql_corpus(100, seed=0)
        parseable = sum(1 for doc in docs if try_extract_skeleton(doc))
        assert parseable >= 95

    def test_nl2code_pairs_have_question_header(self):
        docs = nl2code_corpus(20, seed=0)
        assert all(doc.startswith("-- question:") for doc in docs)

    def test_build_corpus_ratio(self):
        corpus = build_corpus(CorpusConfig(sql_docs=11, nl_docs=4, nl2code_docs=6))
        assert len(corpus.sql) == 11
        assert len(corpus.nl) == 4
        assert len(corpus.nl2code) == 6

    def test_code_corpus_is_not_sql(self):
        docs = code_corpus(20, seed=0)
        assert not any(doc.upper().startswith("SELECT") for doc in docs)


class TestPretraining:
    def test_unknown_family_raises(self):
        with pytest.raises(TrainingError):
            pretrain_base_lm("gpt4")

    def test_incremental_improves_sql_perplexity(self):
        corpus = build_corpus(CorpusConfig(seed=0))
        held_out = sql_corpus(80, seed=123)
        base = pretrain_base_lm("starcoder", corpus=corpus)
        before = base.perplexity(held_out)
        codes = IncrementalPretrainer(corpus=corpus).run(base)
        after = codes.perplexity(held_out)
        assert after < before

    def test_incremental_widens_sql_exposure(self):
        corpus = build_corpus(CorpusConfig(seed=0))
        base = pretrain_base_lm("starcoder", corpus=corpus)
        codes = IncrementalPretrainer(corpus=corpus).run(base)
        assert len(codes.seen_sql) > len(base.seen_sql)
        assert codes.incremental

    def test_codegen_sees_less_sql_than_starcoder(self):
        corpus = build_corpus(CorpusConfig(seed=0))
        starcoder = pretrain_base_lm("starcoder", corpus=corpus)
        codegen = pretrain_base_lm("codegen", corpus=corpus)
        assert len(codegen.seen_sql) < len(starcoder.seen_sql)

    def test_history_records_recipe(self):
        corpus = build_corpus(CorpusConfig(seed=0))
        codes = IncrementalPretrainer(corpus=corpus).run(
            pretrain_base_lm("starcoder", corpus=corpus)
        )
        assert any("incremental" in entry for entry in codes.history)
