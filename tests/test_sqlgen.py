"""Tests for the SQL toolkit: lexer, parser, serializer, skeletons."""

import pytest
from hypothesis import given, settings

from repro.errors import SQLSyntaxError
from repro.sqlgen import (
    ColumnRef,
    Literal,
    normalize_sql,
    parse_sql,
    serialize,
    tokenize_sql,
)
from repro.sqlgen.ast import normalize_number
from repro.sqlgen.lexer import TokenKind
from repro.sqlgen.normalizer import same_structure
from repro.sqlgen.skeleton import extract_skeleton, try_extract_skeleton

from tests.strategies import bank_queries, queries


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize_sql("SELECT name FROM users")
        kinds = [token.kind for token in tokens]
        assert kinds == [
            TokenKind.KEYWORD,
            TokenKind.IDENTIFIER,
            TokenKind.KEYWORD,
            TokenKind.IDENTIFIER,
            TokenKind.EOF,
        ]

    def test_string_with_escaped_quote(self):
        tokens = tokenize_sql("SELECT 'it''s'")
        assert tokens[1].kind is TokenKind.STRING
        assert tokens[1].value == "'it''s'"

    def test_quoted_identifier(self):
        tokens = tokenize_sql('SELECT "first name" FROM t')
        assert tokens[1].kind is TokenKind.IDENTIFIER
        assert tokens[1].value == "first name"

    def test_numbers(self):
        tokens = tokenize_sql("SELECT 3.14, 42")
        values = [t.value for t in tokens if t.kind is TokenKind.NUMBER]
        assert values == ["3.14", "42"]

    def test_line_comment_skipped(self):
        tokens = tokenize_sql("SELECT 1 -- trailing comment\n")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1"]

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize_sql("SELECT 'oops")

    def test_stray_character_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize_sql("SELECT @x")

    def test_operators(self):
        tokens = tokenize_sql("a <= b <> c != d")
        ops = [t.value for t in tokens if t.kind is TokenKind.OPERATOR]
        assert ops == ["<=", "<>", "!="]


class TestParser:
    def test_simple_select(self):
        query = parse_sql("SELECT name FROM singer")
        assert query.from_table == "singer"
        assert str(query.select_items[0].expr) == "name"

    def test_select_star(self):
        query = parse_sql("SELECT * FROM t")
        assert query.select_items[0].expr == ColumnRef(table="", column="*")

    def test_aliases_resolved(self):
        query = parse_sql(
            "SELECT T1.name FROM reviewer AS T1 JOIN rating AS T2 ON T1.rid = T2.rid"
        )
        assert query.select_items[0].expr == ColumnRef(table="reviewer", column="name")
        assert query.joins[0].table == "rating"
        assert query.joins[0].left == ColumnRef(table="reviewer", column="rid")

    def test_bare_alias(self):
        query = parse_sql("SELECT a.x FROM widgets a")
        assert query.select_items[0].expr == ColumnRef(table="widgets", column="x")

    def test_where_tree(self):
        query = parse_sql("SELECT x FROM t WHERE a = 1 AND b = 2 OR c = 3")
        # OR binds loosest: OR(AND(a,b), c)
        assert query.where.op == "OR"
        assert query.where.conditions[0].op == "AND"

    def test_in_subquery(self):
        query = parse_sql("SELECT x FROM t WHERE y IN (SELECT z FROM u)")
        assert query.where.subquery is not None
        assert query.where.subquery.from_table == "u"

    def test_not_in_list(self):
        query = parse_sql("SELECT x FROM t WHERE y NOT IN (1, 2, 3)")
        assert query.where.negated
        assert [lit.value for lit in query.where.values] == [1, 2, 3]

    def test_between(self):
        query = parse_sql("SELECT x FROM t WHERE y BETWEEN 1 AND 5")
        assert query.where.low == Literal(1)
        assert query.where.high == Literal(5)

    def test_is_not_null(self):
        query = parse_sql("SELECT x FROM t WHERE y IS NOT NULL")
        assert query.where.negated

    def test_group_having_order_limit(self):
        query = parse_sql(
            "SELECT city, COUNT(*) FROM shops GROUP BY city "
            "HAVING COUNT(*) > 2 ORDER BY COUNT(*) DESC LIMIT 5"
        )
        assert query.group_by[0].column == "city"
        assert query.having is not None
        assert query.order_by[0].descending
        assert query.limit == 5

    def test_union(self):
        query = parse_sql("SELECT a FROM t UNION SELECT b FROM u")
        assert query.compound_op == "UNION"
        assert query.compound_query.from_table == "u"

    def test_scalar_subquery_comparison(self):
        query = parse_sql("SELECT x FROM t WHERE y > (SELECT AVG(y) FROM t)")
        from repro.sqlgen.ast import Query as QueryNode
        assert isinstance(query.where.right, QueryNode)

    def test_negative_number(self):
        query = parse_sql("SELECT x FROM t WHERE y = -5")
        assert query.where.right == Literal(-5)

    def test_distinct_aggregation(self):
        query = parse_sql("SELECT COUNT(DISTINCT name) FROM t")
        assert query.select_items[0].expr.distinct

    def test_trailing_garbage_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT x FROM t extra junk here ,")

    def test_missing_from_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT x WHERE y = 1")

    def test_empty_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("")

    def test_trailing_semicolon_ok(self):
        assert parse_sql("SELECT x FROM t;").from_table == "t"


class TestRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(queries())
    def test_parse_serialize_round_trip(self, query):
        assert parse_sql(serialize(query)) == query

    @settings(max_examples=60, deadline=None)
    @given(queries())
    def test_serialize_is_stable(self, query):
        once = serialize(query)
        assert serialize(parse_sql(once)) == once

    @settings(max_examples=60, deadline=None)
    @given(queries())
    def test_normalize_idempotent(self, query):
        sql = serialize(query)
        assert normalize_sql(normalize_sql(sql)) == normalize_sql(sql)

    @settings(max_examples=100, deadline=None)
    @given(queries())
    def test_canonicalize_idempotent(self, query):
        from repro.analysis import canonical_key, canonicalize

        canonical = canonicalize(query)
        # canonicalization is a fixpoint and its output reparses to itself,
        # so canonical_key is stable under serialize -> parse round-trips.
        assert canonicalize(canonical) == canonical
        assert parse_sql(serialize(canonical)) == canonical
        assert canonical_key(parse_sql(serialize(query))) == canonical_key(query)

    @settings(max_examples=80, deadline=None)
    @given(bank_queries())
    def test_canonicalization_preserves_execution(self, query):
        from repro.analysis import canonicalize
        from repro.eval.execution import execution_match_outcome

        database = _bank_db()
        original = serialize(query)
        canonical = serialize(canonicalize(query))
        outcome = execution_match_outcome(database, canonical, original)
        assert outcome.failure is None, f"{original!r}: {outcome.detail}"
        assert outcome.matched, f"{original!r} != {canonical!r}"


_BANK_DB = None


def _bank_db():
    """Module-level singleton so hypothesis examples share one database."""
    global _BANK_DB
    if _BANK_DB is None:
        from tests.fixtures import bank_database

        _BANK_DB = bank_database()
    return _BANK_DB


class TestNumberNormalization:
    def test_negative_zero_is_zero(self):
        assert normalize_number(-0.0) == "0"
        assert Literal(-0.0).render() == "0"

    def test_integral_float_renders_as_int(self):
        assert normalize_number(3.0) == "3"
        assert normalize_number(-17.0) == "-17"

    def test_small_float_has_no_exponent(self):
        # repr(1e-05) is '1e-05'; the lexer has no exponent form, so the
        # rendered literal must expand to plain decimal notation.
        assert normalize_number(1e-05) == "0.00001"
        assert normalize_number(2.5e-03) == "0.0025"

    def test_plain_float_unchanged(self):
        assert normalize_number(2.5) == "2.5"

    def test_bool_renders_as_int(self):
        assert normalize_number(True) == "1"

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            normalize_number(float("inf"))
        with pytest.raises(ValueError):
            normalize_number(float("nan"))

    def test_rendered_float_reparses(self):
        sql = f"SELECT a FROM t WHERE x = {normalize_number(1e-05)}"
        query = parse_sql(sql)
        assert serialize(query) == sql


class TestNormalizer:
    def test_whitespace_and_case_insensitive(self):
        assert same_structure(
            "select  NAME from Users", "SELECT name FROM users"
        )

    def test_alias_insensitive(self):
        assert same_structure(
            "SELECT T1.x FROM t AS T1",
            "SELECT t.x FROM t",
        )

    def test_unparseable_falls_back(self):
        text = normalize_sql("WITH weird AS (SELECT 1) SELECT * FROM weird;")
        assert "with weird" in text

    def test_different_queries_differ(self):
        assert not same_structure("SELECT a FROM t", "SELECT b FROM t")


class TestSkeleton:
    def test_masks_schema_and_values(self):
        skeleton = extract_skeleton(
            "SELECT name FROM singer WHERE birth_year = 1948"
        )
        assert skeleton == "SELECT _ FROM _ WHERE _ = value"

    def test_keeps_aggregations(self):
        skeleton = extract_skeleton("SELECT COUNT(*) FROM t GROUP BY c")
        assert "COUNT(*)" in skeleton
        assert "GROUP BY _" in skeleton

    def test_same_template_same_skeleton(self):
        first = extract_skeleton("SELECT name FROM singer WHERE age > 30")
        second = extract_skeleton("SELECT title FROM film WHERE year > 1999")
        assert first == second

    def test_try_extract_none_on_garbage(self):
        assert try_extract_skeleton("not sql at all !!!") is None

    @settings(max_examples=60, deadline=None)
    @given(queries())
    def test_skeleton_total_on_subset(self, query):
        skeleton = extract_skeleton(serialize(query))
        assert "SELECT" in skeleton
