"""Tests for the perturbation machinery behind the robustness suites."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.base import Text2SQLExample
from repro.datasets.perturb import (
    VALUE_VARIANTS,
    carrier_question,
    column_attribute_question,
    column_value_question,
    domain_knowledge_question,
    keyword_synonym_question,
    multitype_question,
    others_question,
    realistic_question,
    synonym_question,
    value_synonym_question,
)


def _example(question: str) -> Text2SQLExample:
    return Text2SQLExample(question=question, sql="SELECT 1", db_id="db")


class TestQuestionPerturbations:
    def test_synonym_replaces_schema_words(self):
        rng = random.Random(0)
        out = synonym_question(_example("Show the salary of each employee"), rng)
        assert "pay" in out.question
        assert "salary" not in out.question

    def test_synonym_preserves_case(self):
        rng = random.Random(0)
        out = synonym_question(_example("Salary of employees"), rng)
        assert out.question.startswith("Pay")

    def test_keyword_synonym(self):
        rng = random.Random(0)
        out = keyword_synonym_question(_example("How many cities are there?"), rng)
        assert "what is the count of" in out.question.lower()

    def test_carrier_wraps_question(self):
        rng = random.Random(1)
        out = carrier_question(_example("List the cities."), rng)
        assert out.question.endswith("?")
        assert out.question.lower() != "list the cities."

    def test_realistic_drops_column_mention(self):
        rng = random.Random(0)
        out = realistic_question(
            _example("List the name of singers whose country is France"), rng
        )
        assert "name of" not in out.question

    def test_domain_knowledge_values(self):
        rng = random.Random(0)
        out = domain_knowledge_question(
            _example("How many clients have gender F?"), rng
        )
        assert "female" in out.question.lower()

    def test_value_synonym_changes_value_surface(self):
        rng = random.Random(0)
        out = value_synonym_question(
            _example("Members from the United States only"), rng
        )
        assert "United States" not in out.question

    def test_column_value_drops_column(self):
        rng = random.Random(0)
        out = column_value_question(
            _example("List singers whose country is France"), rng
        )
        assert "country" not in out.question

    def test_column_attribute(self):
        rng = random.Random(0)
        out = column_attribute_question(
            _example("Find the doctor with the highest salary"), rng
        )
        assert "salary" not in out.question

    def test_multitype_composes(self):
        rng = random.Random(0)
        out = multitype_question(
            _example("Show the salary of each employee"), rng
        )
        assert "display" in out.question.lower() or "pay" in out.question.lower()

    def test_sql_never_changes(self):
        rng = random.Random(0)
        for perturb in (
            synonym_question, keyword_synonym_question, carrier_question,
            realistic_question, domain_knowledge_question,
            value_synonym_question, column_value_question,
            column_attribute_question, multitype_question, others_question,
        ):
            out = perturb(_example("Show the salary of each employee"), rng)
            assert out.sql == "SELECT 1"
            assert out.db_id == "db"

    @settings(max_examples=30, deadline=None)
    @given(st.text(alphabet="abcdef XYZ123?.", max_size=50), st.integers(0, 100))
    def test_perturbations_total(self, question, seed):
        rng = random.Random(seed)
        for perturb in (
            synonym_question, keyword_synonym_question, carrier_question,
            realistic_question, value_synonym_question, multitype_question,
        ):
            perturb(_example(question), rng)  # must never raise


class TestValueVariants:
    def test_city_reexpressions_present(self):
        assert VALUE_VARIANTS["Prague"] == "City of Prague"

    def test_semantic_reexpressions_have_no_overlap(self):
        # 'approved' -> 'granted' requires domain knowledge, not string
        # matching: that is what makes DBcontent-equivalence hard.
        assert VALUE_VARIANTS["approved"] == "granted"
        assert "approved" not in VALUE_VARIANTS["approved"]
