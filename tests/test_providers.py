"""LM provider layer — protocol, router, failover, hedging, breakers.

Everything here runs on a :class:`FakeClock` with seeded RNGs, so
routing decisions are byte-stable across runs: same config, same
seeds, same call order → identical events, counters, and effective
latencies.  Run with ``pytest -m providers``.
"""

import json

import pytest

from repro.config import get_model_config
from repro.core import CodeSParser
from repro.errors import (
    AllProvidersOpenError,
    GenerationError,
    ProviderFaultError,
    ProviderTimeoutError,
)
from repro.lm.providers import (
    DeadProvider,
    FlakyProvider,
    LatencyModel,
    LocalLMProvider,
    Provider,
    ProviderCapabilities,
    ProviderResponse,
    ProviderRouter,
    ProviderSpec,
    RemoteProvider,
    RouterConfig,
    build_router,
    local_router,
)
from repro.lm.registry import DEFAULT_LM_REGISTRY, LMRegistry
from repro.reliability import FakeClock, FaultDecider, FlakyLLM, RetryPolicy
from repro.reliability.breaker import OPEN

pytestmark = pytest.mark.providers


@pytest.fixture(scope="module")
def lm():
    return DEFAULT_LM_REGISTRY.lm_for(get_model_config("codes-7b"))


SQL = "SELECT name FROM users WHERE age > 30"


class _ScriptedProvider:
    """A provider whose per-call latency/failure sequence is scripted.

    Each entry in ``script`` is a float (success with that reported
    latency) or an exception instance (raised).  The script wraps
    around when exhausted.
    """

    def __init__(self, name, script, value="SELECT 1"):
        self.name = name
        self.capabilities = ProviderCapabilities()
        self.script = list(script)
        self.value = value
        self.calls = 0

    def _next(self):
        step = self.script[self.calls % len(self.script)]
        self.calls += 1
        if isinstance(step, BaseException):
            raise step
        return ProviderResponse(value=self.value, latency_s=step, provider=self.name)

    def generate(self, prompt):
        return self._next()

    def score(self, text):
        return self._next()

    def health(self):
        from repro.lm.providers import HealthReport

        return HealthReport(provider=self.name, healthy=True)


def _chaos_router(lm, clock, hedge_delay_s=0.02):
    config = RouterConfig(
        providers=(
            ProviderSpec(
                name="primary", kind="flaky", priority=0, failure_rate=0.3, seed=1
            ),
            ProviderSpec(
                name="backup",
                kind="remote",
                priority=1,
                latency_median_s=0.03,
                latency_tail_p=0.05,
                seed=2,
            ),
            ProviderSpec(name="standby", kind="dead", priority=2),
        ),
        retry_max_attempts=2,
        hedge_delay_s=hedge_delay_s,
        probe_interval_s=0.5,
        name="chaos",
    )
    return build_router(config, lm, clock=clock)


class TestProviderProtocol:
    def test_adapters_satisfy_protocol(self, lm):
        local = LocalLMProvider(lm)
        assert isinstance(local, Provider)
        assert isinstance(FlakyProvider(local), Provider)
        assert isinstance(RemoteProvider(local), Provider)
        assert isinstance(DeadProvider(), Provider)

    def test_local_score_matches_lm_exactly(self, lm):
        provider = LocalLMProvider(lm)
        response = provider.score(SQL)
        assert response.value == lm.score(SQL)
        assert response.latency_s == 0.0

    def test_local_generate_returns_seen_sql(self, lm):
        provider = LocalLMProvider(lm)
        response = provider.generate("how many users are there")
        assert response.value in lm.seen_sql

    def test_capabilities_reject_unknown_op(self, lm):
        with pytest.raises(ValueError):
            LocalLMProvider(lm).capabilities.supports("translate")

    def test_flaky_injects_fault_and_timeout(self, lm):
        provider = FlakyProvider(LocalLMProvider(lm), failure_rate=1.0)
        with pytest.raises(ProviderFaultError):
            provider.score(SQL)
        assert provider.injected_failures == 1
        timeouts = FlakyProvider(
            LocalLMProvider(lm), timeout_rate=1.0, timeout_s=2.5
        )
        with pytest.raises(ProviderTimeoutError) as excinfo:
            timeouts.score(SQL)
        assert excinfo.value.latency_s == 2.5

    def test_flaky_health_probe_consumes_fault_draw(self, lm):
        provider = FlakyProvider(LocalLMProvider(lm), failure_rate=1.0)
        report = provider.health()
        assert not report.healthy
        assert provider.injected_failures == 1

    def test_remote_latency_sequence_is_seeded(self, lm):
        def latencies(seed):
            provider = RemoteProvider(
                LocalLMProvider(lm),
                latency=LatencyModel(median_s=0.05, sigma=0.4),
                seed=seed,
            )
            return [provider.score(SQL).latency_s for _ in range(20)]

        assert latencies(7) == latencies(7)
        assert latencies(7) != latencies(8)

    def test_remote_natural_timeout(self, lm):
        provider = RemoteProvider(
            LocalLMProvider(lm),
            latency=LatencyModel(median_s=50.0, sigma=0.01),
            timeout_s=1.0,
        )
        with pytest.raises(ProviderTimeoutError) as excinfo:
            provider.score(SQL)
        assert excinfo.value.latency_s == 1.0
        assert provider.natural_timeouts == 1

    def test_dead_provider_always_fails(self):
        provider = DeadProvider(latency_s=0.2)
        with pytest.raises(ProviderFaultError) as excinfo:
            provider.generate("anything")
        assert excinfo.value.latency_s == 0.2
        assert not provider.health().healthy


class TestRouterParity:
    def test_local_router_score_is_exact(self, lm):
        clock = FakeClock()
        router = local_router(lm, clock=clock)
        assert router.score(SQL) == lm.score(SQL)
        # zero-latency local provider: the clock is never charged.
        assert clock.sleeps == []

    def test_parser_default_router_preserves_lm_scores(self):
        parser = CodeSParser("codes-1b")
        assert parser.router.score(SQL) == parser.lm.score(SQL)


class TestRouterDeterminism:
    def test_routing_history_is_byte_stable_across_runs(self, lm):
        def run():
            clock = FakeClock()
            router = _chaos_router(lm, clock)
            outcomes = []
            for index in range(150):
                try:
                    outcomes.append(router.score(SQL))
                except AllProvidersOpenError:
                    outcomes.append("all-open")
                except (ProviderFaultError, ProviderTimeoutError) as exc:
                    outcomes.append(type(exc).__name__)
                clock.advance(0.01)
            stats = router.stats_dict()
            return (
                json.dumps(stats, sort_keys=True),
                list(router.events),
                list(router.effective_latencies),
                outcomes,
            )

        assert run() == run()

    def test_chaos_mix_reaches_high_availability(self, lm):
        clock = FakeClock()
        router = _chaos_router(lm, clock)
        succeeded = 0
        for _ in range(500):
            try:
                router.score(SQL)
                succeeded += 1
            except (AllProvidersOpenError, ProviderFaultError, ProviderTimeoutError):
                pass
            clock.advance(0.01)
        assert succeeded / 500 >= 0.99
        # failover actually engaged — the mix is not just the primary.
        assert router.failovers > 0


class TestRetriesAndFailover:
    def test_retry_then_success_accounting(self, lm):
        clock = FakeClock()
        fail = ProviderFaultError("boom", latency_s=0.05)
        provider = _ScriptedProvider("p", [fail, 0.01])
        router = ProviderRouter(
            [provider],
            clock=clock,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.1, jitter=0.0),
        )
        assert router.score(SQL) == "SELECT 1"
        assert router.total_retries == 1
        # effective latency = failed latency + backoff + success latency
        assert router.effective_latencies == [
            pytest.approx(0.05 + 0.1 + 0.01)
        ]
        assert clock.sleeps == [pytest.approx(0.16)]

    def test_failover_to_backup_on_exhausted_retries(self, lm):
        clock = FakeClock()
        router = ProviderRouter(
            [
                (DeadProvider(name="dead", latency_s=0.02), 0),
                (_ScriptedProvider("ok", [0.01]), 1),
            ],
            clock=clock,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.1, jitter=0.0),
        )
        result = router.route("score", SQL)
        assert result.value == "SELECT 1"
        assert result.provider == "ok"
        assert result.failovers == 1
        assert router.failovers == 1
        # both dead attempts + backoff + backup latency are charged.
        assert result.effective_latency_s == pytest.approx(
            0.02 + 0.1 + 0.02 + 0.01
        )

    def test_breaker_open_skips_primary_entirely(self, lm):
        clock = FakeClock()
        dead = DeadProvider(name="dead")
        ok = _ScriptedProvider("ok", [0.0])
        router = ProviderRouter(
            [(dead, 0), (ok, 1)],
            clock=clock,
            breaker_failure_threshold=2,
            breaker_recovery_timeout_s=60.0,
        )
        for _ in range(2):
            router.score(SQL)
        assert router.entries[0].breaker.stats.state == OPEN
        calls_before = dead.calls
        router.score(SQL)
        # the open breaker kept the dead provider out of the candidates.
        assert dead.calls == calls_before
        assert router.failovers == 2

    def test_all_providers_open_raises(self, lm):
        clock = FakeClock()
        router = ProviderRouter(
            [DeadProvider(name="d1"), DeadProvider(name="d2")],
            clock=clock,
            breaker_failure_threshold=1,
            breaker_recovery_timeout_s=60.0,
        )
        with pytest.raises(ProviderFaultError):
            router.score(SQL)
        with pytest.raises(AllProvidersOpenError):
            router.score(SQL)
        assert router.all_open_sheds == 1

    def test_generate_requires_capable_provider(self, lm):
        score_only = _ScriptedProvider("scorer", [0.0])
        score_only.capabilities = ProviderCapabilities(can_generate=False)
        router = ProviderRouter([score_only], clock=FakeClock())
        assert router.score(SQL) == "SELECT 1"
        with pytest.raises(ValueError):
            router.generate("question")


class TestHedging:
    def test_backup_wins_slow_primary(self, lm):
        clock = FakeClock()
        router = ProviderRouter(
            [
                (_ScriptedProvider("slow", [0.10], value="A"), 0),
                (_ScriptedProvider("fast", [0.01], value="A"), 1),
            ],
            clock=clock,
            hedge_delay_s=0.02,
        )
        result = router.route("score", SQL)
        assert result.hedged and result.hedge_won
        assert result.provider == "fast"
        # winner completes at hedge_delay + backup latency.
        assert result.effective_latency_s == pytest.approx(0.03)
        assert router.hedges_fired == 1
        assert router.hedge_wins == 1
        assert router.hedge_discarded == 1  # the primary's result

    def test_primary_wins_when_backup_is_slower(self, lm):
        clock = FakeClock()
        router = ProviderRouter(
            [
                (_ScriptedProvider("slowish", [0.05]), 0),
                (_ScriptedProvider("slower", [0.20]), 1),
            ],
            clock=clock,
            hedge_delay_s=0.02,
        )
        result = router.route("score", SQL)
        assert result.hedged and not result.hedge_won
        assert result.provider == "slowish"
        assert result.effective_latency_s == pytest.approx(0.05)
        assert router.hedge_wins == 0
        assert router.hedge_discarded == 1  # the backup's result

    def test_fast_primary_fires_no_hedge(self, lm):
        clock = FakeClock()
        router = ProviderRouter(
            [
                (_ScriptedProvider("fast", [0.01]), 0),
                (_ScriptedProvider("backup", [0.01]), 1),
            ],
            clock=clock,
            hedge_delay_s=0.02,
        )
        result = router.route("score", SQL)
        assert not result.hedged
        assert router.hedges_fired == 0

    def test_failed_hedge_leaves_primary_result(self, lm):
        clock = FakeClock()
        router = ProviderRouter(
            [
                (_ScriptedProvider("slow", [0.10], value="A"), 0),
                (DeadProvider(name="dead"), 1),
            ],
            clock=clock,
            hedge_delay_s=0.02,
        )
        result = router.route("score", SQL)
        assert result.hedged and not result.hedge_won
        assert result.value == "A"
        assert router.hedges_fired == 1
        assert router.hedge_discarded == 0  # the backup produced nothing

    def test_hedging_reduces_p95_on_tail_latency(self, lm):
        def run(hedge_delay_s):
            clock = FakeClock()
            config = RouterConfig(
                providers=(
                    ProviderSpec(
                        name="a",
                        kind="remote",
                        priority=0,
                        latency_median_s=0.03,
                        latency_tail_p=0.10,
                        latency_tail_mult=10.0,
                        seed=3,
                    ),
                    ProviderSpec(
                        name="b",
                        kind="remote",
                        priority=1,
                        latency_median_s=0.03,
                        seed=4,
                    ),
                ),
                hedge_delay_s=hedge_delay_s,
                name="tail",
            )
            router = build_router(config, lm, clock=clock)
            for _ in range(300):
                router.score(SQL)
                clock.advance(0.001)
            return router.latency_quantile(0.95)

        assert run(0.06) < run(None)


class TestProviderBreakerConcurrency:
    def test_half_open_provider_breaker_admits_one_probe_under_race(self, lm):
        # Mirror of the reliability-layer regression test, but on a
        # breaker the router built for a provider: worker threads
        # racing at a freshly half-open provider circuit win exactly
        # one probe between them.
        import threading

        clock = FakeClock()
        router = ProviderRouter(
            [DeadProvider(name="dead")],
            clock=clock,
            breaker_failure_threshold=1,
            breaker_recovery_timeout_s=1.0,
        )
        with pytest.raises(ProviderFaultError):
            router.score(SQL)
        breaker = router.entries[0].breaker
        assert breaker.stats.state == OPEN
        clock.advance(1.0)  # OPEN -> eligible for HALF_OPEN on next admit

        n_threads = 8
        barrier = threading.Barrier(n_threads)
        admitted = []
        admitted_lock = threading.Lock()

        def race():
            barrier.wait()
            if breaker.admit():
                with admitted_lock:
                    admitted.append(threading.current_thread().name)

        threads = [threading.Thread(target=race) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 1


class TestServingIntegration:
    def _server(self, generate):
        from repro.serving import Server, ServeRequest

        class _StubDb:
            pass

        class _StubParser:
            def __init__(self):
                self.generate = generate

        from repro.serving import ServerConfig

        server = Server(
            _StubParser(),
            {"db": _StubDb()},
            config=ServerConfig(),
            clock=FakeClock(),
        )
        return server, ServeRequest(
            request_id="r1", question="q", db_id="db"
        )

    def test_all_providers_open_maps_to_provider_shed(self):
        from repro.serving import ProviderShed

        def generate(question, database, engine=None, effort="full"):
            raise AllProvidersOpenError("router 'x': all providers open")

        server, request = self._server(generate)
        assert server.submit(request) is None
        outcomes = server.drain()
        assert len(outcomes) == 1
        assert isinstance(outcomes[0], ProviderShed)
        assert outcomes[0].status == "provider_shed"
        metrics = server.metrics()
        assert metrics.provider_sheds == 1
        assert metrics.shed.get("provider_shed") == 1
        # the *database* breaker is not charged for a provider outage.
        assert server._breakers["db"].stats.consecutive_failures == 0

    def test_server_metrics_surface_router_stats(self, lm):
        from repro.serving import Server, ServeRequest

        clock = FakeClock()
        parser = CodeSParser("codes-1b", clock=clock)

        class _StubDb:
            pass

        server = Server(parser, {"db": _StubDb()}, clock=clock)
        parser.router.score(SQL)
        metrics = server.metrics()
        assert metrics.provider_requests >= 1
        assert metrics.providers[0]["breaker"]["state"] == "closed"
        rows = metrics.as_rows()
        assert any(row["metric"].startswith("provider ") for row in rows)


class TestRegistryLifecycle:
    def test_router_for_caches_per_config(self):
        registry = LMRegistry()
        config = get_model_config("codes-1b")
        first = registry.router_for(config)
        assert registry.router_for(config) is first
        hedged = registry.router_for(
            config, RouterConfig(hedge_delay_s=0.05)
        )
        assert hedged is not first
        assert registry.stats["routers"] == 2

    def test_router_eviction_and_clear(self):
        registry = LMRegistry(capacity=1)
        config = get_model_config("codes-1b")
        registry.router_for(config)
        registry.router_for(config, RouterConfig(hedge_delay_s=0.05))
        assert registry.stats["routers"] == 1
        assert registry.router_evictions == 1
        registry.clear()
        assert registry.stats["routers"] == 0
        assert registry.router_evictions == 0

    def test_clock_identity_isolates_routers(self):
        registry = LMRegistry()
        config = get_model_config("codes-1b")
        shared = registry.router_for(config)
        isolated = registry.router_for(config, clock=FakeClock())
        assert isolated is not shared


class TestRouterConfig:
    def test_from_dict_roundtrip(self):
        raw = {
            "providers": [
                {"name": "p", "kind": "flaky", "failure_rate": 0.2},
                {"name": "q", "kind": "remote", "priority": 1},
            ],
            "hedge_delay_s": 0.05,
            "retry_max_attempts": 2,
            "name": "parsed",
        }
        config = RouterConfig.from_dict(raw)
        assert config.providers[0].failure_rate == 0.2
        assert config.providers[1].kind == "remote"
        assert config.hedge_delay_s == 0.05

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError):
            RouterConfig.from_dict({"hedge": 1})
        with pytest.raises(ValueError):
            ProviderSpec.from_dict({"name": "p", "kid": "local"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ProviderSpec(name="p", kind="quantum")


class TestFlakyLLMShim:
    def test_shim_sequence_matches_shared_decider(self):
        # The shim keeps the pre-port RNG label, so its fault sequence
        # is exactly what a bare FaultDecider with the same label
        # predicts — the eval harness and router chaos share one core.
        class _Gen:
            def generate(self, question, database, **kwargs):
                return "ok"

        flaky = FlakyLLM(_Gen(), failure_rate=0.4, timeout_rate=0.2, seed=2)
        oracle = FaultDecider(
            failure_rate=0.4, timeout_rate=0.2, seed=2, label="flaky-llm"
        )
        observed = []
        for _ in range(50):
            try:
                flaky.generate("q", None)
                observed.append(None)
            except GenerationError:
                observed.append("failure")
            except Exception:
                observed.append("timeout")
        expected = [oracle.decide()[0] for _ in range(50)]
        assert observed == expected
        assert flaky.injected_failures == oracle.injected_failures
        assert flaky.injected_timeouts == oracle.injected_timeouts

    def test_shim_still_delegates_attributes(self):
        class _Gen:
            tier = "codes-7b"

            def generate(self, question, database, **kwargs):
                return "ok"

        flaky = FlakyLLM(_Gen(), seed=0)
        assert flaky.tier == "codes-7b"
        assert flaky.failure_rate == 0.0


class TestProvidersCLI:
    def test_providers_command_is_byte_stable(self, capsys):
        from repro.cli import main

        argv = ["providers", "--n", "120", "--seed", "3"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "Providers" in first
        assert "availability" in first
