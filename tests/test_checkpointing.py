"""Tests for parser save/load checkpointing."""

import pytest

from repro import CodeSParser, build_spider, evaluate_parser, pair_samples
from repro.datasets.spider import SpiderConfig
from repro.errors import CheckpointError

_SMALL = SpiderConfig(
    n_train_databases=2, n_dev_databases=1,
    train_per_database=12, dev_per_database=8, rows_per_table=20,
)


@pytest.fixture(scope="module")
def spider():
    return build_spider(_SMALL)


class TestCheckpointing:
    def test_save_load_round_trip(self, spider, tmp_path):
        parser = CodeSParser("codes-3b")
        parser.fit(pair_samples(spider))
        path = str(tmp_path / "parser.npz")
        parser.save(path)

        restored = CodeSParser.load(path)
        assert restored.fine_tuned
        assert restored.config.name == "codes-3b"
        original = evaluate_parser(parser, spider)
        reloaded = evaluate_parser(restored, spider)
        assert reloaded.predictions == original.predictions

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            CodeSParser("codes-1b").save(str(tmp_path / "nope.npz"))

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            CodeSParser.load(str(tmp_path / "missing.npz"))

    def test_load_preserves_pattern_flag(self, spider, tmp_path):
        parser = CodeSParser("codes-1b", use_pattern_similarity=False)
        parser.fit(pair_samples(spider))
        path = str(tmp_path / "p.npz")
        parser.save(path)
        assert CodeSParser.load(path).use_pattern_similarity is False
