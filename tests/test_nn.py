"""Tests for the neural substrate: AdamW, cosine schedule, MLP."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TrainingError
from repro.nn import AdamW, CosineSchedule, MLPClassifier


class TestAdamW:
    def test_reduces_quadratic_loss(self):
        param = np.array([5.0])
        optimizer = AdamW([param], lr=0.1, weight_decay=0.0)
        for _ in range(200):
            grad = 2.0 * param.copy()
            optimizer.step([grad])
        assert abs(param[0]) < 0.1

    def test_gradient_clipping(self):
        param = np.zeros(3)
        optimizer = AdamW([param], lr=0.1, clip_norm=1.0)
        grads = [np.array([10.0, 0.0, 0.0])]
        norm = optimizer.step(grads)
        assert norm == pytest.approx(10.0)
        assert np.linalg.norm(grads[0]) <= 1.0 + 1e-9

    def test_weight_decay_shrinks_params(self):
        param = np.array([1.0])
        optimizer = AdamW([param], lr=0.1, weight_decay=0.5)
        optimizer.step([np.array([0.0])])
        assert param[0] < 1.0

    def test_mismatched_grads_raise(self):
        optimizer = AdamW([np.zeros(2)])
        with pytest.raises(ValueError):
            optimizer.step([np.zeros(2), np.zeros(2)])

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            AdamW([np.zeros(1)], lr=0.0)


class TestCosineSchedule:
    def test_starts_at_peak_without_warmup(self):
        schedule = CosineSchedule(peak_lr=1.0, total_steps=100, warmup_fraction=0.0)
        assert schedule.lr_at(0) == pytest.approx(1.0)

    def test_ends_at_final_fraction(self):
        schedule = CosineSchedule(peak_lr=1.0, total_steps=100, final_fraction=0.1)
        assert schedule.lr_at(100) == pytest.approx(0.1)

    def test_warmup_ramps_linearly(self):
        schedule = CosineSchedule(
            peak_lr=1.0, total_steps=100, warmup_fraction=0.1
        )
        assert schedule.lr_at(0) == pytest.approx(0.1)
        assert schedule.lr_at(4) == pytest.approx(0.5)
        assert schedule.lr_at(9) == pytest.approx(1.0)

    def test_monotone_decay_after_warmup(self):
        schedule = CosineSchedule(peak_lr=1.0, total_steps=50, warmup_fraction=0.1)
        rates = [schedule.lr_at(step) for step in range(5, 51)]
        assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))

    def test_clamps_out_of_range_steps(self):
        schedule = CosineSchedule(peak_lr=1.0, total_steps=10)
        assert schedule.lr_at(-5) == schedule.lr_at(0)
        assert schedule.lr_at(999) == schedule.lr_at(10)

    @given(st.integers(min_value=1, max_value=500), st.integers(min_value=0, max_value=500))
    def test_lr_bounded_by_peak(self, total, step):
        schedule = CosineSchedule(peak_lr=1.0, total_steps=total)
        assert 0.0 < schedule.lr_at(step) <= 1.0 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineSchedule(peak_lr=0.0, total_steps=10)
        with pytest.raises(ValueError):
            CosineSchedule(peak_lr=1.0, total_steps=0)
        with pytest.raises(ValueError):
            CosineSchedule(peak_lr=1.0, total_steps=10, warmup_fraction=1.0)


class TestMLP:
    def _xor_data(self):
        features = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.float64)
        labels = np.array([0, 1, 1, 0], dtype=np.float64)
        return features, labels

    def test_learns_xor(self):
        features, labels = self._xor_data()
        model = MLPClassifier(input_dim=2, hidden_dim=8, seed=0)
        model.fit(features, labels, epochs=800, lr=0.05)
        predictions = (model.predict_proba(features) > 0.5).astype(int)
        assert predictions.tolist() == labels.astype(int).tolist()

    def test_loss_decreases(self):
        features, labels = self._xor_data()
        model = MLPClassifier(input_dim=2, hidden_dim=8, seed=0)
        history = model.fit(features, labels, epochs=300, lr=0.05)
        assert history[-1] < history[0]

    def test_gradients_match_numerical(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(6, 3))
        labels = rng.integers(0, 2, size=6).astype(np.float64)
        model = MLPClassifier(input_dim=3, hidden_dim=4, seed=1)
        loss, grads = model.loss_and_grads(features, labels)
        eps = 1e-6
        for param, grad in zip(model.params, grads):
            flat_param = param.ravel()
            flat_grad = grad.ravel()
            for index in range(min(5, flat_param.size)):
                original = flat_param[index]
                flat_param[index] = original + eps
                loss_plus, _ = model.loss_and_grads(features, labels)
                flat_param[index] = original - eps
                loss_minus, _ = model.loss_and_grads(features, labels)
                flat_param[index] = original
                numeric = (loss_plus - loss_minus) / (2 * eps)
                assert numeric == pytest.approx(flat_grad[index], abs=1e-4)

    def test_empty_dataset_raises(self):
        model = MLPClassifier(input_dim=2)
        with pytest.raises(TrainingError):
            model.fit(np.zeros((0, 2)), np.zeros(0))

    def test_dimension_mismatch_raises(self):
        model = MLPClassifier(input_dim=3)
        with pytest.raises(TrainingError):
            model.fit(np.zeros((4, 2)), np.zeros(4))

    def test_label_count_mismatch_raises(self):
        model = MLPClassifier(input_dim=2)
        with pytest.raises(TrainingError):
            model.fit(np.zeros((4, 2)), np.zeros(3))

    def test_state_dict_round_trip(self):
        first = MLPClassifier(input_dim=2, hidden_dim=4, seed=0)
        second = MLPClassifier(input_dim=2, hidden_dim=4, seed=99)
        second.load_state_dict(first.state_dict())
        features = np.array([[0.3, -0.7]])
        assert first.predict_proba(features) == pytest.approx(
            second.predict_proba(features)
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=5))
    def test_probabilities_in_unit_interval(self, n_rows):
        model = MLPClassifier(input_dim=3, hidden_dim=4, seed=0)
        rng = np.random.default_rng(n_rows)
        probs = model.predict_proba(rng.normal(size=(n_rows, 3)) * 10)
        assert np.all(probs >= 0.0) and np.all(probs <= 1.0)
