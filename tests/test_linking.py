"""Tests for schema linking: features, classifier, filter, lexical scorer."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.linking import (
    FEATURE_DIM,
    SchemaFeatureExtractor,
    SchemaFilter,
    SchemaItemClassifier,
)
from repro.linking.classifier import LinkingExample, SchemaScores
from repro.linking.lexical import LexicalSchemaScorer
from repro.retrieval import MatchedValue

from tests.fixtures import bank_database, bank_schema


def _training_examples():
    schema = bank_schema()
    rows = [
        ("How many clients are there?", "SELECT COUNT(*) FROM client"),
        ("List the name of clients in Jesenik",
         "SELECT name FROM client WHERE district = 'Jesenik'"),
        ("What is the balance of account 10?",
         "SELECT balance FROM account WHERE account_id = 10"),
        ("Count approved loans",
         "SELECT COUNT(*) FROM loan WHERE status = 'approved'"),
        ("Show the open date of accounts",
         "SELECT open_date FROM account"),
        ("Names of clients with accounts over 1000",
         "SELECT client.name FROM client JOIN account ON "
         "client.client_id = account.client_id WHERE account.balance > 1000"),
    ] * 3
    return [
        LinkingExample.from_sql(question, schema, sql) for question, sql in rows
    ]


class TestFeatures:
    def test_dimensions(self):
        schema = bank_schema()
        extractor = SchemaFeatureExtractor()
        table_feats = extractor.table_features("how many clients", schema.table("client"))
        assert table_feats.shape == (FEATURE_DIM,)
        col_feats = extractor.column_features(
            "how many clients", schema.table("client"),
            schema.table("client").column("name"),
        )
        assert col_feats.shape == (FEATURE_DIM,)

    def test_mentioned_table_scores_higher_overlap(self):
        schema = bank_schema()
        extractor = SchemaFeatureExtractor()
        client = extractor.table_features("list the clients", schema.table("client"))
        loan = extractor.table_features("list the clients", schema.table("loan"))
        assert client[0] > loan[0]

    def test_comment_feature_respects_toggle(self):
        schema = bank_schema()
        with_comments = SchemaFeatureExtractor(use_comments=True)
        without = SchemaFeatureExtractor(use_comments=False)
        column = schema.table("client").column("gender")
        question = "how many are M or F"
        feats_with = with_comments.column_features(
            question, schema.table("client"), column
        )
        feats_without = without.column_features(
            question, schema.table("client"), column
        )
        assert feats_with[3] > 0.0
        assert feats_without[3] == 0.0

    def test_value_hit_feature(self):
        schema = bank_schema()
        extractor = SchemaFeatureExtractor()
        match = MatchedValue("client", "district", "Jesenik", 1.0)
        feats = extractor.column_features(
            "clients in Jesenik", schema.table("client"),
            schema.table("client").column("district"), [match],
        )
        assert feats[9] == 1.0


class TestClassifier:
    def test_from_sql_labels(self):
        example = LinkingExample.from_sql(
            "names in Jesenik",
            bank_schema(),
            "SELECT name FROM client WHERE district = 'Jesenik'",
        )
        assert "client" in example.gold_tables
        assert "client.district" in example.gold_columns

    def test_from_sql_rejects_garbage(self):
        with pytest.raises(TrainingError):
            LinkingExample.from_sql("q", bank_schema(), "NOT SQL")

    def test_training_improves_auc(self):
        examples = _training_examples()
        classifier = SchemaItemClassifier(seed=0)
        untrained_scores = None
        classifier.fit(examples, epochs=40)
        table_auc, column_auc = classifier.evaluate_auc(examples)
        assert table_auc > 0.85
        assert column_auc > 0.8

    def test_score_schema_keys(self):
        classifier = SchemaItemClassifier(seed=0)
        classifier.fit(_training_examples(), epochs=5)
        scores = classifier.score_schema("how many clients", bank_schema())
        assert set(scores.tables) == {"client", "account", "loan"}
        assert "client.name" in scores.columns

    def test_fit_empty_raises(self):
        with pytest.raises(TrainingError):
            SchemaItemClassifier().fit([])


class TestSchemaScores:
    def _scores(self):
        return SchemaScores(
            tables={"a": 0.9, "b": 0.2, "c": 0.5},
            columns={"a.x": 0.8, "a.y": 0.3, "b.z": 0.9},
        )

    def test_top_tables(self):
        assert self._scores().top_tables(2) == ["a", "c"]

    def test_top_columns_scoped_to_table(self):
        assert self._scores().top_columns("a", 5) == ["x", "y"]

    def test_ties_break_deterministically(self):
        scores = SchemaScores(tables={"b": 0.5, "a": 0.5}, columns={})
        assert scores.top_tables(2) == ["a", "b"]


class TestSchemaFilter:
    def test_untrained_filter_truncates(self):
        schema = bank_schema()
        filtered = SchemaFilter(top_k1=2, top_k2=2).filter("anything", schema)
        assert len(filtered.schema.tables) == 2

    def test_trained_filter_ranks_relevant_table_first(self):
        classifier = SchemaItemClassifier(seed=0)
        classifier.fit(_training_examples(), epochs=40)
        schema = bank_schema()
        filtered = SchemaFilter(classifier, top_k1=1, top_k2=4).filter(
            "how many clients live in Jesenik", schema
        )
        assert filtered.kept_tables[0] == "client"

    def test_training_filter_keeps_used_and_pads(self):
        schema = bank_schema()
        filter_ = SchemaFilter(top_k1=2, top_k2=2)
        filtered = filter_.filter_training(
            "q", schema, "SELECT name FROM client WHERE district = 'Jesenik'"
        )
        assert "client" in filtered.kept_tables
        assert len(filtered.kept_tables) == 2  # padded with one unused table
        kept_cols = {c.lower() for c in filtered.kept_columns["client"]}
        assert {"name", "district"} <= kept_cols

    def test_key_columns_survive_filtering(self):
        schema = bank_schema()
        filtered = SchemaFilter(top_k1=3, top_k2=1).filter("anything", schema)
        client = filtered.schema.table("client")
        assert client.has_column("client_id")
        account = filtered.schema.table("account")
        assert account.has_column("client_id")

    def test_foreign_keys_projected(self):
        schema = bank_schema()
        filtered = SchemaFilter(top_k1=3, top_k2=10).filter("anything", schema)
        assert len(filtered.schema.foreign_keys) == 2

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            SchemaFilter(top_k1=0)


class TestLexicalScorer:
    def test_mentioned_items_rank_first(self):
        scorer = LexicalSchemaScorer()
        scores = scorer.score_schema(
            "what is the balance of accounts", bank_schema()
        )
        assert scores.top_tables(1) == ["account"]
        assert scores.top_columns("account", 1) == ["balance"]

    def test_value_match_boosts_column(self):
        scorer = LexicalSchemaScorer()
        match = MatchedValue("client", "district", "Jesenik", 1.0)
        with_value = scorer.score_schema("people in Jesenik", bank_schema(), [match])
        without = scorer.score_schema("people in Jesenik", bank_schema())
        assert with_value.columns["client.district"] > without.columns["client.district"]
