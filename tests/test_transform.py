"""Tests for structural SQL transforms (rename / literal maps / qualify)."""

import pytest
from hypothesis import given, settings

from repro.sqlgen import parse_sql, serialize
from repro.sqlgen.ast import ColumnRef
from repro.sqlgen.transform import (
    map_literals,
    qualify_columns,
    rename_query,
    transform_query,
)

from tests.strategies import queries


class TestRenameQuery:
    def test_renames_tables_everywhere(self):
        query = parse_sql(
            "SELECT singer.name FROM singer JOIN album "
            "ON singer.singer_id = album.singer_id WHERE singer.country = 'France'"
        )
        renamed = rename_query(query, {"singer": "vocalist"}, {})
        sql = serialize(renamed)
        assert "singer " not in sql.lower()
        assert "FROM vocalist" in sql
        assert "vocalist.name" in sql

    def test_renames_columns_per_table(self):
        query = parse_sql("SELECT t.a FROM t WHERE t.a > 5")
        renamed = rename_query(query, {}, {("t", "a"): "alpha"})
        assert "t.alpha" in serialize(renamed)

    def test_rename_is_scoped_to_table(self):
        query = parse_sql("SELECT t.a, u.a FROM t JOIN u ON t.k = u.k")
        renamed = rename_query(query, {}, {("t", "a"): "alpha"})
        sql = serialize(renamed)
        assert "t.alpha" in sql
        assert "u.a" in sql

    def test_rename_reaches_subqueries(self):
        query = parse_sql("SELECT t.a FROM t WHERE t.b > ( SELECT AVG(t.b) FROM t )")
        renamed = rename_query(query, {"t": "s"}, {("t", "b"): "beta"})
        sql = serialize(renamed)
        assert "FROM s" in sql
        assert "s.beta" in sql
        assert "t.b" not in sql

    @settings(max_examples=50, deadline=None)
    @given(queries())
    def test_identity_rename_is_noop(self, query):
        assert rename_query(query, {}, {}) == query


class TestMapLiterals:
    def test_maps_equality_and_in(self):
        query = parse_sql(
            "SELECT a FROM t WHERE b = 'x' AND c IN ( 'x', 'y' )"
        )
        mapped = map_literals(query, {"x": "z"})
        sql = serialize(mapped)
        assert "'z'" in sql
        assert "'x'" not in sql
        assert "'y'" in sql

    def test_numbers_untouched(self):
        query = parse_sql("SELECT a FROM t WHERE b = 5")
        assert map_literals(query, {"5": "9"}) == query

    @settings(max_examples=50, deadline=None)
    @given(queries())
    def test_empty_map_is_noop(self, query):
        assert map_literals(query, {}) == query


class TestQualifyColumns:
    def test_qualifies_single_table(self):
        query = parse_sql("SELECT name FROM client WHERE district = 'Jesenik'")
        qualified = qualify_columns(query)
        assert "client.name" in qualified.columns_used()
        assert "client.district" in qualified.columns_used()

    def test_leaves_joins_alone(self):
        query = parse_sql("SELECT name FROM a JOIN b ON a.k = b.k")
        assert qualify_columns(query) == query

    def test_star_not_qualified(self):
        query = parse_sql("SELECT * FROM t")
        qualified = qualify_columns(query)
        assert qualified.select_items[0].expr == ColumnRef(table="", column="*")

    @settings(max_examples=50, deadline=None)
    @given(queries())
    def test_idempotent(self, query):
        once = qualify_columns(query)
        assert qualify_columns(once) == once


class TestTransformQuery:
    def test_custom_literal_transform(self):
        query = parse_sql("SELECT a FROM t WHERE b = 'x' OR b = 'y'")
        from repro.sqlgen.ast import Literal

        upper = transform_query(
            query,
            fix_literal=lambda lit: Literal(lit.value.upper())
            if isinstance(lit.value, str) else lit,
        )
        sql = serialize(upper)
        assert "'X'" in sql and "'Y'" in sql

    @settings(max_examples=50, deadline=None)
    @given(queries())
    def test_identity_transform_round_trips(self, query):
        assert transform_query(query) == query
