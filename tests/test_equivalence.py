"""Static equivalence engine: canonicalizer rules, prover verdicts,
gold-set soundness audits against real execution, and the
execution-avoiding integrations (beam dedup, EX short-circuit,
augmentation dedup)."""

import pytest

from repro.analysis import (
    CostEstimator,
    SchemaCatalog,
    Verdict,
    canonical_key,
    canonical_key_sql,
    canonicalize,
    prove_equivalent,
)
from repro.datasets import (
    build_aminer_simplified,
    build_bank_financials,
    build_bird,
    build_dr_spider,
    build_spider,
    build_spider_variant,
)
from repro.datasets.drspider import all_perturbation_names
from repro.eval.execution import execution_match_outcome
from repro.sqlgen import parse_sql, serialize

from tests.fixtures import bank_database

pytestmark = pytest.mark.equivalence


def key(sql: str) -> str:
    return canonical_key(parse_sql(sql))


def same(a: str, b: str) -> bool:
    return key(a) == key(b)


class TestCanonicalizerRules:
    def test_conjunct_order_erased(self):
        assert same(
            "SELECT name FROM client WHERE gender = 'F' AND district = 'Prague'",
            "SELECT name FROM client WHERE district = 'Prague' AND gender = 'F'",
        )

    def test_disjunct_order_erased(self):
        assert same(
            "SELECT name FROM client WHERE gender = 'F' OR district = 'Prague'",
            "SELECT name FROM client WHERE district = 'Prague' OR gender = 'F'",
        )

    def test_nested_same_op_flattened(self):
        assert same(
            "SELECT a FROM t WHERE (x = 1 AND y = 2) AND z = 3",
            "SELECT a FROM t WHERE x = 1 AND (y = 2 AND z = 3)",
        )

    def test_duplicate_conjunct_collapsed(self):
        assert same(
            "SELECT a FROM t WHERE x = 1 AND x = 1",
            "SELECT a FROM t WHERE x = 1",
        )

    def test_between_is_range_pair(self):
        assert same(
            "SELECT amount FROM loan WHERE amount BETWEEN 100 AND 500",
            "SELECT amount FROM loan WHERE amount >= 100 AND amount <= 500",
        )

    def test_in_list_sorted_and_deduped(self):
        assert same(
            "SELECT name FROM client WHERE district IN ('b', 'a', 'b')",
            "SELECT name FROM client WHERE district IN ('a', 'b')",
        )

    def test_single_in_is_equality(self):
        assert same(
            "SELECT name FROM client WHERE district IN ('Prague')",
            "SELECT name FROM client WHERE district = 'Prague'",
        )

    def test_alias_erased_and_join_oriented(self):
        assert same(
            "SELECT T1.name FROM client AS T1 JOIN account AS T2 "
            "ON T1.client_id = T2.client_id",
            "SELECT client.name FROM client JOIN account "
            "ON account.client_id = client.client_id",
        )

    def test_group_by_becomes_distinct(self):
        assert same(
            "SELECT district FROM client GROUP BY district",
            "SELECT DISTINCT district FROM client",
        )

    def test_group_by_not_rewritten_under_order_by(self):
        # GROUP BY emits groups in an engine-chosen order; under ORDER
        # BY ... LIMIT the rewrite could be observable, so it is gated.
        a = "SELECT district FROM client GROUP BY district ORDER BY district LIMIT 2"
        b = "SELECT DISTINCT district FROM client ORDER BY district LIMIT 2"
        assert key(a) != key(b)

    def test_min_distinct_dropped(self):
        assert same(
            "SELECT MIN(DISTINCT balance) FROM account",
            "SELECT MIN(balance) FROM account",
        )

    def test_count_distinct_kept(self):
        assert not same(
            "SELECT COUNT(DISTINCT district) FROM client",
            "SELECT COUNT(district) FROM client",
        )

    def test_literal_float_int_unified_and_operands_flipped(self):
        assert same(
            "SELECT name FROM client WHERE 20.0 < client_id",
            "SELECT name FROM client WHERE client_id > 20",
        )

    def test_union_arm_order_erased(self):
        assert same(
            "SELECT name FROM client UNION SELECT district FROM client",
            "SELECT district FROM client UNION SELECT name FROM client",
        )

    def test_except_arm_order_kept(self):
        assert not same(
            "SELECT name FROM client EXCEPT SELECT district FROM client",
            "SELECT district FROM client EXCEPT SELECT name FROM client",
        )

    def test_identifier_case_erased(self):
        assert same(
            "SELECT Name FROM CLIENT",
            "SELECT name FROM client",
        )

    def test_string_literal_case_preserved(self):
        assert not same(
            "SELECT name FROM client WHERE district = 'Prague'",
            "SELECT name FROM client WHERE district = 'prague'",
        )

    def test_canonicalize_idempotent_and_reparseable(self):
        sql = (
            "SELECT T1.name FROM client AS T1 JOIN account AS T2 "
            "ON T1.client_id = T2.client_id "
            "WHERE T2.balance BETWEEN 10 AND 99.0 AND T1.gender IN ('F')"
        )
        canonical = canonicalize(parse_sql(sql))
        assert canonicalize(canonical) == canonical
        assert parse_sql(serialize(canonical)) == canonical

    def test_unparseable_key_falls_back_to_text(self):
        assert canonical_key_sql("WITH x AS (SELECT 1)  SELECT * FROM x;") == (
            "WITH x AS (SELECT 1) SELECT * FROM x"
        )


class TestProver:
    @pytest.fixture(scope="class")
    def catalog(self):
        return SchemaCatalog.from_database(bank_database())

    def test_equivalent_rewrites(self, catalog):
        verdict = prove_equivalent(
            "SELECT name FROM client WHERE gender = 'F' AND district = 'Prague'",
            "SELECT name FROM client WHERE district = 'Prague' AND gender = 'F'",
            catalog,
        )
        assert verdict is Verdict.EQUIVALENT

    def test_arity_mismatch_is_distinct(self, catalog):
        verdict = prove_equivalent(
            "SELECT name FROM client",
            "SELECT name, gender FROM client",
            catalog,
        )
        assert verdict is Verdict.DISTINCT

    def test_star_arity_via_catalog(self, catalog):
        verdict = prove_equivalent(
            "SELECT * FROM client",
            "SELECT client_id, name, gender, district FROM client",
            catalog,
        )
        # same arity, same tables — not provable either way.
        assert verdict is Verdict.UNKNOWN

    def test_different_tables_is_distinct(self, catalog):
        verdict = prove_equivalent(
            "SELECT name FROM client",
            "SELECT status FROM loan",
            catalog,
        )
        assert verdict is Verdict.DISTINCT

    def test_different_predicate_is_unknown(self, catalog):
        verdict = prove_equivalent(
            "SELECT name FROM client WHERE gender = 'F'",
            "SELECT name FROM client WHERE gender = 'M'",
            catalog,
        )
        assert verdict is Verdict.UNKNOWN

    def test_unparseable_is_unknown(self, catalog):
        verdict = prove_equivalent(
            "WITH x AS (SELECT 1) SELECT * FROM x",
            "SELECT name FROM client",
            catalog,
        )
        assert verdict is Verdict.UNKNOWN

    def test_no_catalog_still_proves(self):
        verdict = prove_equivalent(
            "SELECT amount FROM loan WHERE amount BETWEEN 1 AND 2",
            "SELECT amount FROM loan WHERE amount >= 1 AND amount <= 2",
        )
        assert verdict is Verdict.EQUIVALENT


class TestCostEstimator:
    def test_orders_by_work(self):
        estimator = CostEstimator(SchemaCatalog.from_database(bank_database()))
        single = estimator.estimate_sql("SELECT name FROM client")
        joined = estimator.estimate_sql(
            "SELECT client.name FROM client JOIN account "
            "ON account.client_id = client.client_id "
            "JOIN loan ON loan.account_id = account.account_id"
        )
        broken = estimator.estimate_sql("SELECT FROM WHERE")
        assert single < joined < broken

    def test_filtered_cheaper_than_unfiltered(self):
        estimator = CostEstimator(SchemaCatalog.from_database(bank_database()))
        base = "SELECT client.name FROM client JOIN account ON account.client_id = client.client_id"
        assert (
            estimator.estimate_sql(base + " WHERE client.client_id = 1")
            < estimator.estimate_sql(base + " ORDER BY client.name")
        )


def _audit(dataset, max_pairs: int = 4000) -> None:
    """Soundness: every EQUIVALENT within-database gold pair must
    produce identical execution results on the bundled database."""
    catalogs: dict[str, SchemaCatalog] = {}
    by_db: dict[str, list] = {}
    for example in [*dataset.train, *dataset.dev]:
        by_db.setdefault(example.db_id, []).append(example)
    divergent: list[str] = []
    checked = 0
    for db_id, examples in by_db.items():
        database = dataset.databases[db_id]
        catalog = catalogs.setdefault(
            db_id, SchemaCatalog.from_database(database)
        )
        for i in range(len(examples)):
            for j in range(i + 1, len(examples)):
                if checked >= max_pairs:
                    break
                a, b = examples[i].sql, examples[j].sql
                checked += 1
                if prove_equivalent(a, b, catalog) is not Verdict.EQUIVALENT:
                    continue
                outcome = execution_match_outcome(database, a, b)
                if not outcome.matched:
                    divergent.append(
                        f"{db_id}: {a!r} vs {b!r} ({outcome.failure or 'mismatch'})"
                    )
    assert not divergent, "EQUIVALENT-but-divergent pairs:\n" + "\n".join(divergent)


def _audit_canonical_execution(dataset, max_examples: int = 200) -> None:
    """Soundness: each gold query and its canonical form execute to the
    same result (per the harness's own match semantics)."""
    divergent: list[str] = []
    for example in [*dataset.train, *dataset.dev][:max_examples]:
        try:
            canonical = serialize(canonicalize(parse_sql(example.sql)))
        except Exception:  # pragma: no cover - unparseable gold is not audited
            continue
        database = dataset.databases[example.db_id]
        outcome = execution_match_outcome(database, canonical, example.sql)
        if not outcome.matched:
            divergent.append(
                f"{example.db_id}: {example.sql!r} -> {canonical!r} "
                f"({outcome.failure or 'mismatch'})"
            )
    assert not divergent, "canonicalization changed execution:\n" + "\n".join(divergent)


class TestGoldSetSoundness:
    """The prover's EQUIVALENT verdict is audited against real
    execution on every bundled benchmark — zero divergences allowed."""

    @pytest.mark.parametrize(
        "builder",
        [
            build_spider,
            build_bird,
            build_bank_financials,
            build_aminer_simplified,
            lambda: build_spider_variant("spider-syn"),
            lambda: build_spider_variant("spider-realistic"),
            lambda: build_spider_variant("spider-dk"),
        ],
        ids=[
            "spider",
            "bird",
            "bank_financials",
            "aminer_simplified",
            "spider-syn",
            "spider-realistic",
            "spider-dk",
        ],
    )
    def test_equivalent_pairs_execute_identically(self, builder):
        dataset = builder()
        _audit(dataset)
        _audit_canonical_execution(dataset)

    def test_dr_spider_equivalent_pairs_execute_identically(self):
        spider = build_spider()
        for perturbation in all_perturbation_names():
            dataset = build_dr_spider(perturbation, spider=spider)
            _audit(dataset, max_pairs=1000)


class TestBeamDedupIntegration:
    def test_injected_duplicates_collapsed_end_to_end(self):
        from repro.core import CodeSParser
        from repro.eval import pair_samples
        from repro.reliability import BeamDuplicator, SchemaHallucinator

        # Duplicating an *executable* top candidate saves nothing: the
        # beam stops at its first execution either way.  The savings
        # the dedup buys appear when a failing candidate is duplicated
        # — each duplicate would cost its own doomed round-trip — so
        # the duplicator runs over a hallucinated (failing) head, with
        # the lint gate off so execution actually pays for failures.
        dataset = build_bank_financials()
        hallucinator = SchemaHallucinator(rate=1.0, n_candidates=1, seed=0)
        duplicator = BeamDuplicator(rate=1.0, n_duplicates=2, seed=0)
        parser = CodeSParser(
            "codes-1b",
            lint_gate=False,
            beam_perturber=lambda beam: duplicator(hallucinator(beam)),
        )
        parser.fit(pair_samples(dataset))
        example = dataset.dev[0]
        database = dataset.databases[example.db_id]
        result = parser.generate(example.question, database)
        assert duplicator.injected_duplicates > 0
        assert result.beam_deduped == duplicator.injected_duplicates
        assert result.executions_avoided > 0
        # dedup never changes the answer: the chosen SQL still executes
        # to the same rows as the dedup-off parser's choice.
        plain = CodeSParser("codes-1b", equivalence_dedup=False)
        plain.fit(pair_samples(dataset))
        baseline = plain.generate(example.question, database)
        outcome = execution_match_outcome(database, result.sql, baseline.sql)
        assert outcome.matched

    def test_dedup_off_reports_zero(self):
        from repro.core import CodeSParser
        from repro.eval import pair_samples

        dataset = build_bank_financials()
        parser = CodeSParser("codes-1b", equivalence_dedup=False)
        parser.fit(pair_samples(dataset))
        example = dataset.dev[0]
        result = parser.generate(
            example.question, dataset.databases[example.db_id]
        )
        assert result.beam_deduped == 0


class TestHarnessShortCircuit:
    def test_static_equivalent_counted_and_ex_preserved(self):
        from repro.core import CodeSParser
        from repro.eval import evaluate_parser, pair_samples

        dataset = build_bank_financials()
        parser = CodeSParser("codes-1b")
        parser.fit(pair_samples(dataset))
        static = evaluate_parser(parser, dataset, split="dev")
        executed = evaluate_parser(parser, dataset, split="dev", static_eval=False)
        assert executed.static_equivalent == 0
        assert static.ex == executed.ex
        assert static.static_equivalent >= 0
        assert (
            static.executions_avoided
            >= executed.executions_avoided + 2 * static.static_equivalent
        )


class TestAugmentDedup:
    def test_surface_variant_pairs_collapsed(self):
        from repro.augment.pipeline import dedupe_canonical
        from repro.datasets.base import Text2SQLExample

        pairs = [
            Text2SQLExample(
                question="How many clients?",
                sql="SELECT count(*) FROM client WHERE gender = 'F' AND district = 'Prague'",
                db_id="bank",
            ),
            Text2SQLExample(
                question="How  many   clients?",
                sql="SELECT count(*) FROM client WHERE district = 'Prague' AND gender = 'F'",
                db_id="bank",
            ),
            Text2SQLExample(
                question="Count the female Prague clients.",
                sql="SELECT count(*) FROM client WHERE gender = 'F' AND district = 'Prague'",
                db_id="bank",
            ),
        ]
        unique = dedupe_canonical(pairs)
        # pair 2 is a surface variant of pair 1 (same question modulo
        # whitespace, same canonical SQL); pair 3 is a fresh phrasing.
        assert unique == [pairs[0], pairs[2]]
