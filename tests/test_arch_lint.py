"""Architectural lint (scripts/arch_lint.py) — rules + repo-wide gate."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "arch_lint", REPO_ROOT / "scripts" / "arch_lint.py"
)
arch_lint = importlib.util.module_from_spec(_spec)
sys.modules["arch_lint"] = arch_lint
_spec.loader.exec_module(arch_lint)


def _rules(
    source: str,
    clock_exempt: bool = False,
    identifier_exempt: bool = False,
    engine_exempt: bool = False,
    pipeline_exempt: bool = False,
    concurrency_exempt: bool = False,
    provider_exempt: bool = False,
    provider_banned: bool = False,
) -> list[str]:
    return [
        v.rule
        for v in arch_lint.lint_source(
            source,
            "mod.py",
            clock_exempt=clock_exempt,
            identifier_exempt=identifier_exempt,
            engine_exempt=engine_exempt,
            pipeline_exempt=pipeline_exempt,
            concurrency_exempt=concurrency_exempt,
            provider_exempt=provider_exempt,
            provider_banned=provider_banned,
        )
    ]


class TestRawClockRule:
    def test_time_time_flagged(self):
        assert _rules("import time\nstart = time.time()\n") == ["ARCH001"]

    def test_perf_counter_flagged(self):
        assert _rules("import time\nt = time.perf_counter()\n") == ["ARCH001"]

    def test_monotonic_flagged(self):
        assert _rules("import time\nt = time.monotonic()\n") == ["ARCH001"]

    def test_datetime_now_flagged(self):
        source = "import datetime\nnow = datetime.datetime.now()\n"
        assert _rules(source) == ["ARCH001"]

    def test_clock_protocol_usage_clean(self):
        source = (
            "from repro.reliability.clock import SYSTEM_CLOCK\n"
            "start = SYSTEM_CLOCK.now()\n"
        )
        assert _rules(source) == []

    def test_clock_module_exempt(self):
        assert _rules("import time\nt = time.monotonic()\n", clock_exempt=True) == []

    def test_unrelated_attribute_call_clean(self):
        # the linter keys on the receiver name, so `obj.time()` and
        # `clockwork.perf_counter()` do not trip ARCH001.
        assert _rules("value = obj.time()\n") == []
        assert _rules("t = clockwork.perf_counter()\n") == []


class TestBlanketExceptRule:
    def test_swallowing_handler_flagged(self):
        source = "try:\n    work()\nexcept Exception:\n    result = None\n"
        assert _rules(source) == ["ARCH002"]

    def test_bare_except_flagged(self):
        source = "try:\n    work()\nexcept:\n    pass\n"
        assert _rules(source) == ["ARCH002"]

    def test_base_exception_in_tuple_flagged(self):
        source = "try:\n    work()\nexcept (ValueError, BaseException):\n    pass\n"
        assert _rules(source) == ["ARCH002"]

    def test_reraise_allowed(self):
        source = (
            "try:\n    work()\nexcept Exception as exc:\n"
            "    raise ReproError('wrapped') from exc\n"
        )
        assert _rules(source) == []

    def test_taxonomy_classification_allowed(self):
        source = (
            "try:\n    work()\nexcept Exception:\n"
            "    failures['generation_failed'] += 1\n"
        )
        assert _rules(source) == []

    def test_narrow_handler_ignored(self):
        source = "try:\n    work()\nexcept ValueError:\n    pass\n"
        assert _rules(source) == []


class TestLowerComparisonRule:
    def test_lower_equality_flagged(self):
        assert _rules("ok = a.lower() == b.lower()\n") == ["ARCH003"]

    def test_one_sided_lower_equality_flagged(self):
        # one-sided normalization is the classic drift bug ARCH003 exists for.
        assert _rules("ok = name.lower() == target\n") == ["ARCH003"]

    def test_lower_inequality_flagged(self):
        assert _rules("ok = a.lower() != b.lower()\n") == ["ARCH003"]

    def test_casefold_equality_flagged(self):
        assert _rules("ok = a.casefold() == b.casefold()\n") == ["ARCH003"]

    def test_membership_lookup_allowed(self):
        # normalized-key dict/set lookups are the sanctioned catalog pattern.
        assert _rules("ok = name.lower() in mapping\n") == []
        assert _rules("ok = name.lower() not in seen\n") == []

    def test_lower_with_arguments_ignored(self):
        # only the no-arg str case normalizers count; obj.lower(x) is
        # some other API.
        assert _rules("ok = obj.lower(x) == other\n") == []

    def test_identifier_owners_exempt(self):
        source = "ok = a.lower() == b.lower()\n"
        assert _rules(source, identifier_exempt=True) == []

    def test_identifier_key_usage_clean(self):
        source = (
            "from repro.sqlgen.ast import identifier_key\n"
            "ok = identifier_key(a) == identifier_key(b)\n"
        )
        assert _rules(source) == []


class TestEngineEncapsulationRule:
    def test_direct_stage_internals_import_flagged(self):
        assert _rules("import repro.engine._stages\n") == ["ARCH004"]

    def test_from_stage_internals_import_flagged(self):
        source = "from repro.engine._stages import RankStage\n"
        assert _rules(source) == ["ARCH004"]

    def test_submodule_spelling_flagged(self):
        source = "from repro.engine import _stages\n"
        assert _rules(source) == ["ARCH004"]

    def test_public_engine_api_clean(self):
        source = "from repro.engine import build_default_engine, Engine\n"
        assert _rules(source) == []

    def test_engine_package_exempt(self):
        source = "from repro.engine._stages import default_stages\n"
        assert _rules(source, engine_exempt=True) == []

    def test_pipeline_reimplementation_flagged(self):
        source = (
            "from repro.core.slotfill import instantiate_template\n"
            "from repro.core.ranking import lint_gated_order\n"
        )
        assert _rules(source) == ["ARCH004"]

    def test_single_ingredient_clean(self):
        # importing one private ingredient alone is not a pipeline.
        assert _rules("from repro.core.slotfill import instantiate_template\n") == []
        assert _rules("from repro.core.ranking import lint_gated_order\n") == []

    def test_pipeline_owners_exempt(self):
        source = (
            "from repro.core.slotfill import instantiate_template\n"
            "from repro.core.ranking import lint_gated_order\n"
        )
        assert _rules(source, pipeline_exempt=True) == []


class TestConcurrencyRule:
    def test_threading_import_flagged(self):
        assert _rules("import threading\n") == ["ARCH005"]

    def test_from_threading_import_flagged(self):
        assert _rules("from threading import Lock\n") == ["ARCH005"]

    def test_queue_and_multiprocessing_flagged(self):
        assert _rules("import queue\n") == ["ARCH005"]
        assert _rules("import multiprocessing\n") == ["ARCH005"]
        assert _rules("from concurrent.futures import ThreadPoolExecutor\n") == [
            "ARCH005"
        ]

    def test_one_violation_per_import_statement(self):
        assert _rules("import threading, queue\n") == ["ARCH005"]

    def test_prefix_match_does_not_catch_lookalikes(self):
        # "queueing" is not the stdlib queue module.
        assert _rules("import queueing\nimport threadless\n") == []

    def test_serving_and_reliability_exempt(self):
        source = "import threading\nfrom queue import Queue\n"
        assert _rules(source, concurrency_exempt=True) == []


class TestProviderEncapsulationRule:
    def test_impl_submodule_import_flagged(self):
        assert _rules("from repro.lm.providers.router import ProviderRouter\n") == [
            "ARCH006"
        ]
        assert _rules("from repro.lm.providers.sim import FlakyProvider\n") == [
            "ARCH006"
        ]
        assert _rules("import repro.lm.providers.local\n") == ["ARCH006"]

    def test_submodule_spelling_flagged(self):
        assert _rules("from repro.lm.providers import router\n") == ["ARCH006"]

    def test_package_api_clean_outside_banned_zones(self):
        # the package facade is the public API (e.g. the CLI uses it).
        source = "from repro.lm.providers import ProviderRouter, RouterConfig\n"
        assert _rules(source) == []

    def test_protocol_and_config_submodules_clean(self):
        # base (protocol) and config (declarative data) are not
        # implementations — e.g. the parser's typing-only import.
        assert _rules("from repro.lm.providers.base import Provider\n") == []
        assert _rules("from repro.lm.providers.config import RouterConfig\n") == []

    def test_everything_banned_in_engine_and_serving(self):
        # engine/ and serving/ may not touch the package at all.
        for source in (
            "from repro.lm.providers import ProviderRouter\n",
            "from repro.lm.providers.base import Provider\n",
            "import repro.lm.providers\n",
        ):
            assert _rules(source, provider_banned=True) == ["ARCH006"]

    def test_providers_package_and_registry_exempt(self):
        source = "from repro.lm.providers.router import ProviderRouter\n"
        assert _rules(source, provider_exempt=True) == []

    def test_lookalike_module_clean(self):
        assert _rules("import repro.lm.providers_ext\n") == []


class TestRepoGate:
    def test_src_repro_has_no_violations(self):
        violations = arch_lint.lint_tree(REPO_ROOT / "src" / "repro")
        rendered = "\n".join(v.render() for v in violations)
        assert not violations, f"architecture violations:\n{rendered}"

    def test_main_exit_status(self):
        assert arch_lint.main([str(REPO_ROOT / "src" / "repro")]) == 0
