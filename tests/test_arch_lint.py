"""Architectural rules (repro.staticcheck) — rules + repo-wide gate.

The old ``scripts/arch_lint.py`` kwarg-based exemptions became
path-based rule scoping: passing ``path="reliability/clock.py"`` to
:func:`repro.staticcheck.check_source` exercises the ARCH001
allowlist the same way the tree walk does.
"""

import importlib.util
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.staticcheck import check_source, check_tree, load_baseline

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "arch_lint", REPO_ROOT / "scripts" / "arch_lint.py"
)
arch_lint = importlib.util.module_from_spec(_spec)
sys.modules["arch_lint"] = arch_lint
_spec.loader.exec_module(arch_lint)


def _rules(source: str, path: str = "mod.py") -> list[str]:
    return [finding.rule for finding in check_source(source, path=path)]


class TestRawClockRule:
    def test_time_time_flagged(self):
        assert _rules("import time\nstart = time.time()\n") == ["ARCH001"]

    def test_perf_counter_flagged(self):
        assert _rules("import time\nt = time.perf_counter()\n") == ["ARCH001"]

    def test_monotonic_flagged(self):
        assert _rules("import time\nt = time.monotonic()\n") == ["ARCH001"]

    def test_datetime_now_flagged(self):
        source = "import datetime\nnow = datetime.datetime.now()\n"
        assert _rules(source) == ["ARCH001"]

    def test_aliased_import_flagged(self):
        # the old regex-era check keyed on the receiver being literally
        # "time"; the ImportTable resolves aliases.
        assert _rules("import time as t\nstart = t.time()\n") == ["ARCH001"]

    def test_from_import_flagged(self):
        source = "from time import monotonic\nt = monotonic()\n"
        assert _rules(source) == ["ARCH001"]

    def test_from_import_datetime_flagged(self):
        source = "from datetime import datetime\nnow = datetime.now()\n"
        assert _rules(source) == ["ARCH001"]

    def test_multiline_call_flagged(self):
        source = "import time\nt = time.perf_counter(\n)\n"
        assert _rules(source) == ["ARCH001"]

    def test_clock_protocol_usage_clean(self):
        source = (
            "from repro.reliability.clock import SYSTEM_CLOCK\n"
            "start = SYSTEM_CLOCK.now()\n"
        )
        assert _rules(source) == []

    def test_clock_module_exempt(self):
        source = "import time\nt = time.monotonic()\n"
        assert _rules(source, path="reliability/clock.py") == []

    def test_unrelated_attribute_call_clean(self):
        # `obj.time()` resolves to "obj.time", not the time module.
        assert _rules("value = obj.time()\n") == []
        assert _rules("t = clockwork.perf_counter()\n") == []

    def test_local_shadowing_is_not_the_clock(self):
        # a local callable named monotonic without the import is not
        # time.monotonic.
        assert _rules("t = monotonic()\n") == []


class TestBlanketExceptRule:
    def test_swallowing_handler_flagged(self):
        source = "try:\n    work()\nexcept Exception:\n    result = None\n"
        assert _rules(source) == ["ARCH002"]

    def test_bare_except_flagged(self):
        source = "try:\n    work()\nexcept:\n    pass\n"
        assert _rules(source) == ["ARCH002"]

    def test_base_exception_in_tuple_flagged(self):
        source = "try:\n    work()\nexcept (ValueError, BaseException):\n    pass\n"
        assert _rules(source) == ["ARCH002"]

    def test_reraise_allowed(self):
        source = (
            "try:\n    work()\nexcept Exception as exc:\n"
            "    raise ReproError('wrapped') from exc\n"
        )
        assert _rules(source) == []

    def test_taxonomy_classification_allowed(self):
        source = (
            "try:\n    work()\nexcept Exception:\n"
            "    failures['generation_failed'] += 1\n"
        )
        assert _rules(source) == []

    def test_narrow_handler_ignored(self):
        source = "try:\n    work()\nexcept ValueError:\n    pass\n"
        assert _rules(source) == []


class TestLowerComparisonRule:
    def test_lower_equality_flagged(self):
        assert _rules("ok = a.lower() == b.lower()\n") == ["ARCH003"]

    def test_one_sided_lower_equality_flagged(self):
        # one-sided normalization is the classic drift bug ARCH003 exists for.
        assert _rules("ok = name.lower() == target\n") == ["ARCH003"]

    def test_lower_inequality_flagged(self):
        assert _rules("ok = a.lower() != b.lower()\n") == ["ARCH003"]

    def test_casefold_equality_flagged(self):
        assert _rules("ok = a.casefold() == b.casefold()\n") == ["ARCH003"]

    def test_membership_lookup_allowed(self):
        # normalized-key dict/set lookups are the sanctioned catalog pattern.
        assert _rules("ok = name.lower() in mapping\n") == []
        assert _rules("ok = name.lower() not in seen\n") == []

    def test_lower_with_arguments_ignored(self):
        # only the no-arg str case normalizers count; obj.lower(x) is
        # some other API.
        assert _rules("ok = obj.lower(x) == other\n") == []

    def test_identifier_owners_exempt(self):
        source = "ok = a.lower() == b.lower()\n"
        assert _rules(source, path="sqlgen/mod.py") == []
        assert _rules(source, path="analysis/mod.py") == []

    def test_identifier_key_usage_clean(self):
        source = (
            "from repro.sqlgen.ast import identifier_key\n"
            "ok = identifier_key(a) == identifier_key(b)\n"
        )
        assert _rules(source) == []


class TestEngineEncapsulationRule:
    def test_direct_stage_internals_import_flagged(self):
        assert _rules("import repro.engine._stages\n") == ["ARCH004"]

    def test_from_stage_internals_import_flagged(self):
        source = "from repro.engine._stages import RankStage\n"
        assert _rules(source) == ["ARCH004"]

    def test_submodule_spelling_flagged(self):
        source = "from repro.engine import _stages\n"
        assert _rules(source) == ["ARCH004"]

    def test_public_engine_api_clean(self):
        source = "from repro.engine import build_default_engine, Engine\n"
        assert _rules(source) == []

    def test_engine_package_exempt(self):
        source = "from repro.engine._stages import default_stages\n"
        assert _rules(source, path="engine/mod.py") == []

    def test_pipeline_reimplementation_flagged(self):
        source = (
            "from repro.core.slotfill import instantiate_template\n"
            "from repro.core.ranking import lint_gated_order\n"
        )
        assert _rules(source) == ["ARCH004"]

    def test_single_ingredient_clean(self):
        # importing one private ingredient alone is not a pipeline.
        assert _rules("from repro.core.slotfill import instantiate_template\n") == []
        assert _rules("from repro.core.ranking import lint_gated_order\n") == []

    def test_pipeline_owners_exempt(self):
        source = (
            "from repro.core.slotfill import instantiate_template\n"
            "from repro.core.ranking import lint_gated_order\n"
        )
        assert _rules(source, path="core/mod.py") == []
        assert _rules(source, path="engine/mod.py") == []


class TestConcurrencyRule:
    def test_threading_import_flagged(self):
        assert _rules("import threading\n") == ["ARCH005"]

    def test_from_threading_import_flagged(self):
        assert _rules("from threading import Lock\n") == ["ARCH005"]

    def test_queue_and_multiprocessing_flagged(self):
        assert _rules("import queue\n") == ["ARCH005"]
        # process-level primitives also break the stricter ARCH008 zone
        assert _rules("import multiprocessing\n") == ["ARCH005", "ARCH008"]
        assert _rules("from concurrent.futures import ThreadPoolExecutor\n") == [
            "ARCH005",
            "ARCH008",
        ]

    def test_one_violation_per_import_statement(self):
        assert _rules("import threading, queue\n") == ["ARCH005"]

    def test_prefix_match_does_not_catch_lookalikes(self):
        # "queueing" is not the stdlib queue module.
        assert _rules("import queueing\nimport threadless\n") == []

    def test_serving_and_reliability_exempt(self):
        source = "import threading\nfrom queue import Queue\n"
        assert _rules(source, path="serving/mod.py") == []
        assert _rules(source, path="reliability/mod.py") == []


class TestIPCContainmentRule:
    def test_multiprocessing_import_flagged_even_in_serving(self):
        # serving/ satisfies ARCH005, but only sharding/ may fork.
        assert _rules("import multiprocessing\n", path="serving/mod.py") == [
            "ARCH008"
        ]
        assert _rules(
            "from concurrent.futures import ProcessPoolExecutor\n",
            path="serving/worker.py",
        ) == ["ARCH008"]
        assert _rules("import multiprocessing\n", path="reliability/mod.py") == [
            "ARCH008"
        ]

    def test_pipe_construction_flagged(self):
        source = "import multiprocessing\na, b = multiprocessing.Pipe()\n"
        assert _rules(source, path="serving/mod.py") == ["ARCH008", "ARCH008"]

    def test_aliased_pipe_construction_flagged(self):
        source = "import multiprocessing as mp\na, b = mp.Pipe()\n"
        assert _rules(source, path="serving/mod.py") == ["ARCH008", "ARCH008"]

    def test_from_import_queue_construction_flagged(self):
        source = "from multiprocessing import Queue\nq = Queue()\n"
        assert _rules(source, path="serving/mod.py") == ["ARCH008", "ARCH008"]

    def test_sharding_transport_exempt(self):
        source = (
            "import multiprocessing\n"
            "a, b = multiprocessing.Pipe()\n"
            "p = multiprocessing.get_context('fork')\n"
        )
        assert _rules(source, path="serving/sharding/transport.py") == []
        assert _rules(source, path="serving/sharding/mod.py") == []

    def test_lookalike_modules_clean(self):
        assert _rules("import multiprocessing_utils\n") == []
        assert _rules("import concurrent_log\n") == []

    def test_threading_not_this_rules_business(self):
        # thread primitives stay ARCH005's concern; serving/ is legal.
        assert _rules("import threading\n", path="serving/mod.py") == []


class TestProviderEncapsulationRule:
    def test_impl_submodule_import_flagged(self):
        assert _rules("from repro.lm.providers.router import ProviderRouter\n") == [
            "ARCH006"
        ]
        assert _rules("from repro.lm.providers.sim import FlakyProvider\n") == [
            "ARCH006"
        ]
        assert _rules("import repro.lm.providers.local\n") == ["ARCH006"]

    def test_submodule_spelling_flagged(self):
        assert _rules("from repro.lm.providers import router\n") == ["ARCH006"]

    def test_package_api_clean_outside_banned_zones(self):
        # the package facade is the public API (e.g. the CLI uses it).
        source = "from repro.lm.providers import ProviderRouter, RouterConfig\n"
        assert _rules(source) == []

    def test_protocol_and_config_submodules_clean(self):
        # base (protocol) and config (declarative data) are not
        # implementations — e.g. the parser's typing-only import.
        assert _rules("from repro.lm.providers.base import Provider\n") == []
        assert _rules("from repro.lm.providers.config import RouterConfig\n") == []

    def test_everything_banned_in_engine_and_serving(self):
        # engine/ and serving/ may not touch the package at all.
        for source in (
            "from repro.lm.providers import ProviderRouter\n",
            "from repro.lm.providers.base import Provider\n",
            "import repro.lm.providers\n",
        ):
            assert _rules(source, path="engine/mod.py") == ["ARCH006"]
            assert _rules(source, path="serving/mod.py") == ["ARCH006"]

    def test_providers_package_and_registry_exempt(self):
        source = "from repro.lm.providers.router import ProviderRouter\n"
        assert _rules(source, path="lm/providers/mod.py") == []
        assert _rules(source, path="lm/registry.py") == []

    def test_lookalike_module_clean(self):
        assert _rules("import repro.lm.providers_ext\n") == []


class TestRepoGate:
    """The whole tree passes the full registry with the repo baseline."""

    def test_src_repro_has_no_violations(self):
        baseline = load_baseline(REPO_ROOT / "staticcheck_baseline.json")
        result = check_tree(REPO_ROOT / "src" / "repro", baseline=baseline)
        rendered = "\n".join(f.render() for f in result.findings)
        assert not result.findings, f"staticcheck violations:\n{rendered}"
        assert not result.stale_baseline, (
            f"stale baseline entries: {result.stale_baseline}"
        )

    def test_shim_exit_status(self):
        assert arch_lint.main([str(REPO_ROOT / "src" / "repro")]) == 0

    def test_json_output_is_byte_stable_across_hash_seeds(self):
        """``repro check --format json`` must not depend on PYTHONHASHSEED."""
        outputs = []
        for seed in ("0", "42"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            proc = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "check",
                    "--root",
                    str(REPO_ROOT / "src" / "repro"),
                    "--format",
                    "json",
                    "--baseline",
                    str(REPO_ROOT / "staticcheck_baseline.json"),
                ],
                capture_output=True,
                env=env,
                cwd=REPO_ROOT,
            )
            assert proc.returncode == 0, proc.stdout.decode() + proc.stderr.decode()
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        payload = json.loads(outputs[0])
        assert payload["ok"] is True
