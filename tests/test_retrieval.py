"""Tests for BM25, LCS, and the coarse-to-fine value retriever."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.retrieval import (
    BM25Index,
    ValueRetriever,
    lcs_match_degree,
    longest_common_substring,
)

from tests.fixtures import bank_database


class TestBM25:
    def _index(self):
        index = BM25Index()
        index.add_all(
            [
                (0, "Jesenik"),
                (1, "Prague"),
                (2, "Sarah Martinez"),
                (3, "James Chen"),
                (4, "approved"),
                (5, "rejected"),
            ]
        )
        return index

    def test_exact_term_ranks_first(self):
        hits = self._index().search("clients in the Jesenik branch")
        assert hits[0].doc_id == 0

    def test_multiword_document(self):
        hits = self._index().search("who is Sarah Martinez")
        assert hits[0].doc_id == 2

    def test_no_match_returns_empty(self):
        assert self._index().search("zzz qqq") == []

    def test_top_k_limits(self):
        index = BM25Index()
        for i in range(20):
            index.add(i, "common term")
        assert len(index.search("common", top_k=5)) == 5

    def test_top_k_zero(self):
        assert self._index().search("Jesenik", top_k=0) == []

    def test_empty_index(self):
        assert BM25Index().search("anything") == []

    def test_scores_non_increasing(self):
        index = BM25Index()
        index.add_all([(i, f"value {w}") for i, w in enumerate("abcdef")])
        hits = index.search("value a b")
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_rare_term_scores_higher_than_common(self):
        index = BM25Index()
        for i in range(10):
            index.add(i, "common")
        index.add(99, "rareterm")
        hits = index.search("common rareterm")
        assert hits[0].doc_id == 99

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BM25Index(k1=-1.0)
        with pytest.raises(ValueError):
            BM25Index(b=1.5)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.text(alphabet="abcde ", min_size=1, max_size=12), max_size=8),
           st.text(alphabet="abcde ", max_size=12))
    def test_search_never_crashes(self, docs, query):
        index = BM25Index()
        index.add_all(list(enumerate(docs)))
        hits = index.search(query)
        assert all(hit.score > 0.0 for hit in hits)


class TestLCS:
    def test_basic(self):
        assert longest_common_substring("the Jesenik branch", "Jesenik") == "Jesenik"

    def test_case_insensitive_keeps_right_casing(self):
        assert longest_common_substring("jesenik", "Jesenik") == "Jesenik"

    def test_empty_inputs(self):
        assert longest_common_substring("", "abc") == ""
        assert longest_common_substring("abc", "") == ""

    def test_no_overlap(self):
        assert longest_common_substring("xyz", "abc") == ""

    def test_degree_full_containment(self):
        assert lcs_match_degree("accounts in Jesenik branch", "Jesenik") == 1.0

    def test_degree_partial(self):
        degree = lcs_match_degree("Jese", "Jesenik")
        assert degree == pytest.approx(4 / 7)

    def test_degree_empty_value(self):
        assert lcs_match_degree("anything", "") == 0.0

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=20), st.text(max_size=20))
    def test_lcs_is_substring_of_both(self, left, right):
        shared = longest_common_substring(left, right)
        assert shared.lower() in left.lower()
        assert shared.lower() in right.lower()

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=20), st.text(max_size=20))
    def test_lcs_symmetric_length(self, left, right):
        assert len(longest_common_substring(left, right)) == len(
            longest_common_substring(right, left)
        )

    @settings(max_examples=40, deadline=None)
    @given(st.text(min_size=1, max_size=20))
    def test_degree_identity(self, text):
        assert lcs_match_degree(text, text) == 1.0


class TestValueRetriever:
    def test_finds_mentioned_value(self):
        retriever = ValueRetriever(bank_database())
        matches = retriever.retrieve("How many clients live in Jesenik?")
        rendered = [match.render() for match in matches]
        assert "client.district = 'Jesenik'" in rendered

    def test_finds_person(self):
        retriever = ValueRetriever(bank_database())
        matches = retriever.retrieve("What is the balance of Sarah Martinez?")
        assert any(match.value == "Sarah Martinez" for match in matches)

    def test_irrelevant_question_no_matches(self):
        retriever = ValueRetriever(bank_database(), min_degree=0.6)
        assert retriever.retrieve("completely unrelated gibberish zzz") == []

    def test_exhaustive_agrees_on_top_match(self):
        retriever = ValueRetriever(bank_database())
        question = "clients from Jesenik"
        coarse = retriever.retrieve(question)
        exhaustive = retriever.retrieve_exhaustive(question)
        assert coarse[0].value == exhaustive[0].value

    def test_max_matches_respected(self):
        retriever = ValueRetriever(bank_database(), max_matches=1, min_degree=0.1)
        matches = retriever.retrieve("approved rejected Jesenik Prague")
        assert len(matches) == 1

    def test_indexed_value_count(self):
        retriever = ValueRetriever(bank_database())
        assert retriever.indexed_value_count > 0

    def test_render_escapes_quotes(self):
        from repro.retrieval import MatchedValue

        match = MatchedValue(table="t", column="c", value="O'Brien", degree=1.0)
        assert match.render() == "t.c = 'O''Brien'"

    def test_invalid_coarse_k(self):
        with pytest.raises(ValueError):
            ValueRetriever(bank_database(), coarse_k=0)
