"""Multi-dialect emitters, execution backends, and conformance.

Covers the dialect layer end to end: byte-parity of the SQLite emitter
with the historical serializer, corpus-wide round-trip properties
(every bundled gold query survives emission → parse unchanged), the
ANSI golden transpilations, the columnar backend's SQLite-compatible
semantics, capability-gated analyzer rules, the cross-dialect
conformance suite (including an engineered divergence it must catch),
and the ``repro conformance`` CLI exit-code contract.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro import cli
from repro.analysis import SchemaCatalog
from repro.analysis.analyzer import SemanticAnalyzer
from repro.analysis.diagnostics import DIALECT_CASE_FOLD
from repro.db import Database
from repro.db.backends import (
    COLUMNAR_CAPABILITIES,
    SQLITE_CAPABILITIES,
    ColumnarBackend,
    ExecutionBackend,
    available_backends,
    backend_dialect,
    backend_for_dialect,
    create_backend,
    register_backend,
)
from repro.db.backends import base as backends_base
from repro.errors import (
    DeadlineExceededError,
    ExecutionError,
    SQLSyntaxError,
)
from repro.eval.conformance import (
    bundled_dataset_builders,
    run_conformance,
)
from repro.reliability import Deadline, FakeClock
from repro.sqlgen.dialects import (
    available_dialects,
    emitter_for,
    parse_dialect_sql,
    serialize_dialect,
    transpile,
)
from repro.sqlgen.parser import parse_sql
from repro.sqlgen.serializer import serialize
from tests.fixtures import bank_database

pytestmark = pytest.mark.dialects

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _gold_corpus():
    """Every bundled gold SQL string, deduplicated, with its set name."""
    corpus = []
    seen = set()
    for name, build in bundled_dataset_builders().items():
        dataset = build()
        for split in (dataset.train, dataset.dev):
            for example in split:
                if example.sql not in seen:
                    seen.add(example.sql)
                    corpus.append((name, example.sql))
    return corpus


# ---------------------------------------------------------------------------
# dialect registry and emitters


class TestDialectRegistry:
    def test_bundled_dialects_registered_in_order(self):
        assert available_dialects()[:3] == ("sqlite", "ansi", "tsql")

    def test_unknown_dialect_is_a_keyerror_naming_the_known(self):
        with pytest.raises(KeyError, match="sqlite"):
            emitter_for("postgres")

    def test_sqlite_emitter_is_byte_identical_to_serializer(self):
        for _, sql in _gold_corpus():
            query = parse_sql(sql)
            assert serialize_dialect(query, "sqlite") == serialize(query)


class TestRoundTripProperty:
    """Emission is the identity under re-parsing, for every dialect."""

    def test_sqlite_emission_round_trips_every_gold_query(self):
        for name, sql in _gold_corpus():
            query = parse_sql(sql)
            again = parse_sql(serialize(query))
            assert again == query, f"{name}: {sql!r}"

    def test_ansi_and_tsql_transpilations_parse_back_to_the_same_ast(self):
        for name, sql in _gold_corpus():
            query = parse_sql(sql)
            for dialect in ("ansi", "tsql"):
                text = serialize_dialect(query, dialect)
                again = parse_dialect_sql(text, dialect)
                assert again == query, f"{name}/{dialect}: {text!r}"

    def test_tsql_top_handles_subqueries_and_compounds(self):
        for sql in (
            "SELECT name FROM client WHERE id IN "
            "(SELECT client_id FROM account LIMIT 2) LIMIT 3",
            "SELECT DISTINCT name FROM client LIMIT 1",
            "SELECT name FROM client UNION SELECT name FROM client LIMIT 4",
        ):
            query = parse_sql(sql)
            text = serialize_dialect(query, "tsql")
            assert parse_dialect_sql(text, "tsql") == query


class TestAnsiGolden:
    def test_transpilations_match_the_golden_file(self):
        payload = json.loads(
            (GOLDEN_DIR / "dialect_ansi.json").read_text(encoding="utf-8")
        )
        assert payload["dialect"] == "ansi"
        assert payload["entries"], "golden file must not be empty"
        for entry in payload["entries"]:
            assert transpile(entry["sqlite"], "ansi") == entry["ansi"]
            assert parse_dialect_sql(entry["ansi"], "ansi") == parse_sql(
                entry["sqlite"]
            )

    def test_sentinel_is_outside_the_transpilable_subset(self):
        with pytest.raises(SQLSyntaxError):
            transpile("SELECT 1", "ansi")


# ---------------------------------------------------------------------------
# backend protocol and registry


class TestBackendRegistry:
    def test_bundled_backends_registered(self):
        assert ("sqlite", "columnar") == available_backends()[:2]

    def test_sqlite_factory_is_the_identity(self):
        database = bank_database()
        assert create_backend("sqlite", database) is database

    def test_unknown_backend_raises_execution_error(self):
        with pytest.raises(ExecutionError, match="columnar"):
            create_backend("duckdb", bank_database())

    def test_backend_for_dialect_maps_both_ways(self):
        assert backend_for_dialect("sqlite") == "sqlite"
        assert backend_for_dialect("ansi") == "columnar"
        with pytest.raises(ExecutionError, match="ansi"):
            backend_for_dialect("postgres")

    def test_both_backends_satisfy_the_runtime_protocol(self):
        database = bank_database()
        assert isinstance(database, ExecutionBackend)
        assert isinstance(
            ColumnarBackend.from_database(database), ExecutionBackend
        )

    def test_backend_dialect_defaults_for_legacy_objects(self):
        assert backend_dialect(object()) == "sqlite"
        assert backend_dialect(bank_database()) == "sqlite"
        assert (
            backend_dialect(ColumnarBackend.from_database(bank_database()))
            == "ansi"
        )

    def test_capability_flags_differ_between_backends(self):
        assert SQLITE_CAPABILITIES.limit_style == "limit"
        assert COLUMNAR_CAPABILITIES.limit_style == "fetch_first"
        assert COLUMNAR_CAPABILITIES.inequality == "<>"
        assert COLUMNAR_CAPABILITIES.identifier_quote == '"'


# ---------------------------------------------------------------------------
# the columnar executor


class TestColumnarExecutor:
    def _pair(self):
        database = bank_database()
        return database, ColumnarBackend.from_database(database)

    def _both(self, sqlite_db, backend, sql, ordered=False):
        reference = sqlite_db.execute(sql)
        rows = backend.execute(transpile(sql, "ansi"))
        if ordered:
            assert rows == reference
        else:
            assert sorted(map(repr, rows)) == sorted(map(repr, reference))

    def test_matches_sqlite_on_representative_queries(self):
        sqlite_db, backend = self._pair()
        for sql in (
            "SELECT name FROM client WHERE district != 'Prague'",
            "SELECT count(*) FROM account WHERE balance BETWEEN 100 AND 5000",
            "SELECT client.name, account.balance FROM client JOIN account "
            "ON client.client_id = account.client_id WHERE account.balance > 400",
            "SELECT district, count(*) FROM client GROUP BY district "
            "HAVING count(*) > 1",
            "SELECT name FROM client WHERE client_id IN "
            "(SELECT client_id FROM account WHERE balance > 1000)",
            "SELECT avg(amount) FROM loan WHERE status = 'approved'",
        ):
            self._both(sqlite_db, backend, sql)

    def test_order_and_limit_match_sqlite(self):
        sqlite_db, backend = self._pair()
        self._both(
            sqlite_db,
            backend,
            "SELECT name FROM client ORDER BY name LIMIT 3",
            ordered=True,
        )

    def test_sentinel_select_executes_without_from(self):
        _, backend = self._pair()
        assert backend.execute("SELECT 1") == [(1,)]
        assert backend.is_executable("SELECT 1")

    def test_bad_sql_raises_execution_error(self):
        _, backend = self._pair()
        with pytest.raises(ExecutionError):
            backend.execute("SELECT nope FROM nothing")

    def test_expired_deadline_raises(self):
        _, backend = self._pair()
        clock = FakeClock()
        deadline = Deadline.after(0.5, clock=clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError):
            backend.execute(
                'SELECT "name" FROM "client"', deadline=deadline
            )

    def test_like_is_case_insensitive_by_default(self):
        sqlite_db, backend = self._pair()
        sql = "SELECT name FROM client WHERE name LIKE 'sarah%'"
        assert backend.execute(transpile(sql, "ansi")) == sqlite_db.execute(sql)
        assert len(backend.execute(transpile(sql, "ansi"))) == 1

    def test_flipping_like_case_sensitivity_changes_the_match_set(self):
        _, backend = self._pair()
        strict = backend.with_capabilities(like_case_sensitive=True)
        sql = transpile(
            "SELECT name FROM client WHERE name LIKE 'sarah%'", "ansi"
        )
        assert len(backend.execute(sql)) == 1
        assert strict.execute(sql) == []

    def test_value_api_mirrors_sqlite(self):
        sqlite_db, backend = self._pair()
        assert backend.row_count("client") == sqlite_db.row_count("client")
        assert backend.table_rows("loan") == sqlite_db.table_rows("loan")
        assert backend.all_rows() == sqlite_db.all_rows()
        assert backend.distinct_values(
            "client", "district"
        ) == sqlite_db.distinct_values("client", "district")
        assert backend.representative_values(
            "account", "balance"
        ) == sqlite_db.representative_values("account", "balance")


# ---------------------------------------------------------------------------
# capability-gated analysis


class TestCapabilityGatedAnalyzer:
    def _analyzer(self, capabilities):
        catalog = SchemaCatalog.from_database(bank_database())
        return SemanticAnalyzer(catalog, capabilities=capabilities)

    def test_no_case_fold_warning_on_the_reference_backend(self):
        analyzer = self._analyzer(SQLITE_CAPABILITIES)
        diags = analyzer.analyze_sql(
            "SELECT name FROM client WHERE name LIKE 'Sar%'"
        )
        assert not [d for d in diags if d.code == DIALECT_CASE_FOLD]

    def test_case_sensitive_backend_warns_on_letter_patterns(self):
        strict = dataclasses.replace(
            COLUMNAR_CAPABILITIES, like_case_sensitive=True
        )
        analyzer = self._analyzer(strict)
        diags = analyzer.analyze_sql(
            transpile("SELECT name FROM client WHERE name LIKE 'Sar%'", "ansi")
        )
        assert [d for d in diags if d.code == DIALECT_CASE_FOLD]

    def test_no_warning_for_letterless_patterns(self):
        strict = dataclasses.replace(
            COLUMNAR_CAPABILITIES, like_case_sensitive=True
        )
        analyzer = self._analyzer(strict)
        diags = analyzer.analyze_sql(
            transpile(
                "SELECT name FROM client WHERE district LIKE '199%'", "ansi"
            )
        )
        assert not [d for d in diags if d.code == DIALECT_CASE_FOLD]

    def test_analyzer_parses_in_the_backend_dialect(self):
        analyzer = self._analyzer(COLUMNAR_CAPABILITIES)
        diags = analyzer.analyze_sql(
            'SELECT "name" FROM "client" FETCH FIRST 2 ROWS ONLY'
        )
        assert diags == []


# ---------------------------------------------------------------------------
# conformance suite


@pytest.fixture
def restore_backend_registry():
    backends = dict(backends_base._BACKENDS)
    dialects = dict(backends_base._BACKEND_DIALECTS)
    yield
    backends_base._BACKENDS.clear()
    backends_base._BACKENDS.update(backends)
    backends_base._BACKEND_DIALECTS.clear()
    backends_base._BACKEND_DIALECTS.update(dialects)


class _RowDroppingBackend(ColumnarBackend):
    """Engineered defect: silently drops the last row of every result."""

    name = "row-dropper"

    def execute(self, sql, max_rows=100_000, deadline=None):
        rows = super().execute(sql, max_rows=max_rows, deadline=deadline)
        return rows[:-1] if rows else rows


class TestConformanceSuite:
    def test_every_bundled_gold_set_conforms(self):
        report = run_conformance()
        assert report.total_examples > 4000
        assert len(report.datasets) == 24
        assert any(name.startswith("dr-spider-") for name in report.datasets)
        columnar = report.reports["columnar"]
        assert columnar.dialect == "ansi"
        assert columnar.ok, report.render()
        assert columnar.matched == columnar.executed
        assert columnar.divergent == 0 and columnar.errors == 0

    def test_engineered_divergence_is_detected(self, restore_backend_registry):
        register_backend(
            "row-dropper", _RowDroppingBackend.from_database, dialect="ansi"
        )
        datasets = [bundled_dataset_builders()["bank-financials"]()]
        report = run_conformance(datasets=datasets, backends=["row-dropper"])
        assert not report.ok
        dropper = report.reports["row-dropper"]
        assert dropper.divergent > 0
        assert dropper.divergences, "divergent examples must be recorded"
        assert "FAIL" in report.render()


class TestConformanceCLI:
    def test_exit_zero_when_conformant(self, capsys):
        assert cli.main(["conformance", "--dataset", "bank-financials"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "columnar" in out

    def test_exit_two_on_unknown_backend(self, capsys):
        assert cli.main(["conformance", "--backend", "duckdb"]) == 2

    def test_exit_two_on_unknown_dataset(self, capsys):
        assert cli.main(["conformance", "--dataset", "nope"]) == 2

    def test_exit_two_on_reference_backend(self, capsys):
        assert cli.main(["conformance", "--backend", "sqlite"]) == 2

    def test_exit_one_on_divergence(self, capsys, restore_backend_registry):
        register_backend(
            "row-dropper", _RowDroppingBackend.from_database, dialect="ansi"
        )
        code = cli.main(
            [
                "conformance",
                "--dataset",
                "bank-financials",
                "--backend",
                "row-dropper",
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# harness and serving integration


class _EchoGoldParser:
    """Stub generator answering with the (transpiled) gold SQL."""

    def __init__(self, by_question, dialect):
        self.by_question = by_question
        self.dialect = dialect

    def generate(self, question, database, **kwargs):
        sql = transpile(self.by_question[question], self.dialect)

        class _Result:
            pass

        result = _Result()
        result.sql = sql
        result.tier = "beam"
        return result


class TestHarnessDialect:
    def test_evaluate_parser_scores_full_marks_on_the_ansi_backend(self):
        from repro.eval.harness import evaluate_parser

        dataset = bundled_dataset_builders()["bank-financials"]()
        by_question = {
            example.question: example.sql for example in dataset.dev
        }
        parser = _EchoGoldParser(by_question, "ansi")
        result = evaluate_parser(parser, dataset, dialect="ansi", name="echo")
        assert result.ex == 1.0
        assert result.n_scored == len(dataset.dev)

    def test_non_sqlite_dialect_rejects_ts_and_ves(self):
        from repro.eval.harness import evaluate_parser

        dataset = bundled_dataset_builders()["bank-financials"]()
        parser = _EchoGoldParser({}, "ansi")
        with pytest.raises(ValueError, match="sqlite"):
            evaluate_parser(parser, dataset, dialect="ansi", compute_ts=True)


class TestServerBackendConfig:
    def test_server_adapts_databases_into_the_configured_backend(self):
        from repro.serving import Server, ServerConfig

        database = bank_database()
        server = Server(
            parser=_EchoGoldParser({}, "ansi"),
            databases={"bank": database},
            config=ServerConfig(backend="columnar"),
        )
        adapted = server.databases["bank"]
        assert isinstance(adapted, ColumnarBackend)
        assert backend_dialect(adapted) == "ansi"

    def test_default_backend_is_the_identity(self):
        from repro.serving import Server, ServerConfig

        database = bank_database()
        server = Server(
            parser=_EchoGoldParser({}, "sqlite"),
            databases={"bank": database},
            config=ServerConfig(),
        )
        assert server.databases["bank"] is database

    def test_unknown_backend_fails_at_construction(self):
        from repro.serving import Server, ServerConfig

        with pytest.raises(ExecutionError, match="duckdb"):
            Server(
                parser=_EchoGoldParser({}, "sqlite"),
                databases={"bank": bank_database()},
                config=ServerConfig(backend="duckdb"),
            )


class TestEngineOnColumnarBackend:
    def test_generation_emits_executable_ansi_sql(self):
        from repro.core import CodeSParser
        from repro.eval.harness import pair_samples

        dataset = bundled_dataset_builders()["bank-financials"]()
        parser = CodeSParser("codes-1b")
        parser.fit(pair_samples(dataset))
        database = dataset.database_of(dataset.dev[0])
        backend = create_backend("columnar", database)
        result = parser.generate(dataset.dev[0].question, backend)
        assert backend.is_executable(result.sql)
