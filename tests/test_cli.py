"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_arg_parser, main


class TestCLI:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "spider" in out
        assert "bank_financials" in out

    def test_eval_zeroshot(self, capsys):
        assert main([
            "eval", "--dataset", "spider", "--model", "codes-1b",
            "--mode", "zeroshot", "--limit", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "EX%" in out

    def test_eval_fewshot(self, capsys):
        assert main([
            "eval", "--dataset", "spider", "--model", "codes-1b",
            "--mode", "fewshot", "--shots", "1", "--limit", "4",
        ]) == 0
        assert "codes-1b" in capsys.readouterr().out

    def test_ask_command(self, capsys):
        assert main([
            "ask", "--dataset", "bank_financials", "--model", "codes-1b",
            "--question", "How many clients are there?",
        ]) == 0
        out = capsys.readouterr().out
        assert "SQL:" in out
        assert "SELECT" in out

    def test_augment_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "pairs.json"
        assert main([
            "augment", "--domain", "bank_financials",
            "--question-to-sql", "3", "--sql-to-question", "5",
            "--out", str(out_file),
        ]) == 0
        payload = json.loads(out_file.read_text())
        assert len(payload) >= 5
        assert {"question", "sql", "db_id"} <= set(payload[0])

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["eval", "--dataset", "nope", "--limit", "1"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["eval", "--model", "gpt-9"])
