"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_arg_parser, main


class TestCLI:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "spider" in out
        assert "bank_financials" in out

    def test_eval_zeroshot(self, capsys):
        assert main([
            "eval", "--dataset", "spider", "--model", "codes-1b",
            "--mode", "zeroshot", "--limit", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "EX%" in out

    def test_eval_fewshot(self, capsys):
        assert main([
            "eval", "--dataset", "spider", "--model", "codes-1b",
            "--mode", "fewshot", "--shots", "1", "--limit", "4",
        ]) == 0
        assert "codes-1b" in capsys.readouterr().out

    def test_ask_command(self, capsys):
        assert main([
            "ask", "--dataset", "bank_financials", "--model", "codes-1b",
            "--question", "How many clients are there?",
        ]) == 0
        out = capsys.readouterr().out
        assert "SQL:" in out
        assert "SELECT" in out

    def test_augment_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "pairs.json"
        assert main([
            "augment", "--domain", "bank_financials",
            "--question-to-sql", "3", "--sql-to-question", "5",
            "--out", str(out_file),
        ]) == 0
        payload = json.loads(out_file.read_text())
        assert len(payload) >= 5
        assert {"question", "sql", "db_id"} <= set(payload[0])

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["eval", "--dataset", "nope", "--limit", "1"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["eval", "--model", "gpt-9"])

    def test_serve_jsonl_roundtrip(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"question": "How many clients are there?", "id": "a"})
            + "\n"
            + json.dumps({"question": "List all districts", "id": "b"})
            + "\n"
        )
        assert main([
            "serve", "--dataset", "bank_financials", "--model", "codes-1b",
            "--input", str(requests),
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert [first["id"], second["id"]] == ["a", "b"]  # input order
        assert first["status"] == "completed"
        assert "SELECT" in first["sql"]

    def test_loadgen_seed_is_byte_stable(self, capsys):
        argv = [
            "loadgen", "--dataset", "bank_financials", "--model", "codes-1b",
            "--seed", "7", "--n", "24", "--rate", "40",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "throughput rps" in first
        assert "shed total" in first


class TestCheckExitCodes:
    """``repro check`` exit codes are a stable contract:
    0 = clean, 1 = findings/stale baseline, 2 = usage error."""

    def _tree(self, tmp_path, source: str):
        root = tmp_path / "tree"
        root.mkdir()
        (root / "mod.py").write_text(source, encoding="utf-8")
        return root

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = self._tree(tmp_path, "x = 1\n")
        assert main(["check", "--root", str(root)]) == 0
        assert "staticcheck: OK" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        root = self._tree(tmp_path, "import time\nt = time.time()\n")
        assert main(["check", "--root", str(root)]) == 1
        assert "ARCH001" in capsys.readouterr().out

    def test_stale_baseline_exits_one(self, tmp_path, capsys):
        root = self._tree(tmp_path, "x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "ARCH001", "path": "mod.py",
                "fingerprint": "0" * 16, "note": "gone",
            }],
        }), encoding="utf-8")
        assert main([
            "check", "--root", str(root), "--baseline", str(baseline),
        ]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_missing_root_exits_two(self, tmp_path, capsys):
        assert main(["check", "--root", str(tmp_path / "nope")]) == 2
        assert "no such directory" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        root = self._tree(tmp_path, "x = 1\n")
        assert main([
            "check", "--root", str(root), "--rules", "NOPE999",
        ]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_unknown_explain_exits_two(self, capsys):
        assert main(["check", "--explain", "NOPE999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_write_baseline_without_path_exits_two(self, capsys):
        assert main(["check", "--write-baseline"]) == 2
        assert "--write-baseline requires" in capsys.readouterr().err

    def test_unknown_argument_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            build_arg_parser().parse_args(["check", "--bogus"])
        assert excinfo.value.code == 2


class TestCheckFix:
    def test_fix_prints_diff_and_is_idempotent(self, tmp_path, capsys):
        root = tmp_path / "tree"
        root.mkdir()
        (root / "mod.py").write_text(
            "x = 1  # staticcheck: disable=ARCH001\n", encoding="utf-8"
        )
        assert main(["check", "--root", str(root), "--fix"]) == 0
        out = capsys.readouterr().out
        assert "--- a/mod.py" in out
        assert "-x = 1  # staticcheck: disable=ARCH001" in out
        assert "+x = 1" in out
        assert "fixed 1 file(s)" in out
        assert (root / "mod.py").read_text(encoding="utf-8") == "x = 1\n"

        assert main(["check", "--root", str(root), "--fix"]) == 0
        again = capsys.readouterr().out
        assert "fixed 0 file(s)" in again
        assert "---" not in again  # second run: empty diff

    def test_fix_prunes_stale_baseline(self, tmp_path, capsys):
        root = tmp_path / "tree"
        root.mkdir()
        (root / "mod.py").write_text("x = 1\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "ARCH001", "path": "mod.py",
                "fingerprint": "0" * 16, "note": "gone",
            }],
        }), encoding="utf-8")
        assert main([
            "check", "--root", str(root),
            "--baseline", str(baseline), "--fix",
        ]) == 0
        assert "baseline.json" in capsys.readouterr().out
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        assert payload["entries"] == []

    def test_fix_leaves_real_findings_failing(self, tmp_path, capsys):
        root = tmp_path / "tree"
        root.mkdir()
        (root / "mod.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
        # nothing fixable, and the ARCH001 finding still fails the run.
        assert main(["check", "--root", str(root), "--fix"]) == 1
        assert "fixed 0 file(s)" in capsys.readouterr().out


class TestCheckCache:
    def test_warm_run_output_identical(self, tmp_path, capsys):
        root = tmp_path / "tree"
        root.mkdir()
        (root / "mod.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
        cache = tmp_path / "cache.json"
        argv = [
            "check", "--root", str(root),
            "--cache", str(cache), "--format", "json",
        ]
        assert main(argv) == 1
        cold = capsys.readouterr().out
        assert cache.exists()
        assert main(argv) == 1
        warm = capsys.readouterr().out
        assert cold == warm
