"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_arg_parser, main


class TestCLI:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "spider" in out
        assert "bank_financials" in out

    def test_eval_zeroshot(self, capsys):
        assert main([
            "eval", "--dataset", "spider", "--model", "codes-1b",
            "--mode", "zeroshot", "--limit", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "EX%" in out

    def test_eval_fewshot(self, capsys):
        assert main([
            "eval", "--dataset", "spider", "--model", "codes-1b",
            "--mode", "fewshot", "--shots", "1", "--limit", "4",
        ]) == 0
        assert "codes-1b" in capsys.readouterr().out

    def test_ask_command(self, capsys):
        assert main([
            "ask", "--dataset", "bank_financials", "--model", "codes-1b",
            "--question", "How many clients are there?",
        ]) == 0
        out = capsys.readouterr().out
        assert "SQL:" in out
        assert "SELECT" in out

    def test_augment_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "pairs.json"
        assert main([
            "augment", "--domain", "bank_financials",
            "--question-to-sql", "3", "--sql-to-question", "5",
            "--out", str(out_file),
        ]) == 0
        payload = json.loads(out_file.read_text())
        assert len(payload) >= 5
        assert {"question", "sql", "db_id"} <= set(payload[0])

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["eval", "--dataset", "nope", "--limit", "1"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args(["eval", "--model", "gpt-9"])

    def test_serve_jsonl_roundtrip(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"question": "How many clients are there?", "id": "a"})
            + "\n"
            + json.dumps({"question": "List all districts", "id": "b"})
            + "\n"
        )
        assert main([
            "serve", "--dataset", "bank_financials", "--model", "codes-1b",
            "--input", str(requests),
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert [first["id"], second["id"]] == ["a", "b"]  # input order
        assert first["status"] == "completed"
        assert "SELECT" in first["sql"]

    def test_loadgen_seed_is_byte_stable(self, capsys):
        argv = [
            "loadgen", "--dataset", "bank_financials", "--model", "codes-1b",
            "--seed", "7", "--n", "24", "--rate", "40",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "throughput rps" in first
        assert "shed total" in first
