"""The flow-sensitive staticcheck layer: CFG, dataflow, RES001/EXC001/
DEAD001, the incremental cache, the ``--fix`` autofixer, and the SARIF
golden."""

import ast
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.staticcheck import (
    REGISTRY,
    FindingCache,
    build_cfg,
    check_modules,
    check_source,
    check_tree,
    content_hash,
    liveness,
    parse_module,
    reaching_definitions,
    render_json,
    render_sarif,
    rules_fingerprint,
)
from repro.staticcheck.cfg import NORMAL
from repro.staticcheck.fix import apply_fixes

pytestmark = pytest.mark.staticcheck

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
SRC_REPRO = REPO_ROOT / "src" / "repro"


def _rules(source: str, path: str = "mod.py", rule_ids=None) -> list[str]:
    return [f.rule for f in check_source(source, path=path, rule_ids=rule_ids)]


def _messages(source: str, path: str = "mod.py", rule_ids=None) -> list[str]:
    return [f.message for f in check_source(source, path=path, rule_ids=rule_ids)]


def _fn_cfg(source: str):
    tree = ast.parse(textwrap.dedent(source))
    fn = next(
        node for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
    )
    return build_cfg(fn)


# ---------------------------------------------------------------------------
# CFG construction


class TestCFG:
    def test_linear_code_is_one_block(self):
        cfg = _fn_cfg(
            """
            def f():
                a = 1
                b = a
            """
        )
        assert len(cfg.blocks[cfg.entry].elements) == 2
        assert cfg.successors(cfg.entry) == [cfg.exit]

    def test_if_branches_rejoin(self):
        cfg = _fn_cfg(
            """
            def f(flag):
                if flag:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        # the entry block (header) has two normal successors.
        assert len(cfg.successors(cfg.entry, kinds=(NORMAL,))) == 2
        # every block except the one after a terminator is reachable.
        assert cfg.reachable() >= {cfg.entry, cfg.exit}

    def test_statement_after_return_has_no_predecessors(self):
        cfg = _fn_cfg(
            """
            def f():
                return 1
                x = 2
            """
        )
        orphans = [
            block.index
            for block in cfg.blocks
            if block.elements and not cfg.predecessors(block.index)
            and block.index != cfg.entry
        ]
        assert len(orphans) == 1
        assert orphans[0] not in cfg.reachable()

    def test_while_true_without_break_makes_after_unreachable(self):
        cfg = _fn_cfg(
            """
            def f():
                while True:
                    step()
                after = 1
            """
        )
        reachable = cfg.reachable()
        after_blocks = [
            block.index
            for block in cfg.blocks
            if any(
                isinstance(el, ast.Assign)
                and isinstance(el.targets[0], ast.Name)
                and el.targets[0].id == "after"
                for el in block.elements
            )
        ]
        assert after_blocks and after_blocks[0] not in reachable

    def test_while_true_with_break_keeps_after_reachable(self):
        cfg = _fn_cfg(
            """
            def f():
                while True:
                    if done():
                        break
                after = 1
            """
        )
        reachable = cfg.reachable()
        for block in cfg.blocks:
            for el in block.elements:
                if (
                    isinstance(el, ast.Assign)
                    and isinstance(el.targets[0], ast.Name)
                    and el.targets[0].id == "after"
                ):
                    assert block.index in reachable

    def test_return_routes_through_finally(self):
        cfg = _fn_cfg(
            """
            def f():
                try:
                    return work()
                finally:
                    cleanup()
            """
        )
        # the block holding cleanup() must lie on the return path:
        # the return block's normal successor is the finally entry,
        # not the exit.
        return_block = next(
            block.index
            for block in cfg.blocks
            if any(isinstance(el, ast.Return) for el in block.elements)
        )
        succs = cfg.successors(return_block, kinds=(NORMAL,))
        assert succs != [cfg.exit]
        finally_block = next(
            block.index
            for block in cfg.blocks
            if any(
                isinstance(el, ast.Expr)
                and isinstance(el.value, ast.Call)
                and isinstance(el.value.func, ast.Name)
                and el.value.func.id == "cleanup"
                for el in block.elements
            )
        )
        assert finally_block in succs

    def test_exception_edges_reach_handler(self):
        cfg = _fn_cfg(
            """
            def f():
                try:
                    work()
                except ValueError:
                    recover()
            """
        )
        handler_block = next(
            block.index
            for block in cfg.blocks
            if any(
                isinstance(el, ast.Expr)
                and isinstance(el.value, ast.Call)
                and isinstance(el.value.func, ast.Name)
                and el.value.func.id == "recover"
                for el in block.elements
            )
        )
        # reachable only via an exception edge, not a normal one.
        assert handler_block in cfg.reachable()
        assert not cfg.predecessors(handler_block, kinds=(NORMAL,))


# ---------------------------------------------------------------------------
# dataflow analyses


class TestDataflow:
    def test_reaching_definitions_join_at_merge(self):
        cfg = _fn_cfg(
            """
            def f(flag):
                if flag:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        solution = reaching_definitions(cfg)
        return_block = next(
            block.index
            for block in cfg.blocks
            if any(isinstance(el, ast.Return) for el in block.elements)
        )
        lines = sorted(
            line for name, line in solution.block_in[return_block] if name == "x"
        )
        assert len(lines) == 2  # both definitions may reach the return

    def test_liveness_sees_later_use(self):
        cfg = _fn_cfg(
            """
            def f():
                x = 1
                y = 2
                return x
            """
        )
        solution = liveness(cfg)
        assert "x" in solution.block_in[cfg.entry] or "x" not in solution.block_out[cfg.entry]
        # y is never used: dead at every program point.
        assert all("y" not in v for v in solution.block_out.values())


# ---------------------------------------------------------------------------
# RES001 — resource leaks


def _res(source: str) -> list[str]:
    return _messages(source, rule_ids=["RES001"])


class TestResourceLeak:
    def test_leak_on_fallthrough_flagged(self):
        messages = _res(
            """
def f(path):
    handle = open(path)
    handle.read()
    return 0
"""
        )
        assert len(messages) == 1
        assert "not released or closed on every path" in messages[0]
        assert "with" in messages[0]

    def test_close_on_every_path_clean(self):
        assert _res(
            """
def f(path):
    handle = open(path)
    data = handle.read()
    handle.close()
    return data
"""
        ) == []

    def test_leak_on_one_branch_flagged(self):
        messages = _res(
            """
def f(path, flag):
    handle = open(path)
    if flag:
        handle.close()
    return 0
"""
        )
        assert len(messages) == 1

    def test_early_return_leak_flagged(self):
        messages = _res(
            """
def f(path, flag):
    handle = open(path)
    if flag:
        return None
    handle.close()
    return None
"""
        )
        assert len(messages) == 1

    def test_with_statement_clean(self):
        assert _res(
            """
def f(path):
    with open(path) as handle:
        return handle.read()
"""
        ) == []

    def test_with_on_existing_name_clean(self):
        assert _res(
            """
def f(path):
    handle = open(path)
    with handle:
        return handle.read()
"""
        ) == []

    def test_closing_wrapper_clean(self):
        assert _res(
            """
import sqlite3
from contextlib import closing

def f(path):
    conn = sqlite3.connect(path)
    with closing(conn):
        return conn.execute("SELECT 1")
"""
        ) == []

    def test_close_in_finally_dominates_return(self):
        assert _res(
            """
def f(path):
    handle = open(path)
    try:
        return handle.read()
    finally:
        handle.close()
"""
        ) == []

    def test_escape_via_return_clean(self):
        assert _res(
            """
import sqlite3

def f(path):
    conn = sqlite3.connect(path)
    return conn
"""
        ) == []

    def test_escape_via_call_argument_clean(self):
        assert _res(
            """
import sqlite3

def f(path, registry):
    conn = sqlite3.connect(path)
    registry.adopt(conn)
    return 0
"""
        ) == []

    def test_escape_via_attribute_store_clean(self):
        assert _res(
            """
import sqlite3

class Holder:
    def open_db(self, path):
        conn = sqlite3.connect(path)
        self.conn = conn
"""
        ) == []

    def test_method_call_on_resource_is_not_escape(self):
        messages = _res(
            """
import sqlite3

def f(path):
    conn = sqlite3.connect(path)
    conn.execute("SELECT 1")
    return 0
"""
        )
        assert len(messages) == 1

    def test_cursor_method_tracked(self):
        messages = _res(
            """
def f(conn):
    cur = conn.cursor()
    cur.fetchall()
    return 0
"""
        )
        assert len(messages) == 1
        assert "cursor" in messages[0]

    def test_overwrite_before_release_flagged(self):
        messages = _res(
            """
def f(a, b):
    handle = open(a)
    handle = open(b)
    handle.close()
    return 0
"""
        )
        assert len(messages) == 1
        assert "overwritten before being released" in messages[0]

    def test_acquire_release_pair_clean(self):
        assert _res(
            """
def f(lock):
    lock.acquire()
    lock.release()
    return 0
"""
        ) == []

    def test_acquire_without_release_flagged(self):
        messages = _res(
            """
def f(lock):
    lock.acquire()
    return 0
"""
        )
        assert len(messages) == 1
        assert "lock" in messages[0]

    def test_exception_path_leak_not_flagged(self):
        # normal-edge analysis: exception safety is exactly what the
        # prefer-`with` hint is about, not a separate finding.
        assert _res(
            """
def f(path):
    handle = open(path)
    risky()
    handle.close()
    return 0
"""
        ) == []


# ---------------------------------------------------------------------------
# EXC001 — exception flow


def _exc(source: str) -> list[str]:
    return _messages(source, rule_ids=["EXC001"])


class TestExceptionFlow:
    SWALLOW = """
from repro.errors import ReproError

def f(work):
    try:
        work()
    except ReproError:
        pass
"""

    def test_swallowed_taxonomy_error_flagged(self):
        messages = _exc(self.SWALLOW)
        assert len(messages) == 1
        assert "silently swallows ReproError" in messages[0]

    def test_swallowed_subclass_flagged(self):
        messages = _exc(self.SWALLOW.replace("ReproError", "ExecutionError"))
        assert any("ExecutionError" in m for m in messages)

    def test_handled_conversion_not_flagged(self):
        source = """
from repro.errors import ExecutionError

def f(work):
    try:
        work()
    except ExecutionError:
        return False
    return True
"""
        assert _exc(source) == []

    def test_swallowed_builtin_not_flagged(self):
        # only taxonomy classes carry the must-not-drop contract.
        source = """
def f(work):
    try:
        work()
    except ValueError:
        pass
"""
        assert _exc(source) == []

    def test_justified_suppression_honoured(self):
        source = self.SWALLOW.replace(
            "except ReproError:",
            "except ReproError:"
            "  # staticcheck: disable=EXC001 (probe only)",
        )
        assert _rules(source, rule_ids=["EXC001", "SUP001"]) == []

    def test_ad_hoc_runtime_error_flagged(self):
        messages = _exc('def f():\n    raise RuntimeError("boom")\n')
        assert len(messages) == 1
        assert "ad-hoc RuntimeError raise" in messages[0]

    def test_ad_hoc_exception_flagged(self):
        assert _exc('def f():\n    raise Exception("boom")\n') != []

    def test_contract_builtins_legal(self):
        assert _exc('def f():\n    raise ValueError("bad arg")\n') == []
        assert _exc("def f():\n    raise NotImplementedError\n") == []

    def test_bare_reraise_legal(self):
        source = """
def f(work):
    try:
        work()
    except ValueError:
        raise
"""
        assert _exc(source) == []

    def test_taxonomy_raise_legal(self):
        source = """
from repro.errors import ExecutionError

def f():
    raise ExecutionError("query failed")
"""
        assert _exc(source) == []

    def test_dead_except_clause_flagged(self):
        source = """
from repro.errors import ExecutionError, ReproError

def f(work):
    try:
        work()
    except ReproError:
        return 1
    except ExecutionError:
        return 2
"""
        messages = _exc(source)
        assert len(messages) == 1
        assert "dead except clause: ExecutionError" in messages[0]
        assert "broader ReproError" in messages[0]

    def test_ordered_narrow_to_broad_legal(self):
        source = """
from repro.errors import ExecutionError, ReproError

def f(work):
    try:
        work()
    except ExecutionError:
        return 1
    except ReproError:
        return 2
"""
        assert _exc(source) == []

    def test_builtin_hierarchy_dead_clause_flagged(self):
        source = """
def f(work):
    try:
        work()
    except OSError:
        return 1
    except TimeoutError:
        return 2
"""
        messages = _exc(source)
        assert any("dead except clause: TimeoutError" in m for m in messages)

    def test_unknown_class_stops_dead_clause_reasoning(self):
        source = """
from somewhere import WeirdError

def f(work):
    try:
        work()
    except WeirdError:
        return 1
    except ValueError:
        return 2
"""
        assert _exc(source) == []


# ---------------------------------------------------------------------------
# DEAD001 — unreachable code and dead stores


def _dead(source: str) -> list[str]:
    return _messages(source, rule_ids=["DEAD001"])


class TestDeadCode:
    def test_statement_after_return_flagged(self):
        messages = _dead(
            """
def f():
    return 1
    cleanup()
"""
        )
        assert len(messages) == 1
        assert "unreachable statement in 'f'" in messages[0]

    def test_one_finding_per_unreachable_region(self):
        messages = _dead(
            """
def f():
    return 1
    a = 1
    b = 2
    c = 3
"""
        )
        assert len(messages) == 1

    def test_code_after_raise_flagged(self):
        messages = _dead(
            """
def f():
    raise ValueError("no")
    cleanup()
"""
        )
        assert len(messages) == 1

    def test_code_after_endless_loop_flagged(self):
        messages = _dead(
            """
def f():
    while True:
        step()
    cleanup()
"""
        )
        assert len(messages) == 1

    def test_loop_with_break_not_flagged(self):
        assert _dead(
            """
def f():
    while True:
        if done():
            break
    cleanup()
"""
        ) == []

    def test_handler_only_code_not_flagged(self):
        # reachable via an exception edge is reachable.
        assert _dead(
            """
def f(work):
    try:
        work()
    except ValueError:
        recover()
    return 0
"""
        ) == []

    def test_module_level_unreachable_flagged(self):
        messages = _dead(
            "raise SystemExit(1)\nx = 1\n"
        )
        assert any("unreachable statement in 'module'" in m for m in messages)

    def test_dead_store_flagged(self):
        messages = _dead(
            """
def f():
    value = expensive()
    return 2
"""
        )
        assert len(messages) == 1
        assert "dead store" in messages[0] and "'value'" in messages[0]

    def test_overwritten_on_all_paths_flagged(self):
        messages = _dead(
            """
def f(flag):
    value = 1
    value = 2
    return value
"""
        )
        assert len(messages) == 1

    def test_read_on_one_path_clean(self):
        assert _dead(
            """
def f(flag):
    value = 1
    if flag:
        return value
    return 0
"""
        ) == []

    def test_underscore_discard_exempt(self):
        assert _dead(
            """
def f():
    _unused = probe()
    return 2
"""
        ) == []

    def test_closure_captured_name_exempt(self):
        assert _dead(
            """
def f():
    value = 1

    def inner():
        return value
    return inner
"""
        ) == []

    def test_augmented_and_unpacking_targets_exempt(self):
        assert _dead(
            """
def f(pair):
    a, b = pair
    a += 1
    return 0
"""
        ) == []

    def test_loop_variable_exempt(self):
        assert _dead(
            """
def f(items):
    for item in items:
        pass
    return 0
"""
        ) == []


# ---------------------------------------------------------------------------
# seeded mutations on real modules — each rule catches an injected
# defect in shipped code, not just toy fixtures.


DATABASE_PATH = SRC_REPRO / "db" / "backends" / "sqlite.py"
DATABASE_NEEDLE = (
    "        connection = sqlite3.connect(path, check_same_thread=False)\n"
)


class TestSeededMutationsOnRealModules:
    def _database_source(self) -> str:
        source = DATABASE_PATH.read_text(encoding="utf-8")
        assert DATABASE_NEEDLE in source
        return source

    def test_real_tree_is_clean_under_flow_rules(self):
        result = check_tree(SRC_REPRO, rule_ids=["RES001", "EXC001", "DEAD001"])
        rendered = "\n".join(f.render() for f in result.findings)
        assert not result.findings, rendered

    def test_injected_connection_leak_is_caught(self):
        mutated = self._database_source().replace(
            DATABASE_NEEDLE,
            "        spare = sqlite3.connect(path)\n" + DATABASE_NEEDLE,
            1,
        )
        messages = _messages(
            mutated, path="db/backends/sqlite.py", rule_ids=["RES001"]
        )
        assert any(
            "sqlite connection 'spare'" in m
            and "not released or closed" in m
            for m in messages
        ), messages

    def test_injected_swallow_is_caught(self):
        mutated = self._database_source().replace(
            DATABASE_NEEDLE,
            DATABASE_NEEDLE
            + "        try:\n"
            + "            connection.execute('PRAGMA user_version')\n"
            + "        except ExecutionError:\n"
            + "            pass\n",
            1,
        )
        messages = _messages(
            mutated, path="db/backends/sqlite.py", rule_ids=["EXC001"]
        )
        assert any(
            "silently swallows ExecutionError" in m for m in messages
        ), messages

    def test_injected_dead_store_is_caught(self):
        mutated = self._database_source().replace(
            DATABASE_NEEDLE,
            DATABASE_NEEDLE + "        probe = 12345\n",
            1,
        )
        messages = _messages(
            mutated, path="db/backends/sqlite.py", rule_ids=["DEAD001"]
        )
        assert any(
            "dead store" in m and "'probe'" in m for m in messages
        ), messages

    def test_injected_unreachable_is_caught(self):
        source = self._database_source()
        needle = "        return database\n"
        assert needle in source
        mutated = source.replace(
            needle, needle + "        connection.close()\n", 1
        )
        messages = _messages(
            mutated, path="db/backends/sqlite.py", rule_ids=["DEAD001"]
        )
        assert any("unreachable statement" in m for m in messages), messages


# ---------------------------------------------------------------------------
# SUP001 interaction with cross-module finish() findings


class TestSuppressionOfFinishFindings:
    INVERSION = textwrap.dedent(
        """
        import threading

        class A:
            def __init__(self):
                self.l1 = threading.Lock()
                self.l2 = threading.Lock()

            def m1(self):
                with self.l1:
                    with self.l2:  # staticcheck: disable=LOCK001 (init path)
                        pass

            def m2(self):
                with self.l2:
                    with self.l1:
                        pass
        """
    )

    def test_suppressing_lock_inversion_counts_as_used(self):
        # LOCK001's inversion finding is emitted from finish(), after
        # every module was seen — the suppression on its line must
        # still silence it AND count as used (no SUP001).
        rules = _rules(
            self.INVERSION, path="serving/mod.py",
            rule_ids=["LOCK001", "SUP001"],
        )
        assert rules == []

    def test_without_suppression_the_inversion_fires(self):
        bare = self.INVERSION.replace(
            "  # staticcheck: disable=LOCK001 (init path)", ""
        )
        rules = _rules(
            bare, path="serving/mod.py", rule_ids=["LOCK001", "SUP001"]
        )
        assert rules == ["LOCK001"]


# ---------------------------------------------------------------------------
# incremental cache


FULL_FINGERPRINT = rules_fingerprint(
    [REGISTRY.get(rule_id) for rule_id in REGISTRY.ids()]
)

DIRTY_TREE = {
    "clean.py": "x = 1\n",
    "dirty.py": "import time\nt = time.time()\n",
    "leaky.py": (
        "def f(path):\n"
        "    handle = open(path)\n"
        "    handle.read()\n"
        "    return 0\n"
    ),
}


def _write_tree(root: Path, files: dict) -> None:
    for name, source in files.items():
        (root / name).write_text(source, encoding="utf-8")


class TestIncrementalCache:
    def _run(self, root: Path, cache_path: Path):
        cache = FindingCache(cache_path, FULL_FINGERPRINT)
        result = check_tree(root, cache=cache)
        cache.save()
        return result, cache

    def test_warm_run_byte_identical_to_cold(self, tmp_path):
        root = tmp_path / "tree"
        root.mkdir()
        _write_tree(root, DIRTY_TREE)
        cache_path = tmp_path / "cache.json"

        cold, cold_cache = self._run(root, cache_path)
        warm, warm_cache = self._run(root, cache_path)

        assert cold_cache.hits == 0
        assert warm_cache.misses == 0
        assert warm_cache.hits == cold_cache.misses > 0
        assert render_json(cold) == render_json(warm)
        assert render_sarif(cold) == render_sarif(warm)
        assert warm.cache_hits > 0 and warm.cache_misses == 0

    def test_edited_file_reanalyzed_others_cached(self, tmp_path):
        root = tmp_path / "tree"
        root.mkdir()
        _write_tree(root, DIRTY_TREE)
        cache_path = tmp_path / "cache.json"
        self._run(root, cache_path)

        (root / "clean.py").write_text("x = 2\n", encoding="utf-8")
        warm, cache = self._run(root, cache_path)
        incremental_rules = sum(
            1 for rid in REGISTRY.ids() if REGISTRY.get(rid).incremental
        )
        # only the edited file misses; one miss per incremental rule.
        assert cache.misses == incremental_rules
        assert {f.rule for f in warm.findings} == {"ARCH001", "RES001"}

    def test_rule_edit_invalidates_whole_cache(self, tmp_path):
        root = tmp_path / "tree"
        root.mkdir()
        _write_tree(root, DIRTY_TREE)
        cache_path = tmp_path / "cache.json"
        self._run(root, cache_path)

        cache = FindingCache(cache_path, "different-fingerprint")
        result = check_tree(root, cache=cache)
        assert cache.hits == 0
        assert {f.rule for f in result.findings} == {"ARCH001", "RES001"}

    def test_deleted_files_pruned_on_save(self, tmp_path):
        root = tmp_path / "tree"
        root.mkdir()
        _write_tree(root, DIRTY_TREE)
        cache_path = tmp_path / "cache.json"
        self._run(root, cache_path)

        (root / "leaky.py").unlink()
        self._run(root, cache_path)
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
        assert "leaky.py" not in payload["files"]
        assert set(payload["files"]) == {"clean.py", "dirty.py"}

    def test_corrupt_cache_means_cold_run(self, tmp_path):
        root = tmp_path / "tree"
        root.mkdir()
        _write_tree(root, DIRTY_TREE)
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json", encoding="utf-8")
        result, cache = self._run(root, cache_path)
        assert cache.hits == 0
        assert {f.rule for f in result.findings} == {"ARCH001", "RES001"}

    def test_content_hash_is_stable(self):
        assert content_hash("x = 1\n") == content_hash("x = 1\n")
        assert content_hash("x = 1\n") != content_hash("x = 2\n")


# ---------------------------------------------------------------------------
# --fix autofixer (library level; the CLI path is covered in test_cli)


class TestAutofix:
    def test_stale_suppressions_removed_idempotently(self, tmp_path):
        root = tmp_path / "tree"
        root.mkdir()
        (root / "mod.py").write_text(
            "x = 1  # staticcheck: disable=ARCH001\n"
            "y = 2  # staticcheck: disable=ARCH001,ARCH003 (why)\n",
            encoding="utf-8",
        )
        result = check_tree(root)
        assert {f.rule for f in result.findings} == {"SUP001"}

        diff, changed = apply_fixes(result, root)
        assert changed == 1
        assert "-x = 1  # staticcheck: disable=ARCH001" in diff
        assert (root / "mod.py").read_text(encoding="utf-8") == (
            "x = 1\ny = 2\n"
        )

        again = check_tree(root)
        diff2, changed2 = apply_fixes(again, root)
        assert (diff2, changed2) == ("", 0)

    def test_partial_suppression_keeps_live_rule(self, tmp_path):
        root = tmp_path / "tree"
        root.mkdir()
        (root / "mod.py").write_text(
            "import time\n"
            "t = time.time()  # staticcheck: disable=ARCH001,ARCH003\n",
            encoding="utf-8",
        )
        result = check_tree(root)
        apply_fixes(result, root)
        # the used ARCH001 suppression survives; the stale ARCH003 goes.
        assert (root / "mod.py").read_text(encoding="utf-8").endswith(
            "t = time.time()  # staticcheck: disable=ARCH001\n"
        )
        assert check_tree(root).findings == ()

    def test_comment_only_line_deleted(self, tmp_path):
        root = tmp_path / "tree"
        root.mkdir()
        (root / "mod.py").write_text(
            "x = 1\n# staticcheck: disable=ARCH001\ny = 2\n",
            encoding="utf-8",
        )
        result = check_tree(root)
        apply_fixes(result, root)
        assert (root / "mod.py").read_text(encoding="utf-8") == "x = 1\ny = 2\n"


# ---------------------------------------------------------------------------
# SARIF golden — byte-stable across processes and hash seeds


SARIF_FIXTURE = """\
import sqlite3

from repro.errors import ReproError


def leaky(path):
    conn = sqlite3.connect(path)
    conn.execute("SELECT 1")
    return 0


def swallowing(work):
    try:
        work()
    except ReproError:
        pass


def dead():
    value = 1
    return 2
    print("unreachable")
"""

SARIF_GOLDEN = GOLDEN_DIR / "staticcheck_flow.sarif"


def _fixture_sarif() -> str:
    module = parse_module("flow/mod.py", SARIF_FIXTURE)
    result = check_modules(
        [module], rules=REGISTRY.create(["DEAD001", "EXC001", "RES001"])
    )
    return render_sarif(result) + "\n"


class TestSarifGolden:
    def test_matches_committed_golden(self):
        assert _fixture_sarif() == SARIF_GOLDEN.read_text(encoding="utf-8")

    def test_golden_is_schema_shaped(self):
        log = json.loads(SARIF_GOLDEN.read_text(encoding="utf-8"))
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-staticcheck"
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert rule_ids == ["DEAD001", "EXC001", "RES001"]
        for rule in run["tool"]["driver"]["rules"]:
            assert rule["fullDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] == "error"
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"] == "flow/mod.py"
            assert location["region"]["startLine"] >= 1
            assert result["fingerprints"]["staticcheck/v1"]

    def test_byte_stable_across_hash_seeds(self):
        script = (
            "import sys\n"
            "from repro.staticcheck import REGISTRY, check_modules, "
            "parse_module, render_sarif\n"
            "source = sys.stdin.read()\n"
            "module = parse_module('flow/mod.py', source)\n"
            "result = check_modules([module], "
            "rules=REGISTRY.create(['DEAD001', 'EXC001', 'RES001']))\n"
            "sys.stdout.write(render_sarif(result) + '\\n')\n"
        )
        golden = SARIF_GOLDEN.read_bytes()
        for seed in ("0", "42"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            proc = subprocess.run(
                [sys.executable, "-c", script],
                input=SARIF_FIXTURE.encode("utf-8"),
                capture_output=True,
                env=env,
            )
            assert proc.returncode == 0, proc.stderr.decode()
            assert proc.stdout == golden
