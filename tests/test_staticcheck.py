"""The staticcheck rule engine: registry, suppressions, baseline,
emitters, and the three deep checkers (STAGE001, DET001, LOCK001)."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.engine import _stages
from repro.staticcheck import (
    Baseline,
    REGISTRY,
    Rule,
    RuleRegistry,
    check_modules,
    check_source,
    load_baseline,
    parse_module,
    render_json,
    render_sarif,
    render_text,
    save_baseline,
)

pytestmark = pytest.mark.staticcheck

REPO_ROOT = Path(__file__).resolve().parent.parent
STAGES_PATH = REPO_ROOT / "src" / "repro" / "engine" / "_stages.py"


def _rules(source: str, path: str = "mod.py", rule_ids=None) -> list[str]:
    return [f.rule for f in check_source(source, path=path, rule_ids=rule_ids)]


def _messages(source: str, path: str = "mod.py", rule_ids=None) -> list[str]:
    return [f.message for f in check_source(source, path=path, rule_ids=rule_ids)]


# ---------------------------------------------------------------------------
# registry


class TestRegistry:
    def test_ids_are_sorted_and_complete(self):
        ids = REGISTRY.ids()
        assert ids == sorted(ids)
        for expected in (
            "ARCH001", "ARCH002", "ARCH003", "ARCH004", "ARCH005",
            "ARCH006", "STAGE001", "DET001", "LOCK001", "SUP001",
            "RES001", "EXC001", "DEAD001",
        ):
            assert expected in ids

    def test_explain_renders_from_docstring(self):
        text = REGISTRY.explain("STAGE001")
        assert text.startswith("STAGE001 (error) — ")
        # the docstring IS the documentation — no second prose copy.
        assert "reads X, writes" in text

    def test_duplicate_registration_rejected(self):
        registry = RuleRegistry()

        class Dup(Rule):
            """docs"""
            id = "X001"

        registry.register(Dup)
        with pytest.raises(ValueError, match="duplicate"):
            registry.register(Dup)

    def test_undocumented_rule_rejected(self):
        registry = RuleRegistry()

        class Undocumented(Rule):
            id = "X002"

        Undocumented.__doc__ = None
        with pytest.raises(ValueError, match="docstring"):
            registry.register(Undocumented)

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError, match="unknown rule"):
            REGISTRY.get("NOPE999")

    def test_every_rule_is_documented(self):
        for rule_id in REGISTRY.ids():
            assert len(REGISTRY.get(rule_id).docs()) > 40, rule_id


# ---------------------------------------------------------------------------
# inline suppressions


class TestSuppressions:
    def test_disable_silences_exactly_that_rule_on_that_line(self):
        source = "import time\nt = time.time()  # staticcheck: disable=ARCH001\n"
        assert _rules(source) == []

    def test_disable_of_other_rule_does_not_silence(self):
        source = "import time\nt = time.time()  # staticcheck: disable=ARCH002\n"
        rules = _rules(source)
        # the ARCH001 finding survives, and the useless ARCH002
        # suppression is itself reported.
        assert sorted(rules) == ["ARCH001", "SUP001"]

    def test_disable_is_line_scoped(self):
        source = (
            "import time  # staticcheck: disable=ARCH001\n"
            "t = time.time()\n"
        )
        rules = _rules(source)
        assert "ARCH001" in rules  # line 2 finding not silenced by line 1
        assert "SUP001" in rules  # line 1 suppression silenced nothing

    def test_unused_suppression_is_a_finding(self):
        assert _rules("x = 1  # staticcheck: disable=ARCH001\n") == ["SUP001"]

    def test_sup001_itself_can_be_disabled(self):
        source = "x = 1  # staticcheck: disable=ARCH001,SUP001\n"
        assert _rules(source) == []

    def test_multi_rule_disable(self):
        source = (
            "import time\n"
            "ok = a.lower() == b.lower() or time.time()"
            "  # staticcheck: disable=ARCH001,ARCH003\n"
        )
        assert _rules(source) == []


# ---------------------------------------------------------------------------
# baseline


class TestBaseline:
    SOURCE = "import time\nt = time.time()\n"

    def _result(self, source, baseline=None):
        module = parse_module("mod.py", source)
        return check_modules(
            [module], rules=REGISTRY.create(["ARCH001"]), baseline=baseline
        )

    def test_baseline_grandfathers_existing_findings(self):
        first = self._result(self.SOURCE)
        assert [f.rule for f in first.findings] == ["ARCH001"]
        baseline = Baseline.from_findings(list(first.findings))
        second = self._result(self.SOURCE, baseline=baseline)
        assert second.findings == ()
        assert len(second.baselined) == 1
        assert second.baselined[0].baselined is True
        assert second.ok()

    def test_stale_entry_expires_and_fails(self):
        dirty = self._result(self.SOURCE)
        baseline = Baseline.from_findings(list(dirty.findings))
        clean = self._result("x = 1\n", baseline=baseline)
        assert clean.findings == ()
        assert len(clean.stale_baseline) == 1
        assert not clean.ok()

    def test_multiplicity_one_entry_covers_one_finding(self):
        two = "import time\nt1 = time.time()\nt2 = time.time()\n"
        result = self._result(two)
        assert len(result.findings) == 2
        baseline = Baseline.from_findings([result.findings[0]])
        partial = self._result(two, baseline=baseline)
        assert len(partial.findings) == 1  # the second occurrence stays active
        assert len(partial.baselined) == 1
        assert not partial.ok()

    def test_fingerprint_is_line_independent(self):
        shifted = "\n\n\nimport time\nt = time.time()\n"
        original = self._result(self.SOURCE)
        baseline = Baseline.from_findings(list(original.findings))
        moved = self._result(shifted, baseline=baseline)
        assert moved.findings == ()
        assert moved.ok()

    def test_save_load_roundtrip(self, tmp_path):
        result = self._result(self.SOURCE)
        baseline = Baseline.from_findings(list(result.findings), note="legacy")
        path = tmp_path / "baseline.json"
        save_baseline(baseline, path)
        loaded = load_baseline(path)
        assert len(loaded) == 1
        assert loaded.entries[0].note == "legacy"
        again = self._result(self.SOURCE, baseline=loaded)
        assert again.ok()

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


# ---------------------------------------------------------------------------
# emitters


class TestEmitters:
    def _result(self):
        module = parse_module("mod.py", "import time\nt = time.time()\n")
        return check_modules([module], rules=REGISTRY.create(["ARCH001"]))

    def test_text_lists_findings_and_summary(self):
        text = render_text(self._result())
        assert "mod.py:2: ARCH001" in text
        assert "staticcheck: 1 finding(s)" in text

    def test_json_is_deterministic_and_parses(self):
        a, b = render_json(self._result()), render_json(self._result())
        assert a == b
        payload = json.loads(a)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "ARCH001"
        assert payload["findings"][0]["fingerprint"]

    def test_sarif_structure(self):
        log = json.loads(render_sarif(self._result()))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-staticcheck"
        assert run["tool"]["driver"]["rules"][0]["id"] == "ARCH001"
        result = run["results"][0]
        assert result["ruleId"] == "ARCH001"
        assert result["locations"][0]["physicalLocation"]["region"]["startLine"] == 2


# ---------------------------------------------------------------------------
# STAGE001 — stage contract verification


STAGE_PATH = "engine/_stages.py"


def _stage_rules(source: str) -> list[str]:
    return _rules(source, path=STAGE_PATH, rule_ids=["STAGE001"])


def _stage_messages(source: str) -> list[str]:
    return _messages(source, path=STAGE_PATH, rule_ids=["STAGE001"])


class TestStageContract:
    CLEAN = textwrap.dedent(
        """
        class FooStage:
            name = "foo"
            reads = ("question",)
            writes = ("matched",)

            def run(self, ctx):
                ctx.matched = ctx.question
        """
    )

    def test_clean_stage_passes(self):
        assert _stage_rules(self.CLEAN) == []

    def test_missing_contract_flagged(self):
        source = textwrap.dedent(
            """
            class FooStage:
                name = "foo"

                def run(self, ctx):
                    ctx.matched = ctx.question
            """
        )
        messages = _stage_messages(source)
        assert len(messages) == 1
        assert "declares no reads/writes contract" in messages[0]

    def test_undeclared_read_flagged(self):
        source = self.CLEAN.replace(
            "ctx.matched = ctx.question", "ctx.matched = ctx.database"
        )
        messages = _stage_messages(source)
        assert any("reads ctx.database" in m for m in messages)

    def test_undeclared_write_flagged(self):
        source = self.CLEAN.replace(
            "ctx.matched = ctx.question",
            "ctx.matched = ctx.question\n        ctx.beam = []",
        )
        messages = _stage_messages(source)
        assert any("writes ctx.beam" in m for m in messages)

    def test_declared_but_unused_read_flagged(self):
        source = self.CLEAN.replace(
            'reads = ("question",)', 'reads = ("question", "scores")'
        )
        messages = _stage_messages(source)
        assert any("declares read 'scores'" in m for m in messages)

    def test_declared_but_unused_write_flagged(self):
        source = self.CLEAN.replace(
            'writes = ("matched",)', 'writes = ("matched", "beam")'
        )
        messages = _stage_messages(source)
        assert any("declares write 'beam'" in m for m in messages)

    def test_reading_own_write_is_legal(self):
        source = self.CLEAN.replace(
            "ctx.matched = ctx.question",
            "ctx.matched = ctx.question\n        ctx.matched = list(ctx.matched)",
        )
        assert _stage_rules(source) == []

    def test_ambient_cache_and_trace_are_legal(self):
        source = self.CLEAN.replace(
            "ctx.matched = ctx.question",
            "ctx.matched = ctx.cache.get('k', ctx.question, list)",
        )
        assert _stage_rules(source) == []

    def test_module_helper_accesses_attributed_to_stage(self):
        source = textwrap.dedent(
            """
            def _helper(ctx):
                return ctx.database

            class FooStage:
                name = "foo"
                reads = ("question",)
                writes = ("matched",)

                def run(self, ctx):
                    ctx.matched = _helper(ctx) and ctx.question
            """
        )
        messages = _stage_messages(source)
        assert any("reads ctx.database" in m for m in messages)

    def test_transitive_helper_fixpoint(self):
        source = textwrap.dedent(
            """
            def _inner(ctx):
                return ctx.scores

            def _outer(ctx):
                return _inner(ctx)

            class FooStage:
                name = "foo"
                reads = ("question",)
                writes = ("matched",)

                def run(self, ctx):
                    ctx.matched = _outer(ctx) and ctx.question
            """
        )
        messages = _stage_messages(source)
        assert any("reads ctx.scores" in m for m in messages)

    def test_non_stage_classes_ignored(self):
        source = textwrap.dedent(
            """
            class NotAStage:
                def run(self, ctx):
                    ctx.anything = ctx.whatever

            class AlsoNot:
                name = "abstract"

                def run(self, ctx):
                    ctx.x = 1
            """
        )
        assert _stage_rules(source) == []


class TestStageContractOnRealModule:
    """The shipped ``engine/_stages.py`` against its own declarations."""

    def test_real_stages_pass(self):
        source = STAGES_PATH.read_text(encoding="utf-8")
        assert _stage_rules(source) == []

    def test_seeded_undeclared_write_mutation_is_caught(self):
        # Splice an undeclared ctx write into ValueRetrieveStage.run and
        # verify STAGE001 rejects the mutant — the rule demonstrably
        # guards the real contracts, not just toy fixtures.
        source = STAGES_PATH.read_text(encoding="utf-8")
        needle = "        ctx.linking_question = ctx.question\n"
        assert needle in source
        mutated = source.replace(
            needle, "        ctx.beam = []\n" + needle, 1
        )
        messages = _stage_messages(mutated)
        assert any(
            "'value_retrieve' writes ctx.beam" in m for m in messages
        ), messages

    def test_seeded_undeclared_read_mutation_is_caught(self):
        source = STAGES_PATH.read_text(encoding="utf-8")
        needle = "        ctx.linking_question = ctx.question\n"
        mutated = source.replace(
            needle, "        _ = ctx.chosen\n" + needle, 1
        )
        messages = _stage_messages(mutated)
        assert any(
            "'value_retrieve' reads ctx.chosen" in m for m in messages
        ), messages

    def test_docstring_table_matches_declarations(self):
        # the module docstring's contract block is rendered from the
        # declared tuples — regenerate with contract_table() on edit.
        indented = textwrap.indent(_stages.contract_table(), "    ")
        assert indented in _stages.__doc__


# ---------------------------------------------------------------------------
# DET001 — determinism


class TestDeterminism:
    def test_module_level_random_flagged(self):
        assert _rules("import random\nx = random.random()\n") == ["DET001"]
        assert _rules("import random\nx = random.choice(xs)\n") == ["DET001"]

    def test_from_import_flagged(self):
        assert _rules("from random import choice\nx = choice(xs)\n") == ["DET001"]

    def test_seeded_instance_legal(self):
        source = "import random\nrng = random.Random(7)\nx = rng.random()\n"
        assert _rules(source) == []

    def test_unseeded_instance_flagged(self):
        assert _rules("import random\nrng = random.Random()\n") == ["DET001"]

    def test_system_random_flagged(self):
        assert _rules("import random\nr = random.SystemRandom()\n") == ["DET001"]

    def test_numpy_global_rng_flagged_via_alias(self):
        assert _rules("import numpy as np\nx = np.random.rand()\n") == ["DET001"]

    def test_numpy_seeded_default_rng_legal(self):
        source = "import numpy as np\nrng = np.random.default_rng(3)\n"
        assert _rules(source) == []

    def test_numpy_unseeded_default_rng_flagged(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        assert _rules(source) == ["DET001"]

    def test_entropy_sources_flagged(self):
        assert _rules("import os\nx = os.urandom(8)\n") == ["DET001"]
        assert _rules("import uuid\nx = uuid.uuid4()\n") == ["DET001"]
        assert _rules("import secrets\nx = secrets.token_hex()\n") == ["DET001"]

    def test_for_over_set_literal_flagged(self):
        assert _rules("for x in {1, 2}:\n    out.append(x)\n") == ["DET001"]

    def test_for_over_set_call_flagged(self):
        assert _rules("for x in set(xs):\n    out.append(x)\n") == ["DET001"]

    def test_comprehension_over_set_flagged(self):
        assert _rules("ys = [x for x in set(xs)]\n") == ["DET001"]

    def test_ordered_consumers_flagged(self):
        assert _rules("ys = list({1, 2})\n") == ["DET001"]
        assert _rules("s = ', '.join({'a', 'b'})\n") == ["DET001"]

    def test_sorted_set_legal(self):
        assert _rules("ys = sorted(set(xs))\n") == []
        assert _rules("for x in sorted({1, 2}):\n    pass\n") == []

    def test_dict_fromkeys_legal(self):
        assert _rules("for x in dict.fromkeys(xs):\n    pass\n") == []

    def test_membership_test_legal(self):
        assert _rules("ok = x in {1, 2}\n") == []


# ---------------------------------------------------------------------------
# LOCK001 — lock order and blocking-under-lock


def _lock_rules(source: str, path: str = "serving/mod.py") -> list[str]:
    return _rules(source, path=path, rule_ids=["LOCK001"])


def _lock_messages(source: str, path: str = "serving/mod.py") -> list[str]:
    return _messages(source, path=path, rule_ids=["LOCK001"])


class TestLockOrder:
    INVERSION = textwrap.dedent(
        """
        import threading

        class A:
            def __init__(self):
                self.l1 = threading.Lock()
                self.l2 = threading.Lock()

            def m1(self):
                with self.l1:
                    with self.l2:
                        pass

            def m2(self):
                with self.l2:
                    with self.l1:
                        pass
        """
    )

    def test_abba_inversion_flagged(self):
        messages = _lock_messages(self.INVERSION)
        assert len(messages) == 1
        assert "lock-order inversion" in messages[0]
        assert "A.l1" in messages[0] and "A.l2" in messages[0]

    def test_consistent_order_legal(self):
        source = self.INVERSION.replace(
            "with self.l2:\n            with self.l1:",
            "with self.l1:\n            with self.l2:",
        )
        assert source != self.INVERSION
        assert _lock_rules(source) == []

    def test_blocking_under_lock_flagged(self):
        source = textwrap.dedent(
            """
            import threading

            class B:
                def __init__(self, clock):
                    self.lock = threading.Lock()
                    self.clock = clock

                def m(self):
                    with self.lock:
                        self.clock.sleep(1)
            """
        )
        messages = _lock_messages(source)
        assert any(
            "holds B.lock across blocking call .sleep" in m for m in messages
        )

    def test_transitive_blocking_via_self_call_flagged(self):
        source = textwrap.dedent(
            """
            import threading

            class C:
                def __init__(self, db):
                    self.lock = threading.Lock()
                    self.db = db

                def outer(self):
                    with self.lock:
                        self.inner()

                def inner(self):
                    self.db.execute("SELECT 1")
            """
        )
        messages = _lock_messages(source)
        assert any("reached via self.inner()" in m for m in messages)

    def test_blocking_after_release_legal(self):
        source = textwrap.dedent(
            """
            import threading

            class D:
                def __init__(self, clock):
                    self.lock = threading.Lock()
                    self.clock = clock

                def m(self):
                    with self.lock:
                        x = 1
                    self.clock.sleep(1)
            """
        )
        assert _lock_rules(source) == []

    def test_nonreentrant_reacquisition_flagged(self):
        source = textwrap.dedent(
            """
            import threading

            class E:
                def __init__(self):
                    self.lock = threading.Lock()

                def m(self):
                    with self.lock:
                        with self.lock:
                            pass
            """
        )
        messages = _lock_messages(source)
        assert any("self-deadlock" in m for m in messages)

    def test_rlock_reacquisition_legal(self):
        source = textwrap.dedent(
            """
            import threading

            class F:
                def __init__(self):
                    self.lock = threading.RLock()

                def m(self):
                    with self.lock:
                        with self.lock:
                            pass
            """
        )
        assert _lock_rules(source) == []

    def test_condition_aliases_to_underlying_lock(self):
        source = textwrap.dedent(
            """
            import threading

            class G:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cv = threading.Condition(self._lock)

                def m(self):
                    with self._cv:
                        with self._lock:
                            pass
            """
        )
        # the condition IS the lock, so nesting them is a self-deadlock.
        messages = _lock_messages(source)
        assert any("self-deadlock" in m for m in messages)

    def test_lock_getter_method_resolved(self):
        source = textwrap.dedent(
            """
            import threading

            class H:
                def __init__(self, clock):
                    self._guard = threading.Lock()
                    self._locks = {}
                    self.clock = clock

                def _lock_for(self, key):
                    with self._guard:
                        lock = self._locks.get(key)
                        if lock is None:
                            lock = self._locks[key] = threading.Lock()
                        return lock

                def m(self, key):
                    lock = self._lock_for(key)
                    with lock:
                        self.clock.sleep(1)
            """
        )
        messages = _lock_messages(source)
        assert any(
            "holds H._locks[*] across blocking call .sleep" in m
            for m in messages
        )

    def test_out_of_scope_paths_ignored(self):
        source = textwrap.dedent(
            """
            import threading

            class B:
                def __init__(self, clock):
                    self.lock = threading.Lock()
                    self.clock = clock

                def m(self):
                    with self.lock:
                        self.clock.sleep(1)
            """
        )
        assert _lock_rules(source, path="core/mod.py") == []
