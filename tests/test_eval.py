"""Tests for evaluation metrics: EX, TS, VES, AUC."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExecutionError
from repro.eval import (
    TestSuite,
    execution_accuracy,
    execution_match,
    results_match,
    roc_auc,
    valid_efficiency_score,
)
from repro.eval import test_suite_accuracy as ts_accuracy

from tests.fixtures import bank_database


class TestResultsMatch:
    def test_unordered_multiset(self):
        assert results_match([(1,), (2,)], [(2,), (1,)])

    def test_unordered_respects_duplicates(self):
        assert not results_match([(1,), (1,)], [(1,)])

    def test_ordered(self):
        assert not results_match([(1,), (2,)], [(2,), (1,)], ordered=True)
        assert results_match([(1,), (2,)], [(1,), (2,)], ordered=True)

    def test_int_float_equivalence(self):
        assert results_match([(1.0,)], [(1,)])

    def test_float_tolerance(self):
        assert results_match([(0.3333333,)], [(0.333333349,)])


class TestExecutionMatch:
    def test_equivalent_queries_match(self):
        db = bank_database()
        assert execution_match(
            db,
            "SELECT name FROM client WHERE district = 'Jesenik'",
            "SELECT name FROM client WHERE district = 'Jesenik' AND 1 = 1",
        )

    def test_wrong_query_misses(self):
        db = bank_database()
        assert not execution_match(
            db,
            "SELECT name FROM client WHERE district = 'Prague'",
            "SELECT name FROM client WHERE district = 'Jesenik'",
        )

    def test_unexecutable_prediction_is_miss(self):
        db = bank_database()
        assert not execution_match(db, "SELECT FROM nothing", "SELECT * FROM client")

    def test_unexecutable_gold_raises(self):
        db = bank_database()
        with pytest.raises(ExecutionError):
            execution_match(db, "SELECT * FROM client", "BROKEN GOLD")

    def test_order_by_gold_requires_order(self):
        db = bank_database()
        gold = "SELECT name FROM client ORDER BY name ASC"
        shuffled = "SELECT name FROM client ORDER BY name DESC"
        assert not execution_match(db, shuffled, gold)

    def test_execution_accuracy_mean(self):
        db = bank_database()
        pairs = [
            (db, "SELECT COUNT(*) FROM client", "SELECT COUNT(*) FROM client"),
            (db, "SELECT COUNT(*) FROM loan", "SELECT COUNT(*) FROM client"),
        ]
        assert execution_accuracy(pairs) == pytest.approx(0.5)

    def test_execution_accuracy_empty(self):
        assert execution_accuracy([]) == 0.0


class TestTestSuite:
    def test_correct_query_passes_all_variants(self):
        suite = TestSuite(bank_database(), n_variants=3, seed=1)
        gold = "SELECT name FROM client WHERE district = 'Jesenik'"
        assert suite.check(gold, gold)

    def test_coincidental_match_is_caught(self):
        # On the original content both queries return 2 rows, but they
        # are semantically different; at least one variant separates them.
        db = bank_database()
        gold = "SELECT COUNT(*) FROM client WHERE district = 'Jesenik'"
        coincidence = "SELECT COUNT(*) FROM client WHERE gender = 'M'"
        assert execution_match(db, coincidence, gold)  # false positive under EX
        suite = TestSuite(db, n_variants=6, seed=3)
        assert not suite.check(coincidence, gold)

    def test_variant_count(self):
        suite = TestSuite(bank_database(), n_variants=2, seed=0)
        assert len(suite.databases()) == 3

    def test_deterministic_for_seed(self):
        first = TestSuite(bank_database(), n_variants=2, seed=5)
        second = TestSuite(bank_database(), n_variants=2, seed=5)
        assert first.variants[0].all_rows() == second.variants[0].all_rows()

    def test_invalid_variant_count(self):
        with pytest.raises(ValueError):
            TestSuite(bank_database(), n_variants=0)

    def test_test_suite_accuracy_alignment(self):
        suite = TestSuite(bank_database(), n_variants=1, seed=0)
        with pytest.raises(ValueError):
            ts_accuracy([suite], ["a", "b"], ["a"])

    def test_test_suite_accuracy_empty(self):
        assert ts_accuracy([], [], []) == 0.0


class TestVES:
    def test_correct_prediction_scores_positive(self):
        db = bank_database()
        gold = "SELECT name FROM client WHERE district = 'Jesenik'"
        score = valid_efficiency_score(db, gold, gold, runs=3)
        assert score > 0.0

    def test_wrong_prediction_scores_zero(self):
        db = bank_database()
        score = valid_efficiency_score(
            db,
            "SELECT name FROM client WHERE district = 'Prague'",
            "SELECT name FROM client WHERE district = 'Jesenik'",
            runs=2,
        )
        assert score == 0.0

    def test_invalid_runs(self):
        with pytest.raises(ValueError):
            valid_efficiency_score(bank_database(), "SELECT 1", "SELECT 1", runs=0)


class TestROCAUC:
    def test_perfect_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == 0.0

    def test_random_ties(self):
        assert roc_auc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_single_class_is_half(self):
        assert roc_auc([1, 1, 1], [0.1, 0.5, 0.9]) == 0.5

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            roc_auc([0, 1], [0.5])

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=1),
                      st.floats(min_value=0, max_value=1, allow_nan=False)),
            min_size=2, max_size=30,
        )
    )
    def test_auc_bounded(self, pairs):
        labels = [label for label, _ in pairs]
        scores = [score for _, score in pairs]
        value = roc_auc(labels, scores)
        assert 0.0 <= value <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=1),
                      st.floats(min_value=0, max_value=1, allow_nan=False)),
            min_size=4, max_size=20,
        )
    )
    def test_auc_complementary_under_score_negation(self, pairs):
        labels = [label for label, _ in pairs]
        if len(set(labels)) < 2:
            return
        scores = [score for _, score in pairs]
        negated = [-score for score in scores]
        assert roc_auc(labels, scores) + roc_auc(labels, negated) == pytest.approx(1.0)
