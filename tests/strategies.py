"""Shared hypothesis strategies, notably random SQL ASTs.

The AST strategy generates queries inside the supported SQL subset so
property tests can assert the parse/serialize round-trip exactly.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.sqlgen.ast import (
    Aggregation,
    BetweenCondition,
    BinaryCondition,
    ColumnRef,
    CompoundCondition,
    InCondition,
    JoinEdge,
    LikeCondition,
    Literal,
    NullCondition,
    OrderItem,
    Query,
    SelectItem,
)
from repro.sqlgen.lexer import FUNCTIONS, KEYWORDS

_RESERVED = KEYWORDS | FUNCTIONS

identifiers = (
    st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
    .filter(lambda name: name not in _RESERVED and not name.endswith("_"))
)

safe_strings = st.text(
    alphabet="abcdefghij XYZ'%-", min_size=1, max_size=12
)

_numbers = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.floats(
        min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False
    ).map(lambda value: round(value, 3)).filter(lambda value: not float(value).is_integer()),
)

literals = st.one_of(
    _numbers.map(Literal),
    safe_strings.map(Literal),
)

column_refs = st.builds(ColumnRef, table=identifiers, column=identifiers)

aggregations = st.builds(
    Aggregation,
    func=st.sampled_from(["count", "sum", "avg", "min", "max"]),
    arg=st.one_of(column_refs, st.just(ColumnRef(table="", column="*"))),
    distinct=st.booleans(),
).filter(lambda agg: not (agg.arg.column == "*" and agg.func != "count"))

select_exprs = st.one_of(column_refs, aggregations)


def _where_conditions(query_strategy: st.SearchStrategy) -> st.SearchStrategy:
    binary = st.builds(
        BinaryCondition,
        left=column_refs,
        op=st.sampled_from(["=", "!=", "<", ">", "<=", ">="]),
        right=st.one_of(literals, column_refs),
    )
    in_list = st.builds(
        InCondition,
        expr=column_refs,
        values=st.lists(literals, min_size=1, max_size=3).map(tuple),
        negated=st.booleans(),
    )
    in_subquery = st.builds(
        InCondition,
        expr=column_refs,
        subquery=query_strategy,
        negated=st.booleans(),
    )
    between = st.builds(
        BetweenCondition,
        expr=column_refs,
        low=_numbers.map(Literal),
        high=_numbers.map(Literal),
    )
    like = st.builds(
        LikeCondition, expr=column_refs, pattern=safe_strings.map(Literal),
        negated=st.booleans(),
    )
    null = st.builds(NullCondition, expr=column_refs, negated=st.booleans())
    simple = st.one_of(binary, in_list, between, like, null, in_subquery)

    def compound(children: st.SearchStrategy) -> st.SearchStrategy:
        return st.builds(
            CompoundCondition,
            op=st.sampled_from(["AND", "OR"]),
            conditions=st.lists(children, min_size=2, max_size=3).map(tuple),
        )

    return st.recursive(simple, compound, max_leaves=4)


def _having_conditions() -> st.SearchStrategy:
    return st.builds(
        BinaryCondition,
        left=aggregations,
        op=st.sampled_from(["=", "!=", "<", ">", "<=", ">="]),
        right=_numbers.map(Literal),
    )


@st.composite
def simple_queries(draw, allow_subquery: bool = True) -> Query:
    """A random, structurally valid Query."""
    subquery = (
        simple_queries(allow_subquery=False) if allow_subquery else st.nothing()
    )
    select_items = tuple(
        SelectItem(expr=expr)
        for expr in draw(st.lists(select_exprs, min_size=1, max_size=3))
    )
    joins = tuple(
        draw(
            st.lists(
                st.builds(
                    JoinEdge, table=identifiers, left=column_refs, right=column_refs
                ),
                max_size=2,
            )
        )
    )
    where = draw(st.none() | _where_conditions(subquery)) if allow_subquery else draw(
        st.none() | _where_conditions(st.nothing())
    )
    group_by = tuple(draw(st.lists(column_refs, max_size=2)))
    having = draw(st.none() | _having_conditions()) if group_by else None
    order_by = tuple(
        draw(
            st.lists(
                st.builds(OrderItem, expr=select_exprs, descending=st.booleans()),
                max_size=2,
            )
        )
    )
    limit = draw(st.none() | st.integers(min_value=0, max_value=100))
    return Query(
        select_items=select_items,
        from_table=draw(identifiers),
        joins=joins,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=limit,
        distinct=draw(st.booleans()),
    )


# -- schema-grounded queries over the bank fixture ---------------------------
#
# The free-form ``queries()`` strategy exercises the parser round-trip;
# these queries additionally *execute* on ``tests.fixtures.bank_database``
# so properties can compare real result sets (canonicalization must
# preserve execution, not just parse).

_BANK_COLUMNS: dict[str, dict[str, str]] = {
    "client": {
        "client_id": "num", "name": "text", "gender": "text", "district": "text",
    },
    "account": {
        "account_id": "num", "client_id": "num", "balance": "num",
        "open_date": "text",
    },
    "loan": {
        "loan_id": "num", "account_id": "num", "amount": "num", "status": "text",
    },
}

#: FK edges as (left_table, right_table) -> (left_column, right_column).
_BANK_EDGES = {
    ("client", "account"): ("client_id", "client_id"),
    ("account", "loan"): ("account_id", "account_id"),
}

_BANK_PATHS = (
    ("client",),
    ("account",),
    ("loan",),
    ("client", "account"),
    ("account", "loan"),
    ("client", "account", "loan"),
)

_BANK_PRIMARY = {"client": "client_id", "account": "account_id", "loan": "loan_id"}

_BANK_TEXT_VALUES = (
    "Prague", "Jesenik", "F", "M", "approved", "rejected", "%a%", "Sarah%",
)

_bank_numbers = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.integers(min_value=100, max_value=60_000),
    st.floats(min_value=0, max_value=5000, allow_nan=False, allow_infinity=False)
    .map(lambda value: round(value, 2)),
)


def _bank_condition(draw, scope: tuple[str, ...]):
    """One executable predicate over the tables in ``scope``."""
    table = draw(st.sampled_from(scope))
    column = draw(st.sampled_from(sorted(_BANK_COLUMNS[table])))
    ref = ColumnRef(table, column)
    kind = _BANK_COLUMNS[table][column]
    op = st.sampled_from(["=", "!=", "<", ">", "<=", ">="])
    if kind == "num":
        simple = draw(
            st.sampled_from(["binary", "between", "in", "null"])
        )
        if simple == "binary":
            return BinaryCondition(ref, draw(op), Literal(draw(_bank_numbers)))
        if simple == "between":
            low, high = sorted([draw(_bank_numbers), draw(_bank_numbers)])
            return BetweenCondition(ref, Literal(low), Literal(high))
        if simple == "in":
            values = draw(st.lists(_bank_numbers, min_size=1, max_size=3))
            return InCondition(
                ref, tuple(Literal(v) for v in values),
                negated=draw(st.booleans()),
            )
        return NullCondition(ref, negated=draw(st.booleans()))
    text = st.sampled_from(_BANK_TEXT_VALUES)
    simple = draw(st.sampled_from(["binary", "like", "in", "null"]))
    if simple == "binary":
        return BinaryCondition(ref, draw(st.sampled_from(["=", "!="])),
                               Literal(draw(text)))
    if simple == "like":
        return LikeCondition(ref, Literal(draw(text)), negated=draw(st.booleans()))
    if simple == "in":
        values = draw(st.lists(text, min_size=1, max_size=3))
        return InCondition(
            ref, tuple(Literal(v) for v in values), negated=draw(st.booleans())
        )
    return NullCondition(ref, negated=draw(st.booleans()))


@st.composite
def bank_queries(draw) -> Query:
    """A random query that executes on the bank fixture database.

    Row order is kept deterministic across equivalent plans: ORDER BY
    always ends in the driving table's primary key (a total order), and
    LIMIT only appears under such an ORDER BY.  Without that gate,
    equivalent rewrites could legitimately return different rows (tie-
    breaking under LIMIT is plan-dependent), which is exactly the
    nondeterminism the canonicalizer's order-sensitivity rules avoid.
    """
    path = draw(st.sampled_from(_BANK_PATHS))
    joins = tuple(
        JoinEdge(
            table=right,
            left=ColumnRef(left, _BANK_EDGES[(left, right)][0]),
            right=ColumnRef(right, _BANK_EDGES[(left, right)][1]),
        )
        for left, right in zip(path, path[1:])
    )
    scope_columns = [
        ColumnRef(table, column)
        for table in path
        for column in sorted(_BANK_COLUMNS[table])
    ]
    numeric_columns = [
        ref for ref in scope_columns if _BANK_COLUMNS[ref.table][ref.column] == "num"
    ]
    agg = st.one_of(
        st.just(Aggregation("count", ColumnRef("", "*"))),
        st.builds(
            Aggregation,
            func=st.sampled_from(["count", "sum", "avg", "min", "max"]),
            arg=st.sampled_from(numeric_columns),
            distinct=st.booleans(),
        ),
    )
    select_items = tuple(
        SelectItem(expr=expr)
        for expr in draw(
            st.lists(
                st.one_of(st.sampled_from(scope_columns), agg),
                min_size=1,
                max_size=3,
            )
        )
    )
    n_leaves = draw(st.integers(min_value=0, max_value=3))
    leaves = [_bank_condition(draw, path) for _ in range(n_leaves)]
    if len(leaves) >= 2:
        where = CompoundCondition(
            op=draw(st.sampled_from(["AND", "OR"])), conditions=tuple(leaves)
        )
    else:
        where = leaves[0] if leaves else None
    group_by = tuple(draw(st.lists(st.sampled_from(scope_columns), max_size=2)))
    having = (
        BinaryCondition(
            Aggregation("count", ColumnRef("", "*")),
            draw(st.sampled_from(["<", ">", ">="])),
            Literal(draw(st.integers(min_value=0, max_value=3))),
        )
        if group_by and draw(st.booleans())
        else None
    )
    order_by: tuple[OrderItem, ...] = ()
    limit = None
    distinct = False
    if not group_by and draw(st.booleans()):
        order_by = (
            *(
                OrderItem(expr=ref, descending=draw(st.booleans()))
                for ref in draw(st.lists(st.sampled_from(scope_columns), max_size=1))
            ),
            OrderItem(
                expr=ColumnRef(path[0], _BANK_PRIMARY[path[0]]),
                descending=draw(st.booleans()),
            ),
        )
        limit = draw(st.none() | st.integers(min_value=0, max_value=10))
    elif not group_by:
        distinct = draw(st.booleans())
    return Query(
        select_items=select_items,
        from_table=path[0],
        joins=joins,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=limit,
        distinct=distinct,
    )


@st.composite
def queries(draw) -> Query:
    """A random query, possibly with one compound set operation."""
    base = draw(simple_queries())
    if draw(st.booleans()):
        return base
    other = draw(simple_queries(allow_subquery=False))
    return Query(
        select_items=base.select_items,
        from_table=base.from_table,
        joins=base.joins,
        where=base.where,
        group_by=base.group_by,
        having=base.having,
        order_by=base.order_by,
        limit=base.limit,
        distinct=base.distinct,
        compound_op=draw(st.sampled_from(["UNION", "INTERSECT", "EXCEPT"])),
        compound_query=other,
    )
