"""Shared hypothesis strategies, notably random SQL ASTs.

The AST strategy generates queries inside the supported SQL subset so
property tests can assert the parse/serialize round-trip exactly.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.sqlgen.ast import (
    Aggregation,
    BetweenCondition,
    BinaryCondition,
    ColumnRef,
    CompoundCondition,
    InCondition,
    JoinEdge,
    LikeCondition,
    Literal,
    NullCondition,
    OrderItem,
    Query,
    SelectItem,
)
from repro.sqlgen.lexer import FUNCTIONS, KEYWORDS

_RESERVED = KEYWORDS | FUNCTIONS

identifiers = (
    st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
    .filter(lambda name: name not in _RESERVED and not name.endswith("_"))
)

safe_strings = st.text(
    alphabet="abcdefghij XYZ'%-", min_size=1, max_size=12
)

_numbers = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.floats(
        min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False
    ).map(lambda value: round(value, 3)).filter(lambda value: not float(value).is_integer()),
)

literals = st.one_of(
    _numbers.map(Literal),
    safe_strings.map(Literal),
)

column_refs = st.builds(ColumnRef, table=identifiers, column=identifiers)

aggregations = st.builds(
    Aggregation,
    func=st.sampled_from(["count", "sum", "avg", "min", "max"]),
    arg=st.one_of(column_refs, st.just(ColumnRef(table="", column="*"))),
    distinct=st.booleans(),
).filter(lambda agg: not (agg.arg.column == "*" and agg.func != "count"))

select_exprs = st.one_of(column_refs, aggregations)


def _where_conditions(query_strategy: st.SearchStrategy) -> st.SearchStrategy:
    binary = st.builds(
        BinaryCondition,
        left=column_refs,
        op=st.sampled_from(["=", "!=", "<", ">", "<=", ">="]),
        right=st.one_of(literals, column_refs),
    )
    in_list = st.builds(
        InCondition,
        expr=column_refs,
        values=st.lists(literals, min_size=1, max_size=3).map(tuple),
        negated=st.booleans(),
    )
    in_subquery = st.builds(
        InCondition,
        expr=column_refs,
        subquery=query_strategy,
        negated=st.booleans(),
    )
    between = st.builds(
        BetweenCondition,
        expr=column_refs,
        low=_numbers.map(Literal),
        high=_numbers.map(Literal),
    )
    like = st.builds(
        LikeCondition, expr=column_refs, pattern=safe_strings.map(Literal),
        negated=st.booleans(),
    )
    null = st.builds(NullCondition, expr=column_refs, negated=st.booleans())
    simple = st.one_of(binary, in_list, between, like, null, in_subquery)

    def compound(children: st.SearchStrategy) -> st.SearchStrategy:
        return st.builds(
            CompoundCondition,
            op=st.sampled_from(["AND", "OR"]),
            conditions=st.lists(children, min_size=2, max_size=3).map(tuple),
        )

    return st.recursive(simple, compound, max_leaves=4)


def _having_conditions() -> st.SearchStrategy:
    return st.builds(
        BinaryCondition,
        left=aggregations,
        op=st.sampled_from(["=", "!=", "<", ">", "<=", ">="]),
        right=_numbers.map(Literal),
    )


@st.composite
def simple_queries(draw, allow_subquery: bool = True) -> Query:
    """A random, structurally valid Query."""
    subquery = (
        simple_queries(allow_subquery=False) if allow_subquery else st.nothing()
    )
    select_items = tuple(
        SelectItem(expr=expr)
        for expr in draw(st.lists(select_exprs, min_size=1, max_size=3))
    )
    joins = tuple(
        draw(
            st.lists(
                st.builds(
                    JoinEdge, table=identifiers, left=column_refs, right=column_refs
                ),
                max_size=2,
            )
        )
    )
    where = draw(st.none() | _where_conditions(subquery)) if allow_subquery else draw(
        st.none() | _where_conditions(st.nothing())
    )
    group_by = tuple(draw(st.lists(column_refs, max_size=2)))
    having = draw(st.none() | _having_conditions()) if group_by else None
    order_by = tuple(
        draw(
            st.lists(
                st.builds(OrderItem, expr=select_exprs, descending=st.booleans()),
                max_size=2,
            )
        )
    )
    limit = draw(st.none() | st.integers(min_value=0, max_value=100))
    return Query(
        select_items=select_items,
        from_table=draw(identifiers),
        joins=joins,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        limit=limit,
        distinct=draw(st.booleans()),
    )


@st.composite
def queries(draw) -> Query:
    """A random query, possibly with one compound set operation."""
    base = draw(simple_queries())
    if draw(st.booleans()):
        return base
    other = draw(simple_queries(allow_subquery=False))
    return Query(
        select_items=base.select_items,
        from_table=base.from_table,
        joins=base.joins,
        where=base.where,
        group_by=base.group_by,
        having=base.having,
        order_by=base.order_by,
        limit=base.limit,
        distinct=base.distinct,
        compound_op=draw(st.sampled_from(["UNION", "INTERSECT", "EXCEPT"])),
        compound_query=other,
    )
