"""Tests for the baseline registry and the augmentation pipeline."""

import pytest

from repro.augment import (
    QuestionToSQLAugmenter,
    SQLToQuestionAugmenter,
    SyntheticLLM,
    augment_domain,
)
from repro.augment.sql2question import templated_question
from repro.baselines import BASELINE_NAMES, make_baseline
from repro.datasets import build_bank_financials
from repro.datasets.domains import DomainConfig
from repro.errors import CheckpointError, DatasetError, TrainingError
from repro.sqlgen.parser import parse_sql

from tests.fixtures import bank_database


@pytest.fixture(scope="module")
def bank():
    return build_bank_financials(
        DomainConfig(seed_pairs=8, test_examples=10, rows_per_table=40,
                     extra_columns=2, seed=5)
    )


class TestBaselineRegistry:
    def test_known_names_build(self):
        for name in BASELINE_NAMES:
            spec = make_baseline(name)
            assert spec.name == name
            assert spec.mode in ("sft", "fewshot")

    def test_unknown_name_raises(self):
        with pytest.raises(CheckpointError):
            make_baseline("gpt-5")

    def test_closed_models_have_simulated_latency(self):
        assert make_baseline("din-sql-gpt-4").simulated_api_latency_s > 0
        assert make_baseline("sft-llama2-7b").simulated_api_latency_s == 0

    def test_parser_factories_work(self):
        parser = make_baseline("chatgpt").make_parser()
        assert parser.config.family == "closed"
        parser = make_baseline("sft-llama2-7b").make_parser()
        assert parser.config.family == "llama"

    def test_gpt4_has_larger_capacity_than_chatgpt(self):
        gpt4 = make_baseline("gpt-4-fewshot").make_parser()
        chatgpt = make_baseline("chatgpt").make_parser()
        assert gpt4.config.embed_dim > chatgpt.config.embed_dim
        assert gpt4.config.skeleton_capacity > chatgpt.config.skeleton_capacity


class TestSyntheticLLM:
    def test_temperature_validation(self):
        with pytest.raises(ValueError):
            SyntheticLLM(temperature=3.0)

    def test_question_generation(self, bank):
        gdb = bank.generated["bank_financials"]
        llm = SyntheticLLM(seed=0)
        questions = llm.generate_questions(bank.train, gdb, n=10)
        assert len(questions) >= 5
        assert len(set(questions)) == len(questions)  # all distinct

    def test_write_sql_executes_or_falls_back(self, bank):
        llm = SyntheticLLM(seed=0)
        database = bank.databases["bank_financials"]
        sql = llm.write_sql("How many clients are there?", database)
        assert database.is_executable(sql)

    def test_refine_question_naturalizes_names(self):
        llm = SyntheticLLM(seed=0, temperature=0.0)
        refined = llm.refine_question(
            "Return the c4 of account.", name_map={"c4": "currency"}
        )
        assert "currency" in refined
        assert "c4" not in refined

    def test_deterministic_for_seed(self, bank):
        gdb = bank.generated["bank_financials"]
        first = SyntheticLLM(seed=3).generate_questions(bank.train, gdb, n=5)
        second = SyntheticLLM(seed=3).generate_questions(bank.train, gdb, n=5)
        assert first == second


class TestTemplatedQuestion:
    def test_renders_structure(self):
        query = parse_sql(
            "SELECT account.balance FROM account WHERE account.currency = 'EUR' "
            "ORDER BY account.balance DESC LIMIT 3"
        )
        text = templated_question(query)
        assert "balance" in text
        assert "account" in text
        assert "descending" in text
        assert "limited to 3" in text

    def test_renders_aggregation(self):
        query = parse_sql("SELECT COUNT(*) FROM loan GROUP BY loan.status")
        text = templated_question(query)
        assert "count" in text.lower()
        assert "grouped by status" in text


class TestAugmenters:
    def test_question_to_sql_produces_executable_pairs(self, bank):
        gdb = bank.generated["bank_financials"]
        pairs = QuestionToSQLAugmenter(SyntheticLLM(seed=1)).augment(
            bank.train, gdb, n_pairs=8
        )
        database = bank.databases["bank_financials"]
        assert pairs
        assert all(database.is_executable(pair.sql) for pair in pairs)

    def test_question_to_sql_needs_seeds(self, bank):
        gdb = bank.generated["bank_financials"]
        with pytest.raises(TrainingError):
            QuestionToSQLAugmenter().augment([], gdb, n_pairs=3)

    def test_sql_to_question_produces_pairs(self, bank):
        gdb = bank.generated["bank_financials"]
        pairs = SQLToQuestionAugmenter(seed=2).augment(gdb, n_pairs=10)
        assert len(pairs) == 10
        database = bank.databases["bank_financials"]
        assert all(database.is_executable(pair.sql) for pair in pairs)
        assert len({pair.sql for pair in pairs}) == 10  # distinct SQL

    def test_augment_domain_combines_sources(self, bank):
        augmented = augment_domain(
            bank, n_question_to_sql=5, n_sql_to_question=10, seed=0
        )
        assert len(augmented) > len(bank.train)
        # Seeds are preserved at the front.
        assert augmented[: len(bank.train)] == bank.train

    def test_augment_domain_requires_single_db(self):
        from repro.datasets import build_spider
        from repro.datasets.spider import SpiderConfig

        spider = build_spider(SpiderConfig(
            n_train_databases=1, n_dev_databases=1,
            train_per_database=2, dev_per_database=2, rows_per_table=10,
        ))
        with pytest.raises(DatasetError):
            augment_domain(spider)
