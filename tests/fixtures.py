"""Shared test fixtures: a small bank-like database."""

from __future__ import annotations

from repro.db import Column, Database, ForeignKey, Schema, Table


def bank_schema() -> Schema:
    """A compact finance schema echoing the paper's Figure 2."""
    return Schema(
        name="mini_bank",
        domain="finance",
        tables=(
            Table(
                name="client",
                comment="bank clients",
                columns=(
                    Column("client_id", "INTEGER", is_primary=True),
                    Column("name", "TEXT", comment="client full name"),
                    Column("gender", "TEXT", comment="M or F"),
                    Column("district", "TEXT", comment="home district"),
                ),
            ),
            Table(
                name="account",
                comment="client accounts",
                columns=(
                    Column("account_id", "INTEGER", is_primary=True),
                    Column("client_id", "INTEGER"),
                    Column("balance", "REAL", comment="current balance"),
                    Column("open_date", "DATE", comment="YYYY-MM-DD"),
                ),
            ),
            Table(
                name="loan",
                comment="loans issued per account",
                columns=(
                    Column("loan_id", "INTEGER", is_primary=True),
                    Column("account_id", "INTEGER"),
                    Column("amount", "REAL"),
                    Column("status", "TEXT", comment="approved or rejected"),
                ),
            ),
        ),
        foreign_keys=(
            ForeignKey("account", "client_id", "client", "client_id"),
            ForeignKey("loan", "account_id", "account", "account_id"),
        ),
    )


def bank_database() -> Database:
    """The bank schema populated with a few deterministic rows."""
    rows = {
        "client": [
            (1, "Sarah Martinez", "F", "Jesenik"),
            (2, "James Chen", "M", "Prague"),
            (3, "Maria Garcia", "F", "Jesenik"),
            (4, "David Novak", "M", "Boston"),
        ],
        "account": [
            (10, 1, 2500.0, "2009-01-15"),
            (11, 2, 120.5, "2010-06-30"),
            (12, 3, 9800.0, "2009-11-02"),
            (13, 4, 410.0, "2021-03-03"),
        ],
        "loan": [
            (100, 10, 5000.0, "approved"),
            (101, 11, 300.0, "rejected"),
            (102, 12, 750.0, "approved"),
        ],
    }
    return Database.from_schema(bank_schema(), rows)
