"""Tests for the core parser: retriever, slot filling, generation modes."""

import pytest

from repro.config import get_model_config
from repro.core import CodeSParser, DemonstrationRetriever
from repro.core.slotfill import (
    InstantiationContext,
    instantiate_template,
    question_aggregate,
    question_comparison_op,
    question_order_direction,
)
from repro.core.structure import question_cues, structure_prior
from repro.datasets import build_spider
from repro.datasets.base import Text2SQLExample
from repro.datasets.spider import SpiderConfig
from repro.errors import CheckpointError, TrainingError
from repro.eval.harness import evaluate_parser, pair_samples
from repro.linking.lexical import LexicalSchemaScorer
from repro.retrieval import MatchedValue
from repro.sqlgen.parser import parse_sql
from repro.sqlgen.serializer import serialize

from tests.fixtures import bank_database


_CONFIG = SpiderConfig(
    n_train_databases=2, n_dev_databases=1,
    train_per_database=15, dev_per_database=10, rows_per_table=25,
)


@pytest.fixture(scope="module")
def spider():
    return build_spider(_CONFIG)


@pytest.fixture(scope="module")
def fitted_parser(spider):
    parser = CodeSParser("codes-7b")
    parser.fit(pair_samples(spider))
    return parser


class TestDemonstrationRetriever:
    def _pool(self):
        return [
            Text2SQLExample("How many clients are there?", "SELECT COUNT(*) FROM client", "db"),
            Text2SQLExample(
                "Show the names of members from either 'United States' or 'Canada'",
                "SELECT name FROM member WHERE country = 'United States' OR country = 'Canada'",
                "db",
            ),
            Text2SQLExample("What is the average balance?", "SELECT AVG(balance) FROM account", "db"),
        ]

    def test_pattern_mode_matches_structure(self):
        retriever = DemonstrationRetriever(self._pool(), mode="pattern-aware")
        hits = retriever.retrieve("Show singers born in 1948 or 1949", k=1)
        assert "either" in hits[0].example.question

    def test_question_only_mode(self):
        retriever = DemonstrationRetriever(self._pool(), mode="question-only")
        hits = retriever.retrieve("How many accounts are there?", k=1)
        assert "How many" in hits[0].example.question

    def test_random_mode_is_seeded(self):
        first = DemonstrationRetriever(self._pool(), mode="random", seed=1)
        second = DemonstrationRetriever(self._pool(), mode="random", seed=1)
        assert [h.example.question for h in first.retrieve("q", k=2)] == [
            h.example.question for h in second.retrieve("q", k=2)
        ]

    def test_k_zero(self):
        retriever = DemonstrationRetriever(self._pool())
        assert retriever.retrieve("anything", k=0) == []

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            DemonstrationRetriever(self._pool(), mode="bogus")

    def test_scores_descending(self):
        retriever = DemonstrationRetriever(self._pool())
        hits = retriever.retrieve("How many clients are there?", k=3)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)


class TestQuestionCueHelpers:
    def test_comparison_ops(self):
        assert question_comparison_op("players with more than 5 goals", "<") == ">"
        assert question_comparison_op("players with less than 5 goals", ">") == "<"
        assert question_comparison_op("at least 5 goals", ">") == ">="
        assert question_comparison_op("with 5 goals", ">") == ">"

    def test_order_direction(self):
        assert question_order_direction("the highest salary", False) is True
        assert question_order_direction("the lowest salary", True) is False
        assert question_order_direction("sorted from smallest to largest", True) is False
        assert question_order_direction("no cue here", True) is True

    def test_aggregate(self):
        assert question_aggregate("the average price", "max") == "avg"
        assert question_aggregate("the total cost", "avg") == "sum"
        assert question_aggregate("nothing here", "min") == "min"


class TestStructurePrior:
    def test_count_cue_prefers_count_skeleton(self):
        count_query = parse_sql("SELECT COUNT(*) FROM t")
        select_query = parse_sql("SELECT a FROM t")
        question = "How many things are there?"
        assert structure_prior(question, count_query) > structure_prior(
            question, select_query
        )

    def test_no_count_cue_demotes_count(self):
        count_query = parse_sql("SELECT COUNT(*) FROM t")
        select_query = parse_sql("SELECT a FROM t")
        question = "Show the names of things"
        assert structure_prior(question, select_query) > structure_prior(
            question, count_query
        )

    def test_subquery_cue(self):
        sub = parse_sql("SELECT a FROM t WHERE b > ( SELECT AVG(b) FROM t )")
        plain = parse_sql("SELECT a FROM t WHERE b > 5")
        question = "items with b above the average"
        assert structure_prior(question, sub) > structure_prior(question, plain)

    def test_cues_extracted(self):
        cues = question_cues("How many items are there for each type?")
        assert "count" in cues
        assert "group" in cues

    def test_bounded(self):
        query = parse_sql("SELECT COUNT(*) FROM t")
        for question in ("", "how many for each or between letter average"):
            assert 0.05 <= structure_prior(question, query) <= 0.95


class TestSlotFill:
    def _ctx(self, question, matched=()):
        db = bank_database()
        scores = LexicalSchemaScorer().score_schema(question, db.schema, list(matched))
        return InstantiationContext(
            question=question,
            schema=db.schema,
            scores=scores,
            matched_values=list(matched),
            slot_depth=3,
        ), db

    def test_single_table_instantiation(self):
        template = parse_sql("SELECT t.a FROM t WHERE t.b = 'x'")
        match = MatchedValue("client", "district", "Jesenik", 1.0)
        ctx, db = self._ctx("names of clients living in Jesenik", [match])
        candidates = instantiate_template(template, ctx)
        sqls = [serialize(c.query) for c in candidates]
        assert any("client.district = 'Jesenik'" in sql for sql in sqls)

    def test_join_uses_foreign_key(self):
        template = parse_sql(
            "SELECT a.x FROM a JOIN b ON a.k = b.k WHERE b.y = 'v'"
        )
        match = MatchedValue("loan", "status", "approved", 1.0)
        ctx, db = self._ctx(
            "names of accounts that have a loan with status approved", [match]
        )
        candidates = instantiate_template(template, ctx)
        sqls = [serialize(c.query) for c in candidates]
        assert any(
            "JOIN" in sql and "loan.account_id = account.account_id" in sql
            for sql in sqls
        )

    def test_numbers_fill_in_order(self):
        template = parse_sql("SELECT t.a FROM t WHERE t.b BETWEEN 1 AND 2")
        ctx, db = self._ctx("accounts with balance between 100 and 500")
        candidates = instantiate_template(template, ctx)
        assert any(
            "BETWEEN 100 AND 500" in serialize(c.query) for c in candidates
        )

    def test_ungrounded_literals_tracked(self):
        template = parse_sql("SELECT t.a FROM t WHERE t.b > 99")
        ctx, db = self._ctx("show clients")  # no number in question
        candidates = instantiate_template(template, ctx)
        assert candidates
        assert all(c.ungrounded_literals >= 1 for c in candidates)

    def test_grounded_candidates_have_zero(self):
        template = parse_sql("SELECT t.a FROM t WHERE t.b > 99")
        ctx, db = self._ctx("accounts with balance over 1000")
        candidates = instantiate_template(template, ctx)
        assert any(c.ungrounded_literals == 0 for c in candidates)

    def test_candidates_execute(self):
        template = parse_sql("SELECT t.a FROM t ORDER BY t.b DESC LIMIT 1")
        ctx, db = self._ctx("client with the highest balance")
        for candidate in instantiate_template(template, ctx):
            assert db.is_executable(serialize(candidate.query))


class TestCodeSParser:
    def test_unknown_model_raises(self):
        with pytest.raises(CheckpointError):
            CodeSParser("codes-99b")

    def test_fit_empty_raises(self):
        with pytest.raises(TrainingError):
            CodeSParser("codes-1b").fit([])

    def test_sft_beats_zero_shot(self, spider, fitted_parser):
        sft = evaluate_parser(fitted_parser, spider)
        zero = evaluate_parser(
            CodeSParser("codes-7b"), spider, demonstrations_per_question=0
        )
        assert sft.ex > zero.ex

    def test_generation_result_fields(self, spider, fitted_parser):
        example = spider.dev[0]
        result = fitted_parser.generate(
            example.question, spider.database_of(example)
        )
        assert result.sql
        assert len(result.candidates) <= fitted_parser.config.beam_size
        assert result.prompt.text

    def test_chosen_sql_is_executable_when_flagged(self, spider, fitted_parser):
        example = spider.dev[1]
        database = spider.database_of(example)
        result = fitted_parser.generate(example.question, database)
        if result.executable:
            assert database.is_executable(result.sql)

    def test_bigger_tier_has_bigger_bank(self):
        small = CodeSParser("codes-1b")
        large = CodeSParser("codes-15b")
        assert large.skeleton_bank_size > small.skeleton_bank_size

    def test_incremental_pretraining_widens_bank(self):
        codes = CodeSParser("codes-7b")
        base = CodeSParser("starcoderbase-7b")
        assert codes.skeleton_bank_size > base.skeleton_bank_size

    def test_deterministic_generation(self, spider):
        results = []
        for _ in range(2):
            parser = CodeSParser("codes-3b")
            parser.fit(pair_samples(spider))
            example = spider.dev[0]
            results.append(
                parser.generate(example.question, spider.database_of(example)).sql
            )
        assert results[0] == results[1]

    def test_icl_uses_provided_demonstrations(self, spider):
        parser = CodeSParser("codes-7b")
        example = spider.dev[0]
        database = spider.database_of(example)
        result = parser.generate(
            example.question, database, demonstrations=list(spider.train[:3])
        )
        assert result.sql

    def test_context_budget_follows_tier(self):
        assert (
            CodeSParser("codes-15b").options.max_prompt_chars
            <= CodeSParser("codes-7b").options.max_prompt_chars
        )


class TestHarness:
    def test_fewshot_requires_retriever(self, spider):
        with pytest.raises(ValueError):
            evaluate_parser(
                CodeSParser("codes-1b"), spider, demonstrations_per_question=3
            )

    def test_limit_truncates(self, spider, fitted_parser):
        result = evaluate_parser(fitted_parser, spider, limit=3)
        assert result.n_examples == 3

    def test_ts_and_ves_computed(self, spider, fitted_parser):
        result = evaluate_parser(
            fitted_parser, spider, limit=4, compute_ts=True, ts_variants=2,
            compute_ves=True, ves_runs=1,
        )
        assert result.ts is not None and 0.0 <= result.ts <= 1.0
        assert result.ves is not None and result.ves >= 0.0
        assert result.ts <= result.ex + 1e-9  # TS is stricter than EX
