"""Tests for the synthetic benchmark builders."""

import random

import pytest

from repro.datasets import (
    DR_SPIDER_PERTURBATIONS,
    SPIDER_VARIANTS,
    build_aminer_simplified,
    build_bank_financials,
    build_bird,
    build_dr_spider,
    build_spider,
    build_spider_variant,
)
from repro.datasets.bird import BirdConfig
from repro.datasets.blueprints import BLUEPRINTS, blueprint_by_name
from repro.datasets.drspider import all_perturbation_names, category_of
from repro.datasets.generator import GenerationOptions, instantiate_blueprint
from repro.datasets.spider import SpiderConfig
from repro.datasets.templates import sample_question_sql, template_ids
from repro.errors import DatasetError
from repro.sqlgen.parser import parse_sql

_SMALL_SPIDER = SpiderConfig(
    n_train_databases=2, n_dev_databases=1,
    train_per_database=8, dev_per_database=6, rows_per_table=20,
)


@pytest.fixture(scope="module")
def small_spider():
    return build_spider(_SMALL_SPIDER)


class TestBlueprints:
    def test_all_blueprints_instantiate(self):
        for blueprint in BLUEPRINTS:
            gdb = instantiate_blueprint(
                blueprint, f"t_{blueprint.name}",
                GenerationOptions(rows_per_table=10),
            )
            assert gdb.database.row_count(blueprint.tables[0].name) == 10

    def test_blueprint_lookup(self):
        assert blueprint_by_name("college").domain == "education"
        with pytest.raises(KeyError):
            blueprint_by_name("missing")

    def test_foreign_keys_reference_valid_rows(self):
        gdb = instantiate_blueprint(
            blueprint_by_name("college"), "fk_test",
            GenerationOptions(rows_per_table=15),
        )
        orphans = gdb.database.execute(
            "SELECT COUNT(*) FROM enrollment WHERE student_id NOT IN "
            "(SELECT student_id FROM student)"
        )
        assert orphans[0][0] == 0


class TestGenerator:
    def test_ambiguous_naming_renames_and_comments(self):
        gdb = instantiate_blueprint(
            blueprint_by_name("college"), "amb",
            GenerationOptions(ambiguous_naming=True, ambiguous_fraction=1.0,
                              rows_per_table=5),
        )
        assert gdb.ambiguous_columns
        table, column = next(iter(gdb.ambiguous_columns))
        comment = gdb.schema.table(table).column(column).comment
        assert comment  # full coverage keeps comments informative

    def test_comment_coverage_zero_leaves_undocumented(self):
        gdb = instantiate_blueprint(
            blueprint_by_name("college"), "undoc",
            GenerationOptions(ambiguous_naming=True, ambiguous_fraction=1.0,
                              comment_coverage=0.0, rows_per_table=5),
        )
        comments = [
            gdb.schema.table(t).column(c).comment
            for t, c in gdb.ambiguous_columns
        ]
        assert all(comment == "" for comment in comments)

    def test_extra_columns_widen_tables(self):
        narrow = instantiate_blueprint(
            blueprint_by_name("college"), "narrow", GenerationOptions(rows_per_table=5)
        )
        wide = instantiate_blueprint(
            blueprint_by_name("college"), "narrow",
            GenerationOptions(rows_per_table=5, extra_columns=4),
        )
        assert (
            len(wide.schema.tables[0].columns)
            == len(narrow.schema.tables[0].columns) + 4
        )

    def test_keys_never_renamed(self):
        gdb = instantiate_blueprint(
            blueprint_by_name("college"), "keys",
            GenerationOptions(ambiguous_naming=True, ambiguous_fraction=1.0,
                              rows_per_table=5),
        )
        assert gdb.schema.table("student").has_column("student_id")

    def test_deterministic_across_calls(self):
        options = GenerationOptions(rows_per_table=8, seed=4)
        first = instantiate_blueprint(blueprint_by_name("retail"), "d", options)
        second = instantiate_blueprint(blueprint_by_name("retail"), "d", options)
        assert first.database.all_rows() == second.database.all_rows()


class TestTemplates:
    def test_every_template_produces_valid_sql(self):
        gdb = instantiate_blueprint(
            blueprint_by_name("concert_hall"), "tmpl",
            GenerationOptions(rows_per_table=25),
        )
        rng = random.Random(0)
        produced = set()
        for template_id in template_ids():
            for attempt in range(5):
                pair = sample_question_sql(gdb, rng, template_id=template_id)
                if pair is not None:
                    break
            assert pair is not None, template_id
            parse_sql(pair.sql)  # must be inside the supported subset
            assert gdb.database.is_executable(pair.sql)
            produced.add(pair.template_id)
        assert produced == set(template_ids())

    def test_questions_mention_values(self):
        gdb = instantiate_blueprint(
            blueprint_by_name("concert_hall"), "vals",
            GenerationOptions(rows_per_table=25),
        )
        rng = random.Random(1)
        pair = sample_question_sql(gdb, rng, template_id="select_where_text")
        query = parse_sql(pair.sql)
        literal = query.literals_used()[0]
        assert str(literal.value).strip().lower() in pair.question.lower()


class TestSpider:
    def test_structure(self, small_spider):
        assert len(small_spider.databases) == 3
        assert len(small_spider.train) == 16
        assert len(small_spider.dev) == 6

    def test_dev_databases_unseen_in_train(self, small_spider):
        train_dbs = {e.db_id for e in small_spider.train}
        dev_dbs = {e.db_id for e in small_spider.dev}
        assert not train_dbs & dev_dbs

    def test_gold_queries_execute(self, small_spider):
        small_spider.validate()  # raises on any broken gold query

    def test_no_external_knowledge(self, small_spider):
        assert all(not e.external_knowledge for e in small_spider.train)


class TestBird:
    def test_carries_external_knowledge(self):
        bird = build_bird(BirdConfig(
            n_train_databases=1, n_dev_databases=1,
            train_per_database=8, dev_per_database=8, rows_per_table=30,
        ))
        assert any(e.external_knowledge for e in bird.dev)

    def test_question_with_knowledge_format(self):
        bird = build_bird(BirdConfig(
            n_train_databases=1, n_dev_databases=1,
            train_per_database=4, dev_per_database=8, rows_per_table=30,
        ))
        example = next(e for e in bird.dev if e.external_knowledge)
        enriched = example.question_with_knowledge()
        assert example.question in enriched
        assert example.external_knowledge in enriched


class TestVariants:
    def test_all_variants_build(self, small_spider):
        for name in SPIDER_VARIANTS:
            variant = build_spider_variant(name, spider=small_spider)
            assert len(variant.dev) == len(small_spider.dev)
            variant.validate()

    def test_syn_changes_questions(self, small_spider):
        variant = build_spider_variant("spider-syn", spider=small_spider)
        changed = sum(
            1 for old, new in zip(small_spider.dev, variant.dev)
            if old.question != new.question
        )
        assert changed > 0

    def test_gold_sql_unchanged(self, small_spider):
        variant = build_spider_variant("spider-syn", spider=small_spider)
        assert [e.sql for e in variant.dev] == [e.sql for e in small_spider.dev]

    def test_unknown_variant_raises(self):
        with pytest.raises(DatasetError):
            build_spider_variant("spider-unknown")


class TestDrSpider:
    def test_seventeen_perturbations(self):
        assert len(all_perturbation_names()) == 17
        assert len(DR_SPIDER_PERTURBATIONS["NLQ"]) == 9
        assert len(DR_SPIDER_PERTURBATIONS["DB"]) == 3
        assert len(DR_SPIDER_PERTURBATIONS["SQL"]) == 5

    def test_category_lookup(self):
        assert category_of("schema-synonym") == "DB"
        with pytest.raises(DatasetError):
            category_of("nonsense")

    def test_db_perturbation_rewrites_gold(self, small_spider):
        perturbed = build_dr_spider("schema-abbreviation", spider=small_spider)
        perturbed.validate()
        # At least one gold query must reference a renamed column.
        assert any(
            old.sql != new.sql
            for old, new in zip(small_spider.dev, perturbed.dev)
        )

    def test_nlq_perturbation_keeps_databases(self, small_spider):
        perturbed = build_dr_spider("keyword-carrier", spider=small_spider)
        assert perturbed.databases is small_spider.databases
        perturbed.validate()

    def test_sql_side_builds_fresh_dev(self, small_spider):
        perturbed = build_dr_spider(
            "sort-order", spider=small_spider, sql_side_examples_per_db=5
        )
        perturbed.validate()
        assert all("ORDER BY" in e.sql for e in perturbed.dev)

    def test_content_equivalence_changes_values(self, small_spider):
        perturbed = build_dr_spider("DBcontent-equivalence", spider=small_spider)
        perturbed.validate()


class TestDomains:
    def test_bank_financials(self):
        bank = build_bank_financials()
        assert bank.name == "bank_financials"
        assert len(bank.train) == 15  # the small "annotated" seed set
        assert len(bank.dev) == 40
        bank.validate()

    def test_aminer(self):
        aminer = build_aminer_simplified()
        assert "writes" in {t.name for t in
                            next(iter(aminer.databases.values())).schema.tables}
        aminer.validate()
