"""Sharded multi-process serving (``-m sharding``).

Every scenario except the final process-transport smoke tests runs the
whole cluster — router, workers, supervision timers — on one shared
:class:`FakeClock` with inline transports: routing, crash/restart
backoff, drain/rebalance, and merged metrics are all deterministic
discrete-event simulations with zero wall-clock sleeps.  The process
tests fork real children over the stub parser, so they finish in
milliseconds while proving the pipe transport end to end.
"""

from __future__ import annotations

import pytest

from tests.test_serving import NamedDb, StubParser, _request

from repro.errors import ServingError
from repro.reliability.clock import FakeClock
from repro.serving import (
    Completed,
    Failed,
    InlineWorkerHandle,
    MetricsAggregator,
    Overloaded,
    ProcessWorkerHandle,
    RateLimited,
    Server,
    ServerConfig,
    ServerMetrics,
    ServiceModel,
    ShardMap,
    ShardRouter,
    ShardingConfig,
    default_worker_ids,
    nearest_rank,
    replay_sharded,
    run_loadgen_sharded,
)
from repro.serving.loadgen import Arrival
from repro.serving.sharding import Heartbeat, HeartbeatAck, picklable_event
from repro.serving.sharding.messages import OutcomeMsg

pytestmark = pytest.mark.sharding

DB_IDS = tuple(f"db{index}" for index in range(8))


class StubEngine:
    """Just enough engine surface for warm-handoff assertions."""

    def __init__(self, cache=None):
        self.cache = cache


class EngineStubParser(StubParser):
    """A stub parser whose servers build (stub) per-database engines."""

    def build_engine(self, cache=None):
        return StubEngine(cache=cache)


def _databases(db_ids=DB_IDS):
    return {db_id: NamedDb(db_id) for db_id in db_ids}


def _cluster(
    clock,
    workers=("w0", "w1", "w2"),
    db_ids=DB_IDS,
    sharding=None,
    server_config=None,
    service_model=None,
    parser_factory=StubParser,
):
    """An inline cluster on one FakeClock; returns (router, handles)."""
    databases = _databases(db_ids)
    handles = {}

    def handle_factory(worker_id):
        def build():
            return Server(
                parser_factory(),
                databases,
                config=server_config or ServerConfig(),
                clock=clock,
                service_model=service_model or ServiceModel(),
            )

        handle = InlineWorkerHandle(worker_id, build)
        handles[worker_id] = handle
        return handle

    router = ShardRouter(
        ShardMap(workers),
        handle_factory,
        db_ids,
        config=sharding or ShardingConfig(),
        clock=clock,
    )
    return router, handles


def _arrivals(n, rate_spacing=0.05, db_ids=DB_IDS, **request_kwargs):
    return [
        Arrival(
            at=index * rate_spacing,
            request=_request(index, db_id=db_ids[index % len(db_ids)], **request_kwargs),
        )
        for index in range(n)
    ]


# -- shard map ----------------------------------------------------------------


class TestShardMap:
    def test_assignment_is_deterministic_and_total(self):
        first = ShardMap(("w0", "w1", "w2"))
        second = ShardMap(("w2", "w1", "w0"))  # order-insensitive
        for db_id in DB_IDS:
            assert first.owner(db_id) == second.owner(db_id)
            assert first.owner(db_id) in first.workers
        assert first.assignments(DB_IDS) == second.assignments(DB_IDS)

    def test_seed_changes_the_ring(self):
        base = ShardMap(("w0", "w1", "w2"), seed=0)
        other = ShardMap(("w0", "w1", "w2"), seed=1)
        many = [f"db{index}" for index in range(64)]
        assert any(base.owner(db) != other.owner(db) for db in many)

    def test_every_worker_appears_in_assignments(self):
        table = ShardMap(("w0", "w1")).assignments(("db0",))
        assert set(table) == {"w0", "w1"}

    def test_adding_a_worker_moves_only_to_the_new_worker(self):
        # The consistent-hashing contract: growing the cluster never
        # shuffles databases between the existing workers.
        many = [f"db{index}" for index in range(64)]
        old = ShardMap(("w0", "w1", "w2"))
        new = old.add_worker("w3")
        moves = old.moves(new, many)
        assert moves  # 64 databases over 3->4 workers: something moves
        assert all(move.target == "w3" for move in moves)
        assert all(move.source != move.target for move in moves)

    def test_removing_a_worker_moves_only_its_databases(self):
        many = [f"db{index}" for index in range(64)]
        old = ShardMap(("w0", "w1", "w2"))
        new = old.remove_worker("w2")
        moves = old.moves(new, many)
        owned = sorted(db for db in many if old.owner(db) == "w2")
        assert sorted(move.db_id for move in moves) == owned
        assert all(move.source == "w2" for move in moves)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardMap(())
        with pytest.raises(ValueError):
            ShardMap(("w0", "w0"))
        with pytest.raises(ValueError):
            ShardMap(("w0",), virtual_nodes=0)
        with pytest.raises(ValueError):
            ShardMap(("w0",)).add_worker("w0")
        with pytest.raises(ValueError):
            ShardMap(("w0",)).remove_worker("nope")
        with pytest.raises(ValueError):
            default_worker_ids(0)

    def test_map_identity(self):
        assert ShardMap(("w0", "w1")) == ShardMap(("w1", "w0"))
        assert ShardMap(("w0", "w1")) != ShardMap(("w0", "w1"), seed=9)


# -- routing and admission ----------------------------------------------------


class TestRouting:
    def test_requests_land_on_the_owning_worker(self):
        clock = FakeClock()
        router, handles = _cluster(clock)
        arrivals = _arrivals(16, rate_spacing=0.0)
        for arrival in arrivals:
            assert router.submit(arrival.request) is None
        router.pump()
        outcomes = router.poll()
        assert len(outcomes) == 16
        assert all(isinstance(outcome, Completed) for outcome in outcomes)
        # each worker's server saw exactly its shards' databases
        for worker_id, handle in handles.items():
            served = {db for _, db, _ in handle.worker.server.parser.calls}
            owned = set(router.shard_map.assignments(DB_IDS)[worker_id])
            assert served <= owned

    def test_unknown_database_fails_fast(self):
        router, _ = _cluster(FakeClock())
        outcome = router.submit(_request(0, db_id="nope"))
        assert isinstance(outcome, Failed)
        assert "unknown database" in outcome.error

    def test_central_rate_limiting(self):
        clock = FakeClock()
        router, _ = _cluster(
            clock,
            sharding=ShardingConfig(rate_per_tenant=1.0, burst_per_tenant=2.0),
        )
        outcomes = [router.submit(_request(index, db_id="db0")) for index in range(4)]
        assert outcomes[0] is None and outcomes[1] is None
        assert all(isinstance(outcome, RateLimited) for outcome in outcomes[2:])

    def test_hot_shard_sheds_cold_shard_admits(self):
        clock = FakeClock()
        router, _ = _cluster(clock, sharding=ShardingConfig(shed_depth=2))
        owner_of = {db_id: router.shard_map.owner(db_id) for db_id in DB_IDS}
        hot_db = DB_IDS[0]
        hot_worker = owner_of[hot_db]
        cold_db = next(db for db in DB_IDS if owner_of[db] != hot_worker)
        # saturate the hot shard without letting anything drain
        assert router.submit(_request(0, db_id=hot_db)) is None
        assert router.submit(_request(1, db_id=hot_db)) is None
        shed = router.submit(_request(2, db_id=hot_db))
        assert isinstance(shed, Overloaded)
        assert hot_worker in shed.reason
        # the cold shard is unaffected by the hot one's watermark
        assert router.submit(_request(3, db_id=cold_db)) is None


# -- supervision: crash, restart, backoff -------------------------------------


class TestSupervision:
    def test_crash_restart_redispatches_without_loss(self):
        clock = FakeClock()
        config = ShardingConfig(restart_backoff_s=0.5)
        router, handles = _cluster(clock, sharding=config)
        victim_db = DB_IDS[0]
        victim = router.shard_map.owner(victim_db)
        assert router.submit(_request(0, db_id=victim_db)) is None
        handles[victim].kill()  # in-flight request dies with the worker
        router.tick()  # detects the corpse, schedules the restart
        assert router.failures[0]["kind"] == "crash"
        assert router.has_work()
        # new arrivals for the dead worker's shards park, not drop
        assert router.submit(_request(1, db_id=victim_db)) is None
        clock.advance(0.5)
        router.tick()  # restart fires; both requests redispatch
        assert any(f["kind"] == "restart" for f in router.failures)
        router.pump()
        outcomes = router.poll()
        assert {o.request.request_id for o in outcomes} == {"r0", "r1"}
        assert all(isinstance(o, Completed) for o in outcomes)
        assert not router.has_work()

    def test_restart_backoff_is_exponential(self):
        clock = FakeClock()
        config = ShardingConfig(
            restart_backoff_s=1.0, restart_backoff_multiplier=2.0
        )
        router, handles = _cluster(clock, sharding=config)
        victim = router.shard_map.workers[0]
        delays = []
        for _ in range(3):
            handles[victim].kill()
            router.tick()
            state = router._states[victim]
            delays.append(state.restart_due - clock.now())
            clock.advance(delays[-1])
            router.tick()  # restart fires, worker healthy again
        assert delays == [1.0, 2.0, 4.0]

    def test_missed_heartbeats_fence_and_restart_a_zombie(self):
        # A worker whose process is alive but wedged: it answers
        # nothing, so the heartbeat deadline — not alive() — fells it.
        # The router must *kill* the still-alive process before the
        # backoff restart, or restart() refuses a live worker and the
        # supervision loop crashes.
        clock = FakeClock()

        class ZombieHandle:
            transport = "inline"
            worker_id = "w0"

            def __init__(self):
                self.commands = []
                self.killed = False
                self.restarted = False

            def send(self, command):
                self.commands.append(command)

            def poll(self):
                return []

            def pump(self):
                pass

            def alive(self):
                return not self.killed

            def kill(self):
                self.killed = True

            def restart(self):
                assert self.killed, "restart() on a live worker raises"
                self.restarted = True
                self.killed = False

            def close(self):
                pass

        zombie = ZombieHandle()
        router = ShardRouter(
            ShardMap(("w0",)),
            lambda worker_id: zombie,
            DB_IDS,
            config=ShardingConfig(
                heartbeat_interval_s=1.0,
                heartbeat_timeout_s=2.0,
                restart_backoff_s=0.5,
            ),
            clock=clock,
        )
        clock.advance(1.0)
        router.tick()  # heartbeat probe goes out
        assert any(isinstance(c, Heartbeat) for c in zombie.commands)
        clock.advance(1.9)
        router.tick()  # deadline not yet passed
        assert not router._states["w0"].down
        clock.advance(0.2)
        router.tick()  # 2.1s unacked >= 2.0s timeout
        assert router._states["w0"].down
        assert "heartbeat" in router.failures[0]["error"]
        assert zombie.killed  # fenced at crash time, not left running
        clock.advance(0.5)
        router.tick()  # backoff expired: restart must not raise
        assert zombie.restarted
        assert not router._states["w0"].down
        assert any(f["kind"] == "restart" for f in router.failures)

    def test_unkillable_zombie_is_replaced_via_the_factory(self):
        # A handle with no kill hook that keeps claiming to be alive:
        # the router cannot fence it, so the restart falls back to
        # building a fresh handle instead of raising.
        clock = FakeClock()
        built = []

        class StubbornZombie:
            transport = "inline"

            def __init__(self, worker_id):
                self.worker_id = worker_id
                built.append(self)

            def send(self, command):
                pass

            def poll(self):
                return []

            def pump(self):
                pass

            def alive(self):
                return True

            def restart(self):
                raise AssertionError("a live handle must never be restart()ed")

            def close(self):
                pass

        router = ShardRouter(
            ShardMap(("w0",)),
            StubbornZombie,
            DB_IDS,
            config=ShardingConfig(
                heartbeat_interval_s=1.0,
                heartbeat_timeout_s=2.0,
                restart_backoff_s=0.5,
            ),
            clock=clock,
        )
        clock.advance(1.0)
        router.tick()  # probe
        clock.advance(2.0)
        router.tick()  # deadline: marked crashed, cannot be killed
        assert router._states["w0"].down
        clock.advance(0.5)
        router.tick()  # restart: factory replacement, no ServingError
        assert len(built) == 2
        assert router.handles["w0"] is built[-1]
        assert not router._states["w0"].down

    def test_heartbeat_ack_keeps_the_worker_alive(self):
        clock = FakeClock()
        router, handles = _cluster(
            clock,
            workers=("w0",),
            sharding=ShardingConfig(
                heartbeat_interval_s=1.0, heartbeat_timeout_s=2.0
            ),
        )
        for _ in range(5):
            clock.advance(1.0)
            router.tick()  # probe
            router.tick()  # collect the synchronous inline ack
        assert not router._states["w0"].down
        assert router.failures == []

    def test_restart_budget_exhaustion_fails_pending(self):
        clock = FakeClock()
        config = ShardingConfig(
            restart_backoff_s=0.1,
            restart_backoff_multiplier=1.0,
            max_restarts_per_worker=2,
        )
        router, handles = _cluster(clock, sharding=config)
        victim_db = DB_IDS[0]
        victim = router.shard_map.owner(victim_db)
        assert router.submit(_request(0, db_id=victim_db)) is None
        failed = []
        for _ in range(3):  # third crash exceeds max_restarts=2
            handles[victim].kill()
            router.tick()
            clock.advance(0.1)
            router.tick()
            failed.extend(router.poll())
        assert len(failed) == 1
        assert isinstance(failed[0], Failed)
        assert "restart budget" in failed[0].error
        assert not router.has_work()
        # subsequent arrivals for the lost worker's shards fail fast
        outcome = router.submit(_request(1, db_id=victim_db))
        assert isinstance(outcome, Failed)

    def test_inline_restart_refuses_a_live_worker(self):
        router, handles = _cluster(FakeClock())
        with pytest.raises(ServingError):
            handles["w0"].restart()


# -- drain and rebalance ------------------------------------------------------


class TestRebalance:
    def test_rebalance_finishes_queued_work_and_moves_shards(self):
        clock = FakeClock()
        router, handles = _cluster(clock)
        for index in range(12):
            assert router.submit(_request(index, db_id=DB_IDS[index % 8])) is None
        new_map = router.shard_map.add_worker("w3")
        drained = router.rebalance(new_map)
        # every queued request resolved during the drain — none dropped
        assert {o.request.request_id for o in drained} == {
            f"r{index}" for index in range(12)
        }
        assert all(isinstance(o, Completed) for o in drained)
        assert router.shard_map == new_map
        assert "w3" in router.handles
        # post-rebalance traffic lands on the new owners
        moved = [m for m in ShardMap(("w0", "w1", "w2")).moves(new_map, DB_IDS)]
        for move in moved:
            assert router.shard_map.owner(move.db_id) == "w3"
            assert router.submit(_request(100 + hash(move.db_id) % 50, db_id=move.db_id)) is None
        router.pump()
        assert all(isinstance(o, Completed) for o in router.poll())

    def test_rebalance_hands_off_warm_engines_inline(self):
        clock = FakeClock()
        router, handles = _cluster(clock, parser_factory=EngineStubParser)
        old_map = router.shard_map
        # warm every shard by serving traffic once
        for index, db_id in enumerate(DB_IDS):
            router.submit(_request(index, db_id=db_id))
        router.pump()
        router.poll()
        new_map = old_map.add_worker("w3")
        moves = old_map.moves(new_map, DB_IDS)
        assert moves  # the scenario must actually move something
        router.rebalance(new_map)
        for move in moves:
            source_server = handles[move.source].worker.server
            target_server = router.handles[move.target].worker.server
            # the old owner released its engine; the new owner holds it
            assert source_server.handoff(move.db_id) is None
            assert target_server.handoff(move.db_id) is not None

    def test_removing_a_worker_retires_its_metrics(self):
        clock = FakeClock()
        router, handles = _cluster(clock)
        for index in range(8):
            router.submit(_request(index, db_id=DB_IDS[index]))
        router.pump()
        router.poll()
        before = router.metrics()
        assert before.completed == 8
        doomed = router.shard_map.workers[0]
        router.rebalance(router.shard_map.remove_worker(doomed))
        after = router.metrics()
        # history survives the departure: nothing completed vanishes
        assert after.completed == 8
        assert doomed not in router.handles

    def test_drain_resolves_everything_queued(self):
        clock = FakeClock()
        router, _ = _cluster(clock)
        for index in range(10):
            assert router.submit(_request(index, db_id=DB_IDS[index % 8])) is None
        outcomes = router.drain()
        assert len(outcomes) == 10
        assert not router.has_work()

    def test_drain_skips_a_crashed_worker_and_supervision_recovers(self):
        # A dead worker never acks Drain; drain() must not wait 30
        # real seconds for it (and then raise) — it skips the corpse,
        # the healthy workers finish, and the tick loop restarts the
        # victim and completes its requests afterwards.
        clock = FakeClock()
        router, handles = _cluster(
            clock, sharding=ShardingConfig(restart_backoff_s=0.5)
        )
        for index in range(8):
            assert router.submit(_request(index, db_id=DB_IDS[index])) is None
        victim = router.shard_map.owner(DB_IDS[0])
        handles[victim].kill()  # crashed, not yet classified by tick()
        outcomes = router.drain()  # must neither raise nor stall
        assert outcomes  # the healthy shards all finished
        assert router.has_work()  # the victim's requests are still owed
        # the CLI recovery loop: tick until the cluster resolves it all
        for _ in range(8):
            if not router.has_work():
                break
            router.tick()
            router.pump()
            outcomes += router.poll()
            clock.advance(0.25)
        assert {o.request.request_id for o in outcomes} == {
            f"r{index}" for index in range(8)
        }
        assert all(isinstance(o, Completed) for o in outcomes)
        assert not router.has_work()

    def test_rebalance_rehomes_a_down_workers_pending_work(self):
        # Removing a worker that is down (it cannot drain) must not
        # strand its pending/parked requests on a worker id that no
        # longer exists — they re-route to the new owners and resolve.
        clock = FakeClock()
        router, handles = _cluster(
            clock, sharding=ShardingConfig(restart_backoff_s=60.0)
        )
        victim_db = DB_IDS[0]
        victim = router.shard_map.owner(victim_db)
        assert router.submit(_request(0, db_id=victim_db)) is None  # in flight
        handles[victim].kill()
        router.tick()  # classified down; backoff far in the future
        assert router.submit(_request(1, db_id=victim_db)) is None  # parks
        outcomes = router.rebalance(router.shard_map.remove_worker(victim))
        assert victim not in router.handles
        router.pump()
        outcomes += router.poll()
        assert {o.request.request_id for o in outcomes} >= {"r0", "r1"}
        resolved = {o.request.request_id: o for o in outcomes}
        assert isinstance(resolved["r0"], Completed)
        assert isinstance(resolved["r1"], Completed)
        assert not router.has_work()


# -- merged metrics -----------------------------------------------------------


class TestMergedMetrics:
    def _snapshot_with_latencies(self, latencies, queue_s=0.0):
        aggregator = MetricsAggregator()
        for index, latency in enumerate(latencies):
            aggregator.record_admitted()
            aggregator.record(
                Completed(
                    request=_request(index),
                    sql="SELECT 1",
                    tier="full",
                    latency_s=latency,
                    queue_s=queue_s,
                )
            )
        return aggregator.snapshot()

    def test_merged_percentiles_match_pooled_sample_ground_truth(self):
        # The point of sample-merge: a hot shard (slow latencies) and a
        # cold shard (fast) — averaging their p95s would land nowhere
        # near the truth; pooling the samples reproduces exactly what
        # one aggregator observing every outcome reports.
        hot = [0.5 + 0.01 * index for index in range(20)]
        cold = [0.01 + 0.001 * index for index in range(80)]
        merged = ServerMetrics.merge(
            self._snapshot_with_latencies(hot),
            self._snapshot_with_latencies(cold),
        )
        pooled = self._snapshot_with_latencies(hot + cold)
        assert merged.p50_latency_s == pooled.p50_latency_s
        assert merged.p95_latency_s == pooled.p95_latency_s
        assert merged.p95_latency_s == nearest_rank(hot + cold, 95)
        # and the naive wrong answer really is wrong, so this test
        # would catch a regression to percentile averaging
        naive = (nearest_rank(hot, 95) + nearest_rank(cold, 95)) / 2
        assert merged.p95_latency_s != naive
        assert merged.completed == 100
        assert merged.admitted == 100

    def test_merge_sums_counters_and_dicts(self):
        first = self._snapshot_with_latencies([0.1], queue_s=0.2)
        aggregator = MetricsAggregator()
        aggregator.record(_request(9) and Overloaded(request=_request(9), reason="full"))
        second = aggregator.snapshot(queue_depth=3)
        merged = ServerMetrics.merge(first, second)
        assert merged.completed == 1
        assert merged.queue_depth == 3
        assert merged.shed == {"overloaded": 1}
        assert merged.mean_queue_s == pytest.approx(0.2)
        assert merged.latency_samples == (0.1,)

    def test_merge_of_nothing_is_empty(self):
        empty = ServerMetrics.merge()
        assert empty.completed == 0
        assert empty.p95_latency_s == 0.0

    def test_sample_rings_are_bounded_but_counters_stay_exact(self):
        # Long-running servers must not accumulate (and pickle across
        # the process pipe) one sample per request forever: the rings
        # cap, while completed/mean stay exact running totals.
        aggregator = MetricsAggregator(sample_capacity=16)
        for index in range(100):
            aggregator.record(
                Completed(
                    request=_request(index),
                    sql="SELECT 1",
                    tier="full",
                    latency_s=0.01 * (index + 1),
                    queue_s=0.005,
                )
            )
        snapshot = aggregator.snapshot()
        assert snapshot.completed == 100  # exact despite the cap
        assert len(snapshot.latency_samples) == 16
        assert len(snapshot.queue_wait_samples) == 16
        assert snapshot.mean_queue_s == pytest.approx(0.005)
        # the ring keeps the most recent completions
        assert min(snapshot.latency_samples) == pytest.approx(0.85)

    def test_merge_caps_carried_samples_and_keeps_means_exact(self):
        fast = self._snapshot_with_latencies([0.01] * 30, queue_s=0.1)
        slow = self._snapshot_with_latencies([1.0] * 10, queue_s=0.5)
        merged = ServerMetrics.merge(fast, slow, sample_capacity=8)
        assert merged.completed == 40
        assert len(merged.latency_samples) == 8
        # weighted by completed counts, not by pooled (capped) samples
        assert merged.mean_queue_s == pytest.approx(
            (30 * 0.1 + 10 * 0.5) / 40
        )
        # the sorted-stride subsample spans the pooled distribution
        assert min(merged.latency_samples) == 0.01
        assert max(merged.latency_samples) == 1.0

    def test_cluster_metrics_fold_router_sheds_with_worker_counters(self):
        clock = FakeClock()
        router, _ = _cluster(
            clock, sharding=ShardingConfig(rate_per_tenant=1.0, burst_per_tenant=1.0)
        )
        assert router.submit(_request(0, db_id="db0")) is None
        assert isinstance(router.submit(_request(1, db_id="db0")), RateLimited)
        router.pump()
        router.poll()
        metrics = router.metrics()
        assert metrics.completed == 1  # from the worker shard
        assert metrics.shed == {"rate_limited": 1}  # from the router


# -- sharded replay -----------------------------------------------------------


class TestShardedReplay:
    def test_replay_completes_everything_with_zero_wall_sleeps(self):
        clock = FakeClock()
        router, _ = _cluster(clock)
        result = run_loadgen_sharded(router, _arrivals(40))
        assert result.metrics.completed == 40
        assert result.metrics.failed == 0
        assert result.metrics.shed_total == 0
        # the whole cluster ran on the FakeClock: real time never passed
        assert clock.sleeps  # the replay advanced via fake sleeps only

    def test_replay_is_byte_stable(self):
        reports = []
        for _ in range(2):
            clock = FakeClock()
            router, _ = _cluster(clock)
            reports.append(run_loadgen_sharded(router, _arrivals(40)).report)
        assert reports[0] == reports[1]

    def test_replay_rides_through_a_mid_run_crash(self):
        clock = FakeClock()
        config = ShardingConfig(restart_backoff_s=0.2)
        router, handles = _cluster(clock, sharding=config)
        arrivals = _arrivals(20)
        victim = router.shard_map.owner(DB_IDS[0])

        # crash the worker partway: feed half, kill, replay the rest
        first, second = arrivals[:10], arrivals[10:]
        outcomes = replay_sharded(router, first)
        handles[victim].kill()
        outcomes += replay_sharded(router, second)
        resolved = {o.request.request_id for o in outcomes}
        assert resolved == {f"r{index}" for index in range(20)}
        assert all(isinstance(o, Completed) for o in outcomes)
        assert any(f["kind"] == "restart" for f in router.failures)

    def test_sharded_sql_matches_single_server_byte_for_byte(self):
        # Zero drift: the sharded cluster must emit exactly the SQL the
        # single-process server emits for the same workload.
        arrivals = _arrivals(24)

        single_clock = FakeClock()
        server = Server(
            StubParser(),
            _databases(),
            config=ServerConfig(),
            clock=single_clock,
            service_model=ServiceModel(),
        )
        from repro.serving import replay as replay_single

        single = {
            o.request.request_id: o.sql
            for o in replay_single(server, arrivals)
            if isinstance(o, Completed)
        }

        clock = FakeClock()
        router, _ = _cluster(clock)
        sharded = {
            o.request.request_id: o.sql
            for o in replay_sharded(router, arrivals)
            if isinstance(o, Completed)
        }
        assert sharded == single


# -- message protocol ---------------------------------------------------------


class TestMessages:
    def test_picklable_event_strips_traces(self):
        outcome = Completed(
            request=_request(0),
            sql="SELECT 1",
            tier="full",
            latency_s=0.1,
            queue_s=0.0,
            trace=object(),  # unpicklable stand-in
        )
        event = picklable_event(OutcomeMsg(worker_id="w0", outcome=outcome))
        assert event.outcome.trace is None
        assert event.outcome.sql == "SELECT 1"
        import pickle

        pickle.dumps(event)  # must not raise

    def test_non_outcome_events_pass_through(self):
        ack = HeartbeatAck(worker_id="w0", seq=1, queue_depth=0)
        assert picklable_event(ack) is ack


# -- process transport (real forks, kept small) -------------------------------


class TestProcessTransport:
    def test_forked_cluster_serves_and_merges_metrics(self):
        databases = _databases(DB_IDS[:4])

        def handle_factory(worker_id):
            def build():
                return Server(StubParser(), databases, config=ServerConfig())

            return ProcessWorkerHandle(worker_id, build)

        router = ShardRouter(
            ShardMap(("w0", "w1")), handle_factory, DB_IDS[:4]
        )
        try:
            arrivals = _arrivals(8, rate_spacing=0.0, db_ids=DB_IDS[:4])
            outcomes = replay_sharded(router, arrivals)
            assert len(outcomes) == 8
            assert all(isinstance(o, Completed) for o in outcomes)
            metrics = router.metrics()
            assert metrics.completed == 8
        finally:
            router.shutdown()

    def test_killed_child_is_restarted_and_work_replays(self):
        databases = _databases(DB_IDS[:2])

        def handle_factory(worker_id):
            def build():
                return Server(StubParser(), databases, config=ServerConfig())

            return ProcessWorkerHandle(worker_id, build)

        router = ShardRouter(
            ShardMap(("w0",)),
            handle_factory,
            DB_IDS[:2],
            config=ShardingConfig(restart_backoff_s=0.01),
        )
        try:
            handle = router.handles["w0"]
            handle.kill()
            assert not handle.alive()
            assert router.submit(_request(0, db_id=DB_IDS[0])) is None
            outcomes = replay_sharded(router, [])
            assert len(outcomes) == 1
            assert isinstance(outcomes[0], Completed)
            assert any(f["kind"] == "restart" for f in router.failures)
        finally:
            router.shutdown()
