"""Staged inference engine: unit tests + golden parity (``-m engine``).

The parity suite replays the staged pipeline over every bundled gold
set and compares against ``tests/golden/engine_parity.json``, which was
captured from the pre-refactor ``generate()`` monolith — any
behavioural drift in the decomposition shows up as a golden mismatch.
"""

from __future__ import annotations

import importlib.util
import inspect
import json
import sys
from pathlib import Path

import pytest

from repro.core import CodeSParser
from repro.core.parser import pretrained_lm_for
from repro.config import get_model_config
from repro.datasets import build_bank_financials
from repro.engine import (
    STAGE_NAMES,
    Engine,
    InferenceContext,
    StageCache,
    StageFaultInjector,
    StageLatencyInjector,
    TraceRecorder,
)
from repro.errors import GenerationError
from repro.eval.harness import evaluate_parser, pair_samples
from repro.eval.reporting import format_stage_report
from repro.lm.registry import DEFAULT_LM_REGISTRY, LMRegistry
from repro.reliability.clock import FakeClock

pytestmark = pytest.mark.engine

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "engine_parity.json"

QUESTION = "How many clients are there?"


@pytest.fixture(scope="module")
def bank():
    dataset = build_bank_financials()
    parser = CodeSParser("codes-1b")
    parser.fit(pair_samples(dataset))
    database = dataset.database_of(dataset.dev[0])
    return parser, dataset, database


# -- golden parity ------------------------------------------------------------


def test_staged_engine_matches_prerefactor_goldens():
    """The staged pipeline reproduces the monolith on every gold set."""
    spec = importlib.util.spec_from_file_location(
        "gen_engine_golden", REPO_ROOT / "scripts" / "gen_engine_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["gen_engine_golden"] = module
    spec.loader.exec_module(module)

    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    fresh = module.generate_golden()
    assert fresh["model"] == golden["model"]
    assert set(fresh["datasets"]) == set(golden["datasets"])
    for name, rows in golden["datasets"].items():
        new_rows = fresh["datasets"][name]
        assert len(new_rows) == len(rows), name
        for old, new in zip(rows, new_rows):
            assert new == old, (
                f"{name}[{old['index']}] drifted from the pre-refactor "
                f"monolith:\n  golden: {old}\n  staged: {new}"
            )


# -- engine composition -------------------------------------------------------


class _LogStage:
    def __init__(self, name: str, log: list):
        self.name = name
        self.log = log

    def run(self, ctx: InferenceContext) -> None:
        self.log.append(("run", self.name))


def _logging_middleware(tag: str, log: list):
    def middleware(stage, ctx, call_next):
        log.append((f"{tag}:before", stage.name))
        call_next()
        log.append((f"{tag}:after", stage.name))

    return middleware


def test_engine_runs_stages_in_order_with_wrapping_middleware():
    log: list = []
    engine = Engine(
        [_LogStage("a", log), _LogStage("b", log)],
        middleware=(_logging_middleware("outer", log), _logging_middleware("inner", log)),
    )
    engine.run(InferenceContext(question="", database=None))
    assert log == [
        ("outer:before", "a"),
        ("inner:before", "a"),
        ("run", "a"),
        ("inner:after", "a"),
        ("outer:after", "a"),
        ("outer:before", "b"),
        ("inner:before", "b"),
        ("run", "b"),
        ("inner:after", "b"),
        ("outer:after", "b"),
    ]


def test_engine_rejects_duplicate_stage_names():
    log: list = []
    with pytest.raises(ValueError):
        Engine([_LogStage("a", log), _LogStage("a", log)])


def test_default_engine_exposes_canonical_stage_order(bank):
    parser, _, _ = bank
    assert parser.engine.stage_names == STAGE_NAMES


# -- tracing ------------------------------------------------------------------


def test_generate_records_one_trace_entry_per_stage(bank):
    parser, _, database = bank
    result = parser.generate(QUESTION, database)
    assert result.trace is not None
    assert tuple(s.stage for s in result.trace.stages) == STAGE_NAMES
    assert all(s.wall_s >= 0 for s in result.trace.stages)
    assert result.trace.total_s == sum(s.wall_s for s in result.trace.stages)


def test_fake_clock_drives_stage_timing():
    # Timing flows exclusively through the injectable Clock (ARCH001):
    # a clock that never advances reports zero wall time everywhere.
    dataset = build_bank_financials()
    parser = CodeSParser("codes-1b", clock=FakeClock())
    parser.fit(pair_samples(dataset))
    database = dataset.database_of(dataset.dev[0])
    result = parser.generate(QUESTION, database)
    assert result.trace is not None
    assert all(s.wall_s == 0.0 for s in result.trace.stages)


def test_latency_injector_shows_up_in_the_trace():
    clock = FakeClock()
    dataset = build_bank_financials()
    parser = CodeSParser("codes-1b", clock=clock)
    parser.fit(pair_samples(dataset))
    database = dataset.database_of(dataset.dev[0])
    engine = parser.build_engine(
        middleware=(StageLatencyInjector("rank", delay_s=1.5, clock=clock),)
    )
    result = parser.generate(QUESTION, database, engine=engine)
    by_stage = result.trace.by_stage()
    assert by_stage["rank"].wall_s == pytest.approx(1.5)
    assert by_stage["lint_gate"].wall_s == 0.0


# -- stage cache --------------------------------------------------------------


def test_stage_cache_counts_hits_and_misses():
    cache = StageCache()
    assert cache.get("kind", 1, lambda: "built") == "built"
    assert cache.get("kind", 1, lambda: "rebuilt") == "built"
    assert cache.stats == {
        "hits": 1,
        "misses": 1,
        "entries": 1,
        "evictions": 0,
        "capacity": None,
    }
    cache.clear_kind("kind")
    assert cache.get("kind", 1, lambda: "rebuilt") == "rebuilt"
    cache.clear()
    assert len(cache) == 0


def test_stage_cache_absorb_never_evicts_local_entries():
    # Warm handoff must not cannibalise the working set: the receiving
    # cache's own entries are the ones serving traffic, so absorb
    # takes only what fits and files donor entries at the LRU end.
    local = StageCache(capacity=3)
    local.get("kind", "a", lambda: "local-a")
    local.get("kind", "b", lambda: "local-b")
    donor = StageCache()
    donor.get("kind", "a", lambda: "donor-a")  # duplicate: local wins
    donor.get("kind", "c", lambda: "donor-c")
    donor.get("kind", "d", lambda: "donor-d")  # donor's MRU entry
    assert local.absorb(donor) == 1  # room for one; donor's MRU taken
    assert local.get("kind", "a", lambda: "rebuilt") == "local-a"
    assert ("kind", "b") in local
    assert ("kind", "d") in local
    assert len(local) == 3
    assert local.evictions == 0
    # under later pressure the absorbed entry evicts before local ones
    local.get("kind", "e", lambda: "local-e")
    assert ("kind", "d") not in local
    assert ("kind", "a") in local and ("kind", "b") in local


def test_stage_cache_absorb_into_a_full_cache_is_a_no_op():
    local = StageCache(capacity=2)
    local.get("kind", "a", lambda: "local-a")
    local.get("kind", "b", lambda: "local-b")
    donor = StageCache()
    donor.get("kind", "c", lambda: "donor-c")
    assert local.absorb(donor) == 0
    assert ("kind", "c") not in local
    assert ("kind", "a") in local and ("kind", "b") in local


def test_repeat_questions_hit_the_per_database_cache(bank):
    parser, _, database = bank
    engine = parser.build_engine()
    parser.generate(QUESTION, database, engine=engine)
    misses_after_first = engine.cache.misses
    result = parser.generate(QUESTION, database, engine=engine)
    assert engine.cache.misses == misses_after_first  # everything reused
    assert sum(s.cache_hits for s in result.trace.stages) > 0


# -- fault injection as middleware --------------------------------------------


def test_stage_fault_injector_raises_generation_error(bank):
    parser, _, database = bank
    injector = StageFaultInjector("candidate_gen", error_rate=1.0)
    engine = parser.build_engine(middleware=(injector,))
    with pytest.raises(GenerationError):
        parser.generate(QUESTION, database, engine=engine)
    assert injector.injected_failures == 1


def test_beam_perturber_still_applies_after_rank(bank):
    parser, _, database = bank
    clean = parser.generate(QUESTION, database)
    parser.beam_perturber = lambda beam: beam * 2
    try:
        perturbed = parser.generate(QUESTION, database)
    finally:
        parser.beam_perturber = None
    # duplicated beam entries collapse into existing equivalence
    # classes, so dedup sees strictly more collapses than the clean run.
    assert perturbed.beam_deduped > clean.beam_deduped
    assert perturbed.sql == clean.sql


# -- batch evaluation ---------------------------------------------------------


def test_batch_eval_matches_per_question_eval_and_reuses_caches(bank):
    parser, dataset, _ = bank
    plain = evaluate_parser(parser, dataset, limit=8, name="plain")
    batch = evaluate_parser(parser, dataset, limit=8, name="batch", batch=True)
    assert batch.predictions == plain.predictions
    assert batch.ex == plain.ex
    assert set(batch.stage_timings) == set(STAGE_NAMES)
    assert all(agg["calls"] == 8 for agg in batch.stage_timings.values())
    total_hits = sum(agg["cache_hits"] for agg in batch.stage_timings.values())
    assert total_hits > 0  # per-database engines reused resources
    report = format_stage_report(batch)
    assert "per-stage timing" in report and "value_retrieve" in report


# -- facade + registries ------------------------------------------------------


def test_generate_is_a_thin_facade():
    source = inspect.getsource(CodeSParser.generate)
    body = [
        line
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    docstring = inspect.getdoc(CodeSParser.generate) or ""
    assert len(body) - len(docstring.splitlines()) <= 60


def test_lm_registry_shares_and_isolates():
    config = get_model_config("codes-1b")
    shared = pretrained_lm_for(config)
    assert pretrained_lm_for(config) is shared
    assert DEFAULT_LM_REGISTRY.lm_for(config) is shared
    isolated = LMRegistry()
    assert isolated.lm_for(config) is not shared
    assert len(isolated) > 0
    isolated.clear()
    assert len(isolated) == 0


def test_representative_values_public_accessor(bank):
    parser, _, database = bank
    engine = parser.build_engine()
    parser.generate(QUESTION, database, engine=engine)
    builder = engine.cache.get(
        "builder", (id(database), id(parser.options)), lambda: None
    )
    assert builder is not None
    values = builder.representative_values("client", "name")
    assert values == database.representative_values(
        "client", "name", k=parser.options.representative_k
    )


def test_trace_cli_prints_stage_table(capsys):
    from repro.cli import main

    code = main(
        [
            "trace",
            "--dataset",
            "bank_financials",
            "--model",
            "codes-1b",
            "--question",
            QUESTION,
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "stage trace" in out
    for stage in STAGE_NAMES:
        assert stage in out
