"""Schema-aware semantic analyzer: per-rule units, golden gold-SQL audit,
and the lint-gated beam."""

import pytest

from repro.analysis import (
    SchemaCatalog,
    SemanticAnalyzer,
    Severity,
    has_errors,
    lint_dataset,
)
from repro.analysis.diagnostics import (
    AGGREGATE_IN_WHERE,
    AMBIGUOUS_COLUMN,
    HAVING_SCOPE,
    JOIN_NO_FK,
    ORDER_BY_SCOPE,
    PARSE_ERROR,
    SET_OP_ARITY,
    TABLE_NOT_IN_SCOPE,
    TYPE_MISMATCH,
    UNGROUPED_COLUMN,
    UNKNOWN_COLUMN,
    UNKNOWN_TABLE,
)
from repro.core import lint_gated_order
from repro.datasets import (
    build_aminer_simplified,
    build_bank_financials,
    build_bird,
    build_dr_spider,
    build_spider,
    build_spider_variant,
)
from repro.datasets.drspider import all_perturbation_names
from repro.db import Column, Database, Schema, Table

from tests.fixtures import bank_database

pytestmark = pytest.mark.analysis


@pytest.fixture(scope="module")
def analyzer() -> SemanticAnalyzer:
    return SemanticAnalyzer(SchemaCatalog.from_database(bank_database()))


def codes(analyzer: SemanticAnalyzer, sql: str) -> list[str]:
    return [d.code for d in analyzer.analyze_sql(sql)]


class TestPerRule:
    """One positive and one negative case per rule."""

    def test_unknown_table(self, analyzer):
        assert UNKNOWN_TABLE in codes(analyzer, "SELECT * FROM branches")
        assert codes(analyzer, "SELECT * FROM client") == []

    def test_unknown_column(self, analyzer):
        assert codes(analyzer, "SELECT salary FROM client") == [UNKNOWN_COLUMN]
        assert codes(analyzer, "SELECT name FROM client") == []

    def test_unknown_column_qualified(self, analyzer):
        sql = "SELECT client.salary FROM client"
        assert codes(analyzer, sql) == [UNKNOWN_COLUMN]

    def test_table_not_in_scope(self, analyzer):
        sql = "SELECT account.balance FROM client"
        assert codes(analyzer, sql) == [TABLE_NOT_IN_SCOPE]
        joined = (
            "SELECT account.balance FROM client JOIN account "
            "ON client.client_id = account.client_id"
        )
        assert codes(analyzer, joined) == []

    def test_ambiguous_column(self, analyzer):
        sql = (
            "SELECT client_id FROM client JOIN account "
            "ON client.client_id = account.client_id"
        )
        assert codes(analyzer, sql) == [AMBIGUOUS_COLUMN]
        qualified = sql.replace("SELECT client_id", "SELECT client.client_id")
        assert codes(analyzer, qualified) == []

    def test_type_mismatch_text_literal_vs_numeric(self, analyzer):
        sql = "SELECT * FROM account WHERE balance = 'lots'"
        assert codes(analyzer, sql) == [TYPE_MISMATCH]
        # a numeric string coerces under SQLite affinity — clean.
        assert codes(analyzer, "SELECT * FROM account WHERE balance = '100'") == []

    def test_type_mismatch_numeric_literal_vs_text(self, analyzer):
        assert codes(analyzer, "SELECT * FROM client WHERE name = 5") == [
            TYPE_MISMATCH
        ]
        assert codes(analyzer, "SELECT * FROM client WHERE name = 'Maria Garcia'") == []

    def test_type_mismatch_sum_over_text(self, analyzer):
        assert codes(analyzer, "SELECT SUM(name) FROM client") == [TYPE_MISMATCH]
        assert codes(analyzer, "SELECT SUM(balance) FROM account") == []

    def test_type_mismatch_non_count_star(self, analyzer):
        assert codes(analyzer, "SELECT AVG(*) FROM account") == [TYPE_MISMATCH]
        assert codes(analyzer, "SELECT COUNT(*) FROM account") == []

    def test_aggregate_in_where(self, analyzer):
        sql = "SELECT name FROM client WHERE COUNT(*) > 2"
        assert AGGREGATE_IN_WHERE in codes(analyzer, sql)
        having = (
            "SELECT district FROM client GROUP BY district HAVING COUNT(*) > 2"
        )
        assert codes(analyzer, having) == []

    def test_ungrouped_column(self, analyzer):
        sql = "SELECT name, COUNT(*) FROM client GROUP BY district"
        assert codes(analyzer, sql) == [UNGROUPED_COLUMN]
        grouped = "SELECT district, COUNT(*) FROM client GROUP BY district"
        assert codes(analyzer, grouped) == []

    def test_select_star_under_group_by(self, analyzer):
        sql = "SELECT * FROM client GROUP BY district"
        assert codes(analyzer, sql) == [UNGROUPED_COLUMN]

    def test_set_op_arity(self, analyzer):
        sql = "SELECT name FROM client UNION SELECT account_id, balance FROM account"
        assert SET_OP_ARITY in codes(analyzer, sql)
        balanced = "SELECT name FROM client UNION SELECT status FROM loan"
        assert codes(analyzer, balanced) == []

    def test_having_scope(self, analyzer):
        sql = (
            "SELECT district FROM client GROUP BY district "
            "HAVING name = 'Maria Garcia'"
        )
        assert HAVING_SCOPE in codes(analyzer, sql)
        # the sqlgen grammar cannot produce HAVING without GROUP BY, so
        # exercise that rule on a hand-edited AST.
        import dataclasses

        from repro.sqlgen.parser import parse_sql

        grouped = parse_sql(
            "SELECT district FROM client GROUP BY district HAVING COUNT(*) > 1"
        )
        no_group = dataclasses.replace(grouped, group_by=())
        assert HAVING_SCOPE in [d.code for d in analyzer.analyze(no_group)]

    def test_order_by_scope(self, analyzer):
        sql = "SELECT district FROM client GROUP BY district ORDER BY name"
        assert ORDER_BY_SCOPE in codes(analyzer, sql)
        aggregated = (
            "SELECT district, COUNT(*) FROM client GROUP BY district "
            "ORDER BY COUNT(*) DESC"
        )
        assert codes(analyzer, aggregated) == []

    def test_join_no_fk_is_warning(self, analyzer):
        sql = (
            "SELECT * FROM client JOIN loan ON client.client_id = loan.loan_id"
        )
        diags = analyzer.analyze_sql(sql)
        assert [d.code for d in diags] == [JOIN_NO_FK]
        assert diags[0].severity is Severity.WARNING
        assert not has_errors(diags)
        fk_join = (
            "SELECT * FROM client JOIN account "
            "ON client.client_id = account.client_id"
        )
        assert codes(analyzer, fk_join) == []

    def test_parse_error_is_single_warning(self, analyzer):
        diags = analyzer.analyze_sql("SELECT ??? FROM")
        assert [d.code for d in diags] == [PARSE_ERROR]
        assert diags[0].severity is Severity.WARNING

    def test_correlated_subquery_resolves_outer_scope(self, analyzer):
        sql = (
            "SELECT name FROM client WHERE client_id IN "
            "(SELECT client_id FROM account WHERE account.client_id = 1)"
        )
        assert codes(analyzer, sql) == []


class TestSpans:
    def test_diagnostic_span_points_at_identifier(self, analyzer):
        sql = "SELECT salary FROM client"
        (diag,) = analyzer.analyze_sql(sql)
        assert diag.span is not None
        assert diag.span.slice(sql) == "salary"

    def test_hand_built_ast_has_no_span(self, analyzer):
        from repro.sqlgen.parser import parse_sql

        query = parse_sql("SELECT salary FROM client")
        (diag,) = analyzer.analyze(query)  # no source text provided
        assert diag.span is None


class TestNumericLikeColumns:
    def test_text_column_of_numbers_accepts_numeric_comparison(self):
        schema = Schema(
            name="codesdb",
            domain="test",
            tables=(
                Table(
                    name="t",
                    columns=(
                        Column("id", "INTEGER", is_primary=True),
                        Column("code", "TEXT"),
                    ),
                ),
            ),
        )
        database = Database.from_schema(
            schema, {"t": [(1, "101"), (2, "202")]}
        )
        analyzer = SemanticAnalyzer(SchemaCatalog.from_database(database))
        assert analyzer.analyze_sql("SELECT * FROM t WHERE code = 101") == []
        # without value evidence the declared type wins.
        structural = SemanticAnalyzer(SchemaCatalog.from_schema(schema))
        assert [d.code for d in structural.analyze_sql(
            "SELECT * FROM t WHERE code = 101"
        )] == [TYPE_MISMATCH]


class TestLintGatedBeam:
    def test_dirty_candidates_demoted(self, analyzer):
        hallucinated = "SELECT salary FROM client"
        misused = "SELECT name FROM client WHERE COUNT(*) > 2"
        clean = "SELECT name FROM client"
        beam = [hallucinated, misused, clean]
        ordered, diagnostics = lint_gated_order(beam, analyzer)
        assert ordered == [clean, hallucinated, misused]
        assert has_errors(diagnostics[hallucinated])
        assert has_errors(diagnostics[misused])
        assert not has_errors(diagnostics[clean])

    def test_clean_beam_order_preserved(self, analyzer):
        beam = ["SELECT name FROM client", "SELECT district FROM client"]
        ordered, _ = lint_gated_order(beam, analyzer)
        assert ordered == beam

    def test_injected_hallucinations_demoted_end_to_end(self):
        from repro.core import CodeSParser
        from repro.eval import pair_samples
        from repro.reliability import SchemaHallucinator

        dataset = build_bank_financials()
        hallucinator = SchemaHallucinator(rate=1.0, n_candidates=2, seed=0)
        parser = CodeSParser("codes-1b", beam_perturber=hallucinator)
        parser.fit(pair_samples(dataset))
        example = dataset.dev[0]
        database = dataset.databases[example.db_id]
        result = parser.generate(example.question, database)
        assert hallucinator.injected_candidates == 2
        # both corrupted candidates were demoted, never executed, and
        # the chosen SQL is clean.
        assert result.lint_demoted == 2
        assert result.executions_avoided == 2
        assert result.tier == "beam"
        assert not has_errors(result.diagnostics)

    def test_schema_hallucinator_renames_last_identifier(self):
        from repro.reliability import SchemaHallucinator

        hallucinator = SchemaHallucinator(rate=1.0, n_candidates=1, seed=0)
        beam = ["SELECT COUNT(*) FROM client"]
        perturbed = hallucinator(beam)
        assert perturbed[1:] == beam
        # the function name is skipped; the table name is corrupted.
        assert perturbed[0] == "SELECT COUNT(*) FROM client_x0"

    def test_parser_reports_lint_accounting(self):
        from repro.core import CodeSParser
        from repro.eval import pair_samples

        dataset = build_bank_financials()
        parser = CodeSParser("codes-1b")
        parser.fit(pair_samples(dataset))
        example = dataset.dev[0]
        database = dataset.databases[example.db_id]
        result = parser.generate(example.question, database)
        assert result.executions_used >= 1
        assert result.executions_avoided >= 0
        assert result.lint_demoted >= 0
        gated_off = CodeSParser("codes-1b", lint_gate=False)
        gated_off.fit(pair_samples(dataset))
        off_result = gated_off.generate(example.question, database)
        assert off_result.lint_demoted == 0
        assert off_result.executions_avoided == 0


class TestGoldenGoldSQL:
    """Every bundled benchmark's gold SQL lints clean of error-tier."""

    @pytest.mark.parametrize(
        "builder",
        [
            build_spider,
            build_bird,
            build_bank_financials,
            build_aminer_simplified,
            lambda: build_spider_variant("spider-syn"),
            lambda: build_spider_variant("spider-realistic"),
            lambda: build_spider_variant("spider-dk"),
        ],
        ids=[
            "spider",
            "bird",
            "bank_financials",
            "aminer_simplified",
            "spider-syn",
            "spider-realistic",
            "spider-dk",
        ],
    )
    def test_benchmark_gold_is_clean(self, builder):
        report = lint_dataset(builder())
        assert report.n_examples > 0
        dirty = report.error_findings
        assert not dirty, "\n".join(
            f"{f.split}[{f.index}] {f.sql}: "
            + "; ".join(d.render() for d in f.diagnostics)
            for f in dirty
        )

    def test_dr_spider_gold_is_clean(self):
        spider = build_spider()
        for perturbation in all_perturbation_names():
            dataset = build_dr_spider(perturbation, spider=spider)
            report = dataset.lint()
            assert not report.error_findings, (
                f"{perturbation}: {len(report.error_findings)} dirty queries"
            )


class TestEvalIntegration:
    def test_semantic_error_in_failure_classes(self):
        from repro.eval.harness import FAILURE_CLASSES, PREDICTION_SEMANTIC_ERROR

        assert PREDICTION_SEMANTIC_ERROR in FAILURE_CLASSES

    def test_eval_result_carries_diagnostics(self):
        from repro.core import CodeSParser
        from repro.eval import evaluate_parser, pair_samples

        dataset = build_bank_financials()
        parser = CodeSParser("codes-1b")
        parser.fit(pair_samples(dataset))
        result = evaluate_parser(parser, dataset, limit=5)
        assert isinstance(result.diagnostics, dict)
        assert result.executions_avoided >= 0


class TestAugmentGate:
    def test_dirty_pair_rejected(self):
        from repro.augment import admit_clean_pairs
        from repro.datasets import Text2SQLExample

        database = bank_database()
        clean = Text2SQLExample(
            question="how many clients?",
            sql="SELECT COUNT(*) FROM client",
            db_id="mini_bank",
        )
        dirty = Text2SQLExample(
            question="average salary?",
            sql="SELECT AVG(salary) FROM client",
            db_id="mini_bank",
        )
        assert admit_clean_pairs([clean, dirty], database) == [clean]
