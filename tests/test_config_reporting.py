"""Tests for the model registry, reporting helpers, and error hierarchy."""

import pytest

from repro.config import (
    CODES_TIERS,
    MODEL_REGISTRY,
    ModelConfig,
    get_model_config,
)
from repro.errors import (
    CheckpointError,
    DatasetError,
    ExecutionError,
    GenerationError,
    PromptBudgetError,
    ReproError,
    SchemaError,
    SQLSyntaxError,
    TrainingError,
)
from repro.eval.reporting import format_table


class TestModelRegistry:
    def test_all_codes_tiers_registered(self):
        for tier in CODES_TIERS:
            config = get_model_config(tier)
            assert config.incremental
            assert config.family == "starcoder"

    def test_unknown_model_raises(self):
        with pytest.raises(CheckpointError):
            get_model_config("codes-30b")

    def test_capacity_monotone_across_codes_tiers(self):
        configs = [get_model_config(tier) for tier in CODES_TIERS]
        for knob in ("embed_dim", "skeleton_capacity", "slot_depth"):
            values = [getattr(config, knob) for config in configs]
            assert values == sorted(values), knob

    def test_codes_15b_has_smaller_context(self):
        # Table 1: CodeS-15B is limited to 6,144 tokens vs 8,192.
        assert (
            get_model_config("codes-15b").max_context_chars
            < get_model_config("codes-7b").max_context_chars
        )

    def test_beam_size_is_four_everywhere(self):
        # §9.1.4: a beam of 4, first executable wins.
        assert all(config.beam_size == 4 for config in MODEL_REGISTRY.values())

    def test_base_and_codes_share_capacity(self):
        # The incremental recipe changes knowledge, not architecture.
        base = get_model_config("starcoderbase-7b")
        codes = get_model_config("codes-7b")
        assert base.embed_dim == codes.embed_dim
        assert base.slot_depth == codes.slot_depth
        assert not base.incremental and codes.incremental

    def test_derived_override(self):
        config = get_model_config("codes-1b").derived(slot_depth=9)
        assert config.slot_depth == 9
        assert config.name == "codes-1b"

    def test_invalid_config_rejected(self):
        with pytest.raises(Exception):
            ModelConfig(
                name="bad", family="x", incremental=False, params_billions=1,
                embed_dim=0, ngram_order=0, skeleton_capacity=0, slot_depth=0,
            )


class TestReporting:
    def test_basic_table(self):
        text = format_table(
            [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "22" in text

    def test_missing_cells_render_dash(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}])
        assert "-" in text

    def test_floats_one_decimal(self):
        text = format_table([{"v": 3.14159}])
        assert "3.1" in text
        assert "3.14159" not in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="Empty")

    def test_column_order_follows_first_row(self):
        text = format_table([{"z": 1, "a": 2}])
        header = text.splitlines()[0]
        assert header.index("z") < header.index("a")


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for error_type in (
            SQLSyntaxError, SchemaError, ExecutionError, PromptBudgetError,
            TrainingError, GenerationError, DatasetError, CheckpointError,
        ):
            assert issubclass(error_type, ReproError)

    def test_sql_syntax_error_carries_position(self):
        error = SQLSyntaxError("bad", sql="SELECT @", position=7)
        assert error.sql == "SELECT @"
        assert error.position == 7

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise DatasetError("broken benchmark")
