"""Property-style quality checks on the augmentation outputs."""

import pytest

from repro.augment import SQLToQuestionAugmenter, SyntheticLLM
from repro.datasets.blueprints import blueprint_by_name
from repro.datasets.generator import GenerationOptions, instantiate_blueprint
from repro.sqlgen.parser import parse_sql


@pytest.fixture(scope="module")
def gdb():
    return instantiate_blueprint(
        blueprint_by_name("retail"), "aug_quality",
        GenerationOptions(rows_per_table=30, seed=2),
    )


class TestAugmentationQuality:
    def test_sql_parses_and_executes(self, gdb):
        pairs = SQLToQuestionAugmenter(seed=0).augment(gdb, n_pairs=20)
        for pair in pairs:
            parse_sql(pair.sql)  # inside the supported subset
            assert gdb.database.is_executable(pair.sql)

    def test_questions_are_nonempty_text(self, gdb):
        pairs = SQLToQuestionAugmenter(seed=0).augment(gdb, n_pairs=15)
        for pair in pairs:
            assert len(pair.question.split()) >= 3
            assert pair.db_id == "aug_quality"

    def test_structural_diversity(self, gdb):
        from repro.sqlgen.skeleton import extract_skeleton

        pairs = SQLToQuestionAugmenter(seed=0).augment(gdb, n_pairs=30)
        skeletons = {extract_skeleton(pair.sql) for pair in pairs}
        assert len(skeletons) >= 8  # covers many template families

    def test_refinement_changes_surface_not_sql(self, gdb):
        llm = SyntheticLLM(seed=0, temperature=1.5)
        stiff = "Return the price of product where product.brand = 'acme'."
        refined = llm.refine_question(stiff)
        assert refined  # always yields text
        # Refinement is a question-side operation only.
        assert "SELECT" not in refined

    def test_different_seeds_differ(self, gdb):
        first = SQLToQuestionAugmenter(seed=1).augment(gdb, n_pairs=10)
        second = SQLToQuestionAugmenter(seed=2).augment(gdb, n_pairs=10)
        assert [p.sql for p in first] != [p.sql for p in second]
