"""Integration and failure-injection tests across subsystems."""

import pytest

from repro import (
    CodeSParser,
    Column,
    Database,
    DemonstrationRetriever,
    PromptBuilder,
    PromptOptions,
    Schema,
    Table,
    Text2SQLExample,
    augment_domain,
    build_bank_financials,
    build_spider,
    evaluate_parser,
    pair_samples,
)
from repro.datasets.domains import DomainConfig
from repro.datasets.spider import SpiderConfig
from repro.errors import ExecutionError, GenerationError

from tests.fixtures import bank_database

_SMALL = SpiderConfig(
    n_train_databases=2, n_dev_databases=1,
    train_per_database=15, dev_per_database=10, rows_per_table=25,
)


@pytest.fixture(scope="module")
def spider():
    return build_spider(_SMALL)


class TestEndToEndSFT:
    def test_sft_reaches_useful_accuracy(self, spider):
        parser = CodeSParser("codes-7b")
        parser.fit(pair_samples(spider))
        result = evaluate_parser(parser, spider)
        assert result.ex >= 0.5  # well above chance on held-out databases

    def test_bigger_tier_not_worse(self, spider):
        small = CodeSParser("codes-1b")
        small.fit(pair_samples(spider))
        large = CodeSParser("codes-15b")
        large.fit(pair_samples(spider))
        ex_small = evaluate_parser(small, spider).ex
        ex_large = evaluate_parser(large, spider).ex
        assert ex_large >= ex_small - 0.11  # allow small-sample noise

    def test_ablation_does_not_crash_end_to_end(self, spider):
        for component in ("value_retriever", "keys", "comments"):
            parser = CodeSParser(
                "codes-1b", options=PromptOptions().without(component)
            )
            parser.fit(pair_samples(spider))
            result = evaluate_parser(parser, spider, limit=5)
            assert 0.0 <= result.ex <= 1.0


class TestEndToEndICL:
    def test_icl_beats_random_retrieval(self, spider):
        parser = CodeSParser("codes-7b")
        smart = DemonstrationRetriever(spider.train, embedder=parser.embedder)
        random_mode = DemonstrationRetriever(
            spider.train, embedder=parser.embedder, mode="random", seed=0
        )
        ex_smart = evaluate_parser(
            parser, spider, demonstrations_per_question=3,
            demonstration_retriever=smart,
        ).ex
        ex_random = evaluate_parser(
            parser, spider, demonstrations_per_question=3,
            demonstration_retriever=random_mode,
        ).ex
        assert ex_smart >= ex_random

    def test_more_shots_help_or_hold(self, spider):
        parser = CodeSParser("codes-7b")
        retriever = DemonstrationRetriever(spider.train, embedder=parser.embedder)
        one = evaluate_parser(
            parser, spider, demonstrations_per_question=1,
            demonstration_retriever=retriever,
        ).ex
        five = evaluate_parser(
            parser, spider, demonstrations_per_question=5,
            demonstration_retriever=retriever,
        ).ex
        assert five >= one - 0.11


class TestAugmentationFlow:
    def test_augment_then_sft_beats_zero_shot(self):
        bank = build_bank_financials(
            DomainConfig(seed_pairs=10, test_examples=15, rows_per_table=40,
                         extra_columns=2, seed=9)
        )
        augmented = augment_domain(
            bank, n_question_to_sql=15, n_sql_to_question=30, seed=1
        )
        database = next(iter(bank.databases.values()))
        sft = CodeSParser("codes-3b")
        sft.fit([(example, database) for example in augmented])
        sft_ex = evaluate_parser(sft, bank).ex
        zero_ex = evaluate_parser(
            CodeSParser("codes-3b"), bank, demonstrations_per_question=0
        ).ex
        assert sft_ex >= zero_ex


class TestFailureInjection:
    def test_empty_database_generation(self):
        schema = Schema(
            name="empty",
            tables=(Table(name="only", columns=(Column("a", "TEXT"),)),),
        )
        database = Database.from_schema(schema)  # zero rows anywhere
        parser = CodeSParser("codes-1b")
        result = parser.generate("how many only are there", database,
                                 demonstrations=[])
        assert database.is_executable(result.sql)

    def test_unparseable_demonstrations_are_skipped(self):
        parser = CodeSParser("codes-1b")
        database = bank_database()
        demos = [
            Text2SQLExample("bad", "THIS IS NOT SQL", "mini_bank"),
            Text2SQLExample(
                "How many clients are there?", "SELECT COUNT(*) FROM client",
                "mini_bank",
            ),
        ]
        result = parser.generate(
            "How many loans are there?", database, demonstrations=demos
        )
        assert database.is_executable(result.sql)

    def test_fit_skips_unparseable_gold(self, spider):
        samples = pair_samples(spider)
        database = samples[0][1]
        samples.append(
            (Text2SQLExample("junk", "DELETE EVERYTHING", "x"), database)
        )
        parser = CodeSParser("codes-1b")
        parser.fit(samples)  # must not raise
        assert parser.fine_tuned

    def test_progress_guard_interrupts_runaway_query(self):
        database = bank_database()
        # A cross join of the table with itself many times still
        # finishes within the VM-step budget on this tiny database, so
        # craft something heavier via recursive-ish cartesian products.
        heavy = (
            "SELECT COUNT(*) FROM client a, client b, client c, client d, "
            "client e, client f, client g, client h, client i, client j, "
            "client k, client l, client m"
        )
        try:
            database.execute(heavy)
        except ExecutionError:
            pass  # interrupted by the progress handler — acceptable

    def test_prompt_budget_never_exceeded(self):
        database = bank_database()
        for budget in (120, 400, 2_000):
            builder = PromptBuilder(
                database, options=PromptOptions(max_prompt_chars=budget)
            )
            prompt = builder.build("How many clients live in Jesenik?")
            assert len(prompt.text) <= budget

    def test_harness_counts_generation_errors_as_misses(self, spider, monkeypatch):
        parser = CodeSParser("codes-1b")
        parser.fit(pair_samples(spider))

        def explode(*args, **kwargs):
            raise GenerationError("boom")

        monkeypatch.setattr(parser, "generate", explode)
        result = evaluate_parser(parser, spider, limit=3)
        assert result.ex == 0.0
