"""Tests for repro.text: tokenization, embedding, patterns, similarity."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.text import (
    HashedNgramEmbedder,
    cosine_similarity,
    extract_pattern,
    jaccard_similarity,
    normalize,
    sentence_tokens,
    strip_entities,
    token_overlap,
    word_tokens,
)
from repro.text.tokenize import character_ngrams


class TestTokenize:
    def test_normalize_lowercases_and_collapses(self):
        assert normalize("  How  MANY  Clients? ") == "how many clients?"

    def test_word_tokens_keep_quoted_strings(self):
        assert word_tokens("name = 'Sarah Martinez'") == ["name", "=", "'Sarah Martinez'"]

    def test_sentence_tokens_split_snake_case(self):
        assert sentence_tokens("account_id") == ["account", "id"]

    def test_sentence_tokens_split_camel_case(self):
        assert sentence_tokens("accountId openDate") == ["account", "id", "open", "date"]

    def test_sentence_tokens_unquote(self):
        assert "sarah martinez" in " ".join(sentence_tokens("x = 'Sarah Martinez'"))

    def test_character_ngrams_pads_boundaries(self):
        grams = character_ngrams("ab", 3)
        assert grams == ["#ab", "ab#"]

    def test_character_ngrams_rejects_bad_order(self):
        with pytest.raises(ValueError):
            character_ngrams("abc", 0)

    def test_character_ngrams_short_string(self):
        assert character_ngrams("a", 5) == ["#a#"]


class TestEmbedder:
    def test_identical_texts_similarity_one(self):
        embedder = HashedNgramEmbedder(dim=128)
        assert embedder.similarity("list all papers", "list all papers") == pytest.approx(1.0)

    def test_near_duplicates_score_high(self):
        embedder = HashedNgramEmbedder(dim=256)
        close = embedder.similarity(
            "how many clients opened accounts",
            "how many clients opened their accounts",
        )
        far = embedder.similarity("how many clients", "papers sorted by year")
        assert close > 0.7
        assert close > far + 0.3

    def test_empty_string_zero_vector(self):
        embedder = HashedNgramEmbedder(dim=64)
        assert np.allclose(embedder.embed(""), 0.0)

    def test_embed_batch_shape(self):
        embedder = HashedNgramEmbedder(dim=32)
        matrix = embedder.embed_batch(["a", "b", "c"])
        assert matrix.shape == (3, 32)

    def test_embed_batch_empty(self):
        embedder = HashedNgramEmbedder(dim=32)
        assert embedder.embed_batch([]).shape == (0, 32)

    def test_rejects_nonpositive_dim(self):
        with pytest.raises(ValueError):
            HashedNgramEmbedder(dim=0)

    def test_deterministic_across_instances(self):
        first = HashedNgramEmbedder(dim=64).embed("bank branch in Jesenik")
        second = HashedNgramEmbedder(dim=64).embed("bank branch in Jesenik")
        assert np.array_equal(first, second)

    @given(st.text(max_size=40))
    def test_embeddings_are_unit_or_zero(self, text):
        embedder = HashedNgramEmbedder(dim=64)
        norm = float(np.linalg.norm(embedder.embed(text)))
        assert norm == pytest.approx(0.0) or norm == pytest.approx(1.0)

    @given(st.text(max_size=30), st.text(max_size=30))
    def test_similarity_bounded(self, left, right):
        embedder = HashedNgramEmbedder(dim=64)
        value = embedder.similarity(left, right)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestPattern:
    def test_strips_numbers(self):
        assert strip_entities("Show singers born in 1948 or 1949") == (
            "Show singers born in _ or _"
        )

    def test_strips_quoted_strings(self):
        assert "_" in strip_entities("Members from 'United States'")
        assert "United" not in strip_entities("Members from 'United States'")

    def test_strips_capitalized_entities(self):
        stripped = strip_entities("How many clients live in Jesenik")
        assert "Jesenik" not in stripped

    def test_keeps_question_words(self):
        stripped = strip_entities("How many clients are there")
        assert stripped == "How many clients are there"

    def test_collapses_adjacent_placeholders(self):
        stripped = strip_entities("Born between 1948 1949")
        assert "_ _" not in stripped

    def test_extract_pattern_is_lowercase(self):
        assert extract_pattern("Show NAMES") == extract_pattern("show names")

    @given(st.text(max_size=60))
    def test_strip_entities_total(self, text):
        strip_entities(text)  # must never raise


class TestSimilarity:
    def test_cosine_zero_vectors(self):
        assert cosine_similarity(np.zeros(4), np.ones(4)) == 0.0

    def test_cosine_identical(self):
        vec = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(vec, vec) == pytest.approx(1.0)

    def test_jaccard_identical(self):
        assert jaccard_similarity("list names", "list names") == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard_similarity("alpha beta", "gamma delta") == 0.0

    def test_jaccard_both_empty(self):
        assert jaccard_similarity("", "") == 1.0

    def test_token_overlap_full(self):
        assert token_overlap("show the account id", "account_id") == 1.0

    def test_token_overlap_partial(self):
        assert token_overlap("show the account", "account_id") == pytest.approx(0.5)

    def test_token_overlap_empty_target(self):
        assert token_overlap("anything", "") == 0.0
