"""Concurrent serving layer (``-m serving``).

Every scheduler/shedding scenario runs on a :class:`FakeClock` with
zero wall-clock sleeps: deadline expiry, watermark crossings, and
queueing dynamics are all driven by explicit ``clock.advance`` /
simulated service charges.  Only the worker-pool smoke test spawns
real threads (over a stub parser, so it finishes in milliseconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.core.ranking import SENTINEL_SQL
from repro.engine import StageCache
from repro.errors import GenerationError, ServingError
from repro.lm.registry import LMRegistry
from repro.reliability.clock import FakeClock
from repro.serving import (
    AdmissionQueue,
    BreakerShed,
    Completed,
    DeadlineShed,
    DegradationLadder,
    Failed,
    MetricsAggregator,
    Overloaded,
    RateLimited,
    ServeRequest,
    Server,
    ServerConfig,
    ServiceModel,
    TokenBucket,
    WorkerPool,
    nearest_rank,
    poisson_workload,
    run_loadgen,
)

pytestmark = pytest.mark.serving


# -- stubs --------------------------------------------------------------------


class StubDatabase:
    """Progress-handler protocol only — enough for ExecutionGuard."""

    def _push_progress_handler(self, handler, steps):
        pass

    def _pop_progress_handler(self):
        pass


@dataclass
class StubResult:
    sql: str
    tier: str
    trace: object = None


@dataclass
class StubParser:
    """Deterministic fake parser recording every generate() call."""

    calls: list = field(default_factory=list)
    fail_db_ids: frozenset = frozenset()

    def generate(self, question, database, engine=None, effort="full"):
        db_id = getattr(database, "db_id", "?")
        self.calls.append((question, db_id, effort))
        if db_id in self.fail_db_ids:
            raise GenerationError(f"injected failure for {db_id}")
        tier = "beam" if effort == "full" else "skeleton"
        return StubResult(sql=f"SELECT 1 /* {question} */", tier=tier)


@dataclass
class NamedDb(StubDatabase):
    db_id: str = "db"


def _server(clock, databases=None, parser=None, **config_kwargs):
    databases = databases or {"alpha": NamedDb("alpha"), "beta": NamedDb("beta")}
    return Server(
        parser if parser is not None else StubParser(),
        databases,
        config=ServerConfig(**config_kwargs),
        clock=clock,
    )


def _request(i, db_id="alpha", **kwargs):
    return ServeRequest(
        request_id=f"r{i}", question=f"question {i}", db_id=db_id, **kwargs
    )


# -- admission queue and rate limiting ---------------------------------------


class TestAdmissionQueue:
    def test_offer_bounded(self):
        queue = AdmissionQueue(2)
        assert queue.offer("a") and queue.offer("b")
        assert not queue.offer("c")
        assert queue.depth == 2

    def test_pop_group_takes_same_key_preserving_order(self):
        queue = AdmissionQueue(8)
        for item in ("a1", "b1", "a2", "c1", "a3"):
            queue.offer(item)
        group = queue.pop_group(3, key_fn=lambda item: item[0])
        assert group == ["a1", "a2", "a3"]
        # the untaken items keep their arrival order
        assert queue.pop_group(4, key_fn=lambda item: item[0]) == ["b1"]
        assert queue.pop_group(4, key_fn=lambda item: item[0]) == ["c1"]

    def test_pop_group_respects_max_size(self):
        queue = AdmissionQueue(8)
        for index in range(5):
            queue.offer(f"a{index}")
        assert len(queue.pop_group(2, key_fn=lambda item: "a")) == 2
        assert queue.depth == 3

    def test_pop_group_atomic_under_racing_consumers(self):
        # Mirrors the breaker half-open race test: consumers lined up
        # on a barrier must never split one key's contiguous batch,
        # lose an item, or pop one twice.
        import threading

        queue = AdmissionQueue(64)
        items = [(f"db{index % 2}", index) for index in range(32)]
        for item in items:
            assert queue.offer(item)

        n_threads = 8
        barrier = threading.Barrier(n_threads)
        groups: list[list] = []
        groups_lock = threading.Lock()

        def race():
            barrier.wait()
            while True:
                group = queue.pop_group(4, key_fn=lambda item: item[0])
                if not group:
                    return
                with groups_lock:
                    groups.append(group)

        threads = [threading.Thread(target=race) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        popped = [item for group in groups for item in group]
        # exactly-once: nothing lost, nothing duplicated
        assert sorted(popped, key=lambda item: item[1]) == items
        for group in groups:
            # atomicity: one database per group, arrival order kept
            assert len({key for key, _ in group}) == 1
            sequence = [index for _, index in group]
            assert sequence == sorted(sequence)

    def test_deadline_expiry_shedding_under_concurrent_producers(self):
        # Producers race submissions through admission while holding
        # short deadlines; advancing the clock past them must shed
        # every queued request exactly once — no outcome lost to the
        # producer race, none resolved twice.
        import threading

        clock = FakeClock()
        server = _server(clock, queue_capacity=64)
        n_threads, per_thread = 8, 4
        barrier = threading.Barrier(n_threads)
        immediate: list = []
        immediate_lock = threading.Lock()

        def produce(thread_index: int):
            barrier.wait()
            for j in range(per_thread):
                outcome = server.submit(
                    _request(f"{thread_index}-{j}", deadline_s=0.5)
                )
                if outcome is not None:
                    with immediate_lock:
                        immediate.append(outcome)

        threads = [
            threading.Thread(target=produce, args=(index,))
            for index in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = n_threads * per_thread
        assert server.queue.depth + len(immediate) == total
        clock.advance(1.0)  # every queued deadline expires
        drained = server.drain()
        outcomes = immediate + drained
        assert len(outcomes) == total
        assert len({o.request.request_id for o in outcomes}) == total
        assert all(isinstance(o, DeadlineShed) for o in drained)
        assert server.queue.depth == 0


class TestTokenBucket:
    def test_burst_then_refill_on_fake_clock(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()
        clock.advance(1.0)
        assert bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3, clock=clock)
        clock.advance(100.0)
        assert bucket.available == pytest.approx(3.0)


# -- scheduler ----------------------------------------------------------------


class TestDegradationLadder:
    def test_watermark_tier_selection(self):
        ladder = DegradationLadder(skeleton_watermark=4, sentinel_watermark=10)
        assert ladder.tier_for(0) == "full"
        assert ladder.tier_for(3) == "full"
        assert ladder.tier_for(4) == "skeleton"
        assert ladder.tier_for(9) == "skeleton"
        assert ladder.tier_for(10) == "sentinel"
        assert ladder.tier_for(500) == "sentinel"

    def test_invalid_watermarks_rejected(self):
        with pytest.raises(ValueError):
            DegradationLadder(skeleton_watermark=0, sentinel_watermark=5)
        with pytest.raises(ValueError):
            DegradationLadder(skeleton_watermark=6, sentinel_watermark=5)


class TestBatchGrouping:
    def test_batches_group_by_database(self):
        clock = FakeClock()
        parser = StubParser()
        server = _server(clock, parser=parser, batch_size=4)
        for index, db_id in enumerate(["alpha", "beta", "alpha", "beta", "alpha"]):
            assert server.submit(_request(index, db_id)) is None

        first = server.step()
        # oldest request is alpha, so the first batch is all three alphas
        assert [outcome.request.db_id for outcome in first] == ["alpha"] * 3
        assert {call[1] for call in parser.calls} == {"alpha"}

        second = server.step()
        assert [outcome.request.db_id for outcome in second] == ["beta"] * 2
        assert all(isinstance(outcome, Completed) for outcome in first + second)

    def test_batch_size_caps_group(self):
        clock = FakeClock()
        server = _server(clock, batch_size=2)
        for index in range(5):
            server.submit(_request(index))
        assert len(server.step()) == 2
        assert server.queue.depth == 3


# -- shedding -----------------------------------------------------------------


class TestShedding:
    def test_queue_full_sheds_overloaded_and_never_deadlocks(self):
        clock = FakeClock()
        server = _server(clock, queue_capacity=2, batch_size=2)
        outcomes = [server.submit(_request(index)) for index in range(5)]
        immediate = [outcome for outcome in outcomes if outcome is not None]
        assert len(immediate) == 3
        assert all(isinstance(outcome, Overloaded) for outcome in immediate)
        assert all(outcome.status == "overloaded" for outcome in immediate)
        # the queue still drains to empty — bounded, no deadlock
        drained = server.drain()
        assert len(drained) == 2
        assert server.queue.depth == 0
        metrics = server.metrics()
        assert metrics.admitted == 2
        assert metrics.shed == {"overloaded": 3}

    def test_deadline_expired_in_queue_sheds_without_executing(self):
        clock = FakeClock()
        parser = StubParser()
        server = _server(clock, parser=parser)
        assert server.submit(_request(0, deadline_s=1.0)) is None
        clock.advance(2.0)  # expires while queued
        (outcome,) = server.step()
        assert isinstance(outcome, DeadlineShed)
        assert parser.calls == []  # shed, not executed

    def test_rate_limit_sheds_per_tenant(self):
        clock = FakeClock()
        server = _server(
            clock, rate_per_tenant=1.0, burst_per_tenant=1.0
        )
        assert server.submit(_request(0, tenant="t1")) is None
        second = server.submit(_request(1, tenant="t1"))
        assert isinstance(second, RateLimited)
        # a different tenant has its own bucket
        assert server.submit(_request(2, tenant="t2")) is None

    def test_breaker_open_database_short_circuits(self):
        clock = FakeClock()
        parser = StubParser(fail_db_ids=frozenset({"alpha"}))
        server = _server(
            clock, parser=parser, batch_size=4, breaker_failure_threshold=1
        )
        for index in range(3):
            server.submit(_request(index, "alpha"))
        outcomes = server.step()
        assert isinstance(outcomes[0], Failed)  # trips the breaker
        assert all(isinstance(outcome, BreakerShed) for outcome in outcomes[1:])
        metrics = server.metrics()
        assert metrics.failed == 1
        assert metrics.shed == {"breaker_shed": 2}

    def test_unknown_database_fails_fast(self):
        clock = FakeClock()
        server = _server(clock)
        outcome = server.submit(_request(0, "nonexistent"))
        assert isinstance(outcome, Failed)
        assert "nonexistent" in outcome.error


class TestWatermarkDegradation:
    def test_deep_queue_switches_tiers(self):
        clock = FakeClock()
        parser = StubParser()
        server = _server(
            clock,
            parser=parser,
            queue_capacity=32,
            batch_size=4,
            skeleton_watermark=2,
            sentinel_watermark=6,
        )
        for index in range(7):
            server.submit(_request(index))
        sentinel_batch = server.step()  # depth 7 >= 6 -> sentinel
        assert all(outcome.tier == "sentinel" for outcome in sentinel_batch)
        assert all(outcome.sql == SENTINEL_SQL for outcome in sentinel_batch)
        assert parser.calls == []  # sentinel answers bypass the engine
        skeleton_batch = server.step()  # depth 3 >= 2 -> skeleton
        assert all(outcome.tier == "skeleton" for outcome in skeleton_batch)
        assert {call[2] for call in parser.calls} == {"skeleton"}


# -- metrics ------------------------------------------------------------------


class TestMetrics:
    def test_nearest_rank_percentiles(self):
        values = [0.4, 0.1, 0.3, 0.2]
        assert nearest_rank(values, 50) == 0.2
        assert nearest_rank(values, 95) == 0.4
        assert nearest_rank([], 50) == 0.0
        with pytest.raises(ValueError):
            nearest_rank(values, 0)

    def test_snapshot_arithmetic(self):
        aggregator = MetricsAggregator()
        for _ in range(5):
            aggregator.record_admitted()
        for latency, queue_s in [(0.1, 0.0), (0.2, 0.1), (0.3, 0.2)]:
            aggregator.record(
                Completed(
                    request=_request(0),
                    sql="SELECT 1",
                    tier="beam",
                    latency_s=latency,
                    queue_s=queue_s,
                )
            )
        aggregator.record(Overloaded(request=_request(1), reason="full"))
        aggregator.record(Failed(request=_request(2), error="boom", latency_s=0.4))
        aggregator.record_batch(2)
        aggregator.record_batch(4)
        metrics = aggregator.snapshot(
            queue_depth=3,
            cache_stats=[
                {"hits": 10, "misses": 4, "evictions": 1},
                {"hits": 5, "misses": 1, "evictions": 0},
            ],
        )
        assert metrics.queue_depth == 3
        assert metrics.admitted == 5
        assert metrics.completed == 3
        assert metrics.failed == 1
        assert metrics.shed == {"overloaded": 1}
        assert metrics.shed_total == 1
        assert metrics.tiers == {"beam": 3}
        assert metrics.p50_latency_s == 0.2
        assert metrics.p95_latency_s == 0.3
        assert metrics.mean_queue_s == pytest.approx(0.1)
        assert metrics.batches == 2
        assert metrics.mean_batch_occupancy == 3.0
        assert metrics.cache_hits == 15
        assert metrics.cache_misses == 5
        assert metrics.cache_evictions == 1

    def test_rows_render_with_format_table(self):
        from repro.eval.reporting import format_serving_report

        metrics = MetricsAggregator().snapshot()
        report = format_serving_report(metrics)
        assert "queue depth" in report
        assert "mean batch occupancy" in report

    def test_unknown_outcome_type_rejected(self):
        with pytest.raises(TypeError):
            MetricsAggregator().record(object())


# -- bounded caches (satellite: LRU eviction) --------------------------------


class TestBoundedCaches:
    def test_stage_cache_lru_evicts_oldest(self):
        cache = StageCache(capacity=2)
        cache.get("kind", "a", lambda: "A")
        cache.get("kind", "b", lambda: "B")
        cache.get("kind", "a", lambda: "A2")  # refreshes a's recency
        cache.get("kind", "c", lambda: "C")  # evicts b, the LRU entry
        assert cache.evictions == 1
        assert cache.stats["capacity"] == 2
        assert cache.get("kind", "a", lambda: "rebuilt") == "A"
        assert cache.get("kind", "b", lambda: "rebuilt") == "rebuilt"
        assert cache.evictions == 2  # re-inserting b pushed out c

    def test_lm_registry_bounded_with_counters(self):
        registry = LMRegistry(capacity=1)
        registry.corpus(seed=0)
        registry.corpus(seed=1)  # evicts seed 0
        assert registry.corpus_evictions == 1
        assert registry.stats["corpora"] == 1
        assert registry.stats["capacity"] == 1

    def test_lm_registry_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LMRegistry(capacity=0)


# -- loadgen ------------------------------------------------------------------


class TestLoadgen:
    def _run(self, seed=7, n=40, rate=50.0):
        clock = FakeClock()
        databases = {"alpha": NamedDb("alpha"), "beta": NamedDb("beta")}
        server = Server(
            StubParser(),
            databases,
            config=ServerConfig(
                queue_capacity=16,
                batch_size=4,
                skeleton_watermark=4,
                sentinel_watermark=10,
            ),
            clock=clock,
            service_model=ServiceModel(),
        )
        examples = [
            type(
                "Example",
                (),
                {"question": f"question {index}", "db_id": db_id},
            )()
            for index, db_id in enumerate(["alpha", "beta", "alpha"])
        ]
        arrivals = poisson_workload(examples, n=n, rate=rate, seed=seed)
        return run_loadgen(server, arrivals)

    def test_seeded_report_is_reproducible(self):
        first = self._run(seed=7)
        second = self._run(seed=7)
        assert first.report == second.report
        assert first.makespan_s == second.makespan_s

    def test_different_seeds_change_the_workload(self):
        assert self._run(seed=7).report != self._run(seed=8).report

    def test_every_request_resolves(self):
        result = self._run()
        metrics = result.metrics
        assert metrics.completed + metrics.shed_total + metrics.failed == 40
        assert result.metrics.queue_depth == 0

    def test_replay_advances_only_the_fake_clock(self):
        # zero wall-clock sleeps anywhere: the clock is fake and every
        # gap between arrivals is charged to it explicitly.
        result = self._run()
        assert result.makespan_s > 0

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            poisson_workload([], n=4, rate=1.0)
        with pytest.raises(ValueError):
            poisson_workload([object()], n=0, rate=1.0)
        with pytest.raises(ValueError):
            poisson_workload([object()], n=4, rate=0.0)


# -- worker pool (real threads, stub work) ------------------------------------


class TestWorkerPool:
    def test_pool_drains_submitted_requests(self):
        server = _server(FakeClock(), batch_size=2)
        pool = WorkerPool(server, workers=2)
        pool.start()
        try:
            for index, db_id in enumerate(
                ["alpha", "beta", "alpha", "beta", "alpha", "beta"]
            ):
                assert server.submit(_request(index, db_id)) is None
            assert pool.wait_for(6, timeout_s=10.0)
        finally:
            pool.stop()
        outcomes = pool.results()
        assert len(outcomes) == 6
        assert all(isinstance(outcome, Completed) for outcome in outcomes)
        assert pool.failures == []

    def test_pool_restart_guard(self):
        pool = WorkerPool(_server(FakeClock()), workers=1)
        pool.start()
        try:
            with pytest.raises(ServingError):
                pool.start()
        finally:
            pool.stop()

    def test_idle_wait_is_per_pool(self):
        server = _server(FakeClock())
        pool = WorkerPool(server, workers=1, idle_wait_s=0.001)
        assert pool.idle_wait_s == 0.001
        # a fast idle wait keeps wait_for's polling granularity tight
        assert not pool.wait_for(1, timeout_s=0.01)
        with pytest.raises(ValueError):
            WorkerPool(server, workers=1, idle_wait_s=0.0)
