"""Tests for the database substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.db import Column, Database, ForeignKey, Schema, Table, ValueGenerator
from repro.errors import ExecutionError, SchemaError

from tests.fixtures import bank_database, bank_schema


class TestSchemaModel:
    def test_lookup_case_insensitive(self):
        schema = bank_schema()
        assert schema.table("CLIENT").name == "client"
        assert schema.table("client").column("NAME").name == "name"

    def test_missing_table_raises(self):
        with pytest.raises(SchemaError):
            bank_schema().table("nope")

    def test_missing_column_raises(self):
        with pytest.raises(SchemaError):
            bank_schema().table("client").column("nope")

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            Table(name="t", columns=())

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table(name="t", columns=(Column("a"), Column("A")))

    def test_duplicate_tables_rejected(self):
        table = Table(name="t", columns=(Column("a"),))
        with pytest.raises(SchemaError):
            Schema(name="s", tables=(table, table))

    def test_dangling_foreign_key_rejected(self):
        table = Table(name="t", columns=(Column("a"),))
        with pytest.raises(SchemaError):
            Schema(
                name="s",
                tables=(table,),
                foreign_keys=(ForeignKey("t", "a", "t", "missing"),),
            )

    def test_invalid_column_type_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", "BLOB")

    def test_column_keys_order(self):
        keys = bank_schema().column_keys()
        assert keys[0] == "client.client_id"
        assert "loan.status" in keys

    def test_join_edge_lookup(self):
        schema = bank_schema()
        edge = schema.join_edge("client", "account")
        assert edge is not None
        assert edge.render() == "account.client_id = client.client_id"
        assert schema.join_edge("client", "loan") is None

    def test_primary_key_property(self):
        assert bank_schema().table("client").primary_key.name == "client_id"

    def test_rename_copies(self):
        renamed = bank_schema().rename("other")
        assert renamed.name == "other"
        assert renamed.tables == bank_schema().tables


class TestDatabase:
    def test_execute_simple(self):
        db = bank_database()
        rows = db.execute("SELECT name FROM client WHERE district = 'Jesenik'")
        assert sorted(row[0] for row in rows) == ["Maria Garcia", "Sarah Martinez"]

    def test_execute_join(self):
        db = bank_database()
        rows = db.execute(
            "SELECT client.name FROM client JOIN account "
            "ON client.client_id = account.client_id WHERE account.balance > 5000"
        )
        assert rows == [("Maria Garcia",)]

    def test_execute_bad_sql_raises(self):
        with pytest.raises(ExecutionError):
            bank_database().execute("SELECT nothing FROM nowhere")

    def test_is_executable(self):
        db = bank_database()
        assert db.is_executable("SELECT * FROM loan")
        assert not db.is_executable("SELECT * FROM missing_table")

    def test_row_count(self):
        assert bank_database().row_count("client") == 4

    def test_total_value_count(self):
        db = bank_database()
        assert db.total_value_count() == 4 * 4 + 4 * 4 + 3 * 4

    def test_representative_values_limit(self):
        db = bank_database()
        values = db.representative_values("client", "gender", k=2)
        assert len(values) == 2
        assert set(values) <= {"M", "F"}

    def test_representative_values_skip_null(self):
        schema = Schema(
            name="s",
            tables=(Table(name="t", columns=(Column("a", "TEXT"),)),),
        )
        db = Database.from_schema(schema, {"t": [(None,), ("x",)]})
        assert db.representative_values("t", "a") == ["x"]

    def test_iter_text_values_excludes_numeric(self):
        db = bank_database()
        columns = {(t, c) for t, c, _ in db.iter_text_values()}
        assert ("client", "name") in columns
        assert ("account", "balance") not in columns

    def test_insert_unknown_table_raises(self):
        with pytest.raises(SchemaError):
            bank_database().insert_rows({"ghost": [(1,)]})

    def test_insert_bad_arity_raises(self):
        with pytest.raises(ExecutionError):
            bank_database().insert_rows({"client": [(1, "only-two")]})

    def test_clone_with_rows_independent(self):
        db = bank_database()
        clone = db.clone_with_rows({"client": [(9, "Zoe Okafor", "F", "Lima")]})
        assert clone.row_count("client") == 1
        assert db.row_count("client") == 4

    def test_all_rows_snapshot(self):
        snapshot = bank_database().all_rows()
        assert set(snapshot) == {"client", "account", "loan"}
        assert len(snapshot["loan"]) == 3


class TestValueGenerator:
    def test_deterministic_for_same_seed(self):
        first = ValueGenerator(seed=7)
        second = ValueGenerator(seed=7)
        assert [first.person_name() for _ in range(5)] == [
            second.person_name() for _ in range(5)
        ]

    def test_differs_across_seeds(self):
        names_a = [ValueGenerator(seed=1).person_name() for _ in range(3)]
        names_b = [ValueGenerator(seed=2).person_name() for _ in range(3)]
        assert names_a != names_b

    def test_date_format(self):
        date = ValueGenerator(seed=0).date()
        year, month, day = date.split("-")
        assert len(year) == 4 and len(month) == 2 and len(day) == 2

    @given(st.integers(min_value=0, max_value=10_000))
    def test_integer_bounds(self, seed):
        gen = ValueGenerator(seed=seed)
        assert 0 <= gen.integer(0, 10) <= 10

    def test_code_width(self):
        assert len(ValueGenerator(seed=3).code("B", 4)) == 5

    def test_sample_never_exceeds_population(self):
        gen = ValueGenerator(seed=0)
        assert len(gen.sample([1, 2], 10)) == 2
