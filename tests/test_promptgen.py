"""Tests for database prompt construction (Algorithm 1)."""

import pytest

from repro.promptgen import PromptBuilder, PromptOptions

from tests.fixtures import bank_database


class TestPromptOptions:
    def test_without_component(self):
        options = PromptOptions().without("comments")
        assert not options.include_comments
        assert options.include_keys  # others untouched

    def test_without_unknown_raises(self):
        with pytest.raises(ValueError):
            PromptOptions().without("nonsense")

    def test_all_components_toggleable(self):
        for name in (
            "schema_filter", "value_retriever", "column_types",
            "comments", "representative_values", "keys",
        ):
            PromptOptions().without(name)


class TestPromptBuilder:
    def test_contains_schema_and_metadata(self):
        builder = PromptBuilder(bank_database())
        prompt = builder.build("How many clients live in Jesenik?")
        assert "database schema :" in prompt.text
        assert "client.name" in prompt.text
        assert "INTEGER" in prompt.text  # column types
        assert "primary key" in prompt.text
        assert "foreign keys :" in prompt.text
        assert "account.client_id = client.client_id" in prompt.text

    def test_matched_value_in_prompt(self):
        builder = PromptBuilder(bank_database())
        prompt = builder.build("How many clients live in Jesenik?")
        assert "matched values :" in prompt.text
        assert "client.district = 'Jesenik'" in prompt.text

    def test_representative_values_present(self):
        builder = PromptBuilder(bank_database())
        prompt = builder.build("clients")
        assert "values :" in prompt.text

    def test_no_value_retriever_ablation(self):
        options = PromptOptions().without("value_retriever")
        builder = PromptBuilder(bank_database(), options=options)
        prompt = builder.build("How many clients live in Jesenik?")
        assert "matched values :" not in prompt.text
        assert prompt.matched_values == ()

    def test_no_keys_ablation_strips_structured_schema(self):
        options = PromptOptions().without("keys")
        builder = PromptBuilder(bank_database(), options=options)
        prompt = builder.build("clients in Jesenik")
        assert "foreign keys :" not in prompt.text
        assert prompt.schema.foreign_keys == ()
        assert prompt.schema.table("client").primary_key is None

    def test_no_comments_ablation(self):
        options = PromptOptions().without("comments")
        builder = PromptBuilder(bank_database(), options=options)
        prompt = builder.build("clients")
        assert "comment :" not in prompt.text
        assert all(
            not column.comment
            for table in prompt.schema.tables
            for column in table.columns
        )

    def test_no_types_ablation(self):
        options = PromptOptions().without("column_types")
        builder = PromptBuilder(bank_database(), options=options)
        prompt = builder.build("clients")
        assert "INTEGER" not in prompt.text

    def test_budget_shrinks_prompt(self):
        options = PromptOptions(max_prompt_chars=400)
        builder = PromptBuilder(bank_database(), options=options)
        prompt = builder.build("clients in Jesenik")
        assert len(prompt.text) <= 400

    def test_budget_drops_values_before_truncating(self):
        full = PromptBuilder(bank_database()).build("clients").text
        options = PromptOptions(max_prompt_chars=len(full) - 50)
        shrunk = PromptBuilder(bank_database(), options=options).build("clients")
        assert "values :" not in shrunk.text
        assert "table client" in shrunk.text  # still structurally intact

    def test_training_path_keeps_used_schema(self):
        options = PromptOptions(top_k1=1, top_k2=2)
        builder = PromptBuilder(bank_database(), options=options)
        prompt = builder.build(
            "count approved loans",
            gold_sql="SELECT COUNT(*) FROM loan WHERE status = 'approved'",
        )
        assert "loan" in prompt.kept_tables

    def test_linking_question_drives_filter(self):
        options = PromptOptions(top_k1=1, top_k2=4)
        builder = PromptBuilder(bank_database(), options=options)
        prompt = builder.build(
            "how many entries",
            linking_question="how many entries (entries refers to loan records)",
        )
        assert prompt.kept_tables[0] == "loan"

    def test_schema_filter_off_keeps_everything(self):
        options = PromptOptions(use_schema_filter=False, top_k1=1, top_k2=1)
        builder = PromptBuilder(bank_database(), options=options)
        prompt = builder.build("anything")
        assert len(prompt.schema.tables) == 3
