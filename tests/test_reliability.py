"""Reliability layer: deadlines, retries, breakers, fault injection.

Everything here is deterministic: time flows through ``FakeClock``
(no real sleeps), fault injection is seeded, and the two-run identity
tests assert byte-identical failure accounting.
"""

import pytest

from repro.datasets.base import Text2SQLDataset, Text2SQLExample
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ExecutionError,
    GenerationError,
    PromptBudgetError,
    ReproError,
)
from repro.eval.execution import (
    GOLD_TIMEOUT,
    GOLD_UNEXECUTABLE,
    PREDICTION_TIMEOUT,
    PREDICTION_UNEXECUTABLE,
    execution_match_outcome,
)
from repro.eval.harness import GENERATION_FAILED, SENTINEL_SQL, evaluate_parser
from repro.eval.reporting import format_failure_report
from repro.reliability import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    Deadline,
    ExecutionGuard,
    FakeClock,
    FaultyDatabase,
    FlakyLLM,
    RetryPolicy,
)

from tests.fixtures import bank_database

pytestmark = pytest.mark.reliability

#: A 13-way self-join: cheap to parse, far too heavy to finish quickly.
HEAVY_SQL = (
    "SELECT COUNT(*) FROM client a, client b, client c, client d, "
    "client e, client f, client g, client h, client i, client j, "
    "client k, client l, client m"
)


class StubResult:
    def __init__(self, sql, tier="beam"):
        self.sql = sql
        self.tier = tier


class StubParser:
    """Cycles through a fixed list of SQL answers (or exceptions)."""

    def __init__(self, answers):
        self.answers = list(answers)
        self.calls = 0

    def generate(self, question, database, **kwargs):
        answer = self.answers[self.calls % len(self.answers)]
        self.calls += 1
        if isinstance(answer, BaseException):
            raise answer
        return StubResult(answer)


def _dataset(database, golds, db_id="mini_bank"):
    return Text2SQLDataset(
        name="mini",
        databases={db_id: database},
        dev=[
            Text2SQLExample(f"question {i}", sql, db_id)
            for i, sql in enumerate(golds)
        ],
    )


COUNT_CLIENTS = "SELECT COUNT(*) FROM client"


class TestDeadline:
    def test_expiry_follows_fake_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(3.0)
        assert deadline.expired()
        with pytest.raises(DeadlineExceededError):
            deadline.check("test op")

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0)

    def test_error_carries_budget_and_elapsed(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        clock.advance(4.0)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check()
        assert excinfo.value.budget_s == pytest.approx(1.0)
        assert excinfo.value.elapsed_s == pytest.approx(4.0)

    def test_deadline_error_is_execution_and_timeout_error(self):
        # Legacy except ExecutionError paths and generic timeout
        # handling must both see the new error.
        assert issubclass(DeadlineExceededError, ExecutionError)
        assert issubclass(DeadlineExceededError, TimeoutError)
        assert issubclass(DeadlineExceededError, ReproError)

    def test_execute_aborts_runaway_query_by_wall_clock(self):
        database = bank_database()
        with pytest.raises(DeadlineExceededError):
            database.execute(HEAVY_SQL, deadline=Deadline.after(0.05))

    def test_execute_fine_within_budget(self):
        database = bank_database()
        rows = database.execute(COUNT_CLIENTS, deadline=Deadline.after(5.0))
        assert rows == [(4,)]

    def test_pre_expired_deadline_raises_before_executing(self):
        database = bank_database()
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceededError):
            database.execute(COUNT_CLIENTS, deadline=deadline)

    def test_is_executable_treats_timeout_as_not_executable(self):
        database = bank_database()
        assert not database.is_executable(HEAVY_SQL, deadline=Deadline.after(0.05))
        assert database.is_executable(COUNT_CLIENTS, deadline=Deadline.after(5.0))


class TestExecutionGuard:
    def test_restores_pre_existing_handler(self):
        database = bank_database()
        polls = []
        database._push_progress_handler(lambda: polls.append(1) and 0, 10)
        with ExecutionGuard(database, Deadline.after(5.0)):
            assert len(database._handler_stack) == 2
        # The outer handler is back on top, not cleared.
        assert len(database._handler_stack) == 1
        database._pop_progress_handler()
        assert database._handler_stack == []

    def test_nested_execute_restores_guard(self):
        database = bank_database()
        with ExecutionGuard(database, Deadline.after(5.0)) as guard:
            database.execute(COUNT_CLIENTS)  # pushes and pops its own handler
            assert database._handler_stack[-1][0] == guard._on_progress
        assert database._handler_stack == []

    def test_outer_guard_interrupts_nested_statement(self):
        # The satellite fix: an outer wall-clock guard must still bite
        # while a *nested* execute() runs under the VM-step budget.
        database = bank_database()
        with pytest.raises(DeadlineExceededError):
            with ExecutionGuard(database, Deadline.after(0.05)):
                database.execute(HEAVY_SQL)


class TestRetryPolicy:
    def test_schedule_is_deterministic_per_seed(self):
        assert RetryPolicy(seed=3).delays() == RetryPolicy(seed=3).delays()
        assert RetryPolicy(seed=3).delays() != RetryPolicy(seed=4).delays()

    def test_schedule_is_bounded_and_backs_off(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.1, max_delay_s=0.5,
            multiplier=2.0, jitter=0.0,
        )
        assert policy.delays() == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_attempts_bounded_and_last_error_reraised(self):
        clock = FakeClock()
        calls = []

        def always_fails():
            calls.append(1)
            raise ExecutionError(f"failure {len(calls)}")

        policy = RetryPolicy(max_attempts=3, seed=0)
        with pytest.raises(ExecutionError, match="failure 3"):
            policy.call(always_fails, clock=clock)
        assert len(calls) == 3
        assert len(clock.sleeps) == 2  # no sleep after the final attempt

    def test_transient_failure_recovers(self):
        clock = FakeClock()
        state = {"calls": 0}

        def flaky():
            state["calls"] += 1
            if state["calls"] < 3:
                raise ExecutionError("transient")
            return "ok"

        assert RetryPolicy(max_attempts=4).call(flaky, clock=clock) == "ok"
        assert state["calls"] == 3

    def test_non_retryable_error_propagates_immediately(self):
        calls = []

        def raises_value_error():
            calls.append(1)
            raise ValueError("not a library failure")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).call(raises_value_error, clock=FakeClock())
        assert len(calls) == 1

    def test_no_real_sleep_with_fake_clock(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=4, base_delay_s=100.0, seed=1)
        with pytest.raises(ExecutionError):
            policy.call(lambda: (_ for _ in ()).throw(ExecutionError("x")), clock=clock)
        assert clock.sleeps == policy.delays()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_rejects_calls(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout_s=10.0, clock=clock, name="db1"
        )
        breaker.record_failure()
        with pytest.raises(CircuitOpenError, match="db1"):
            breaker.call(lambda: "never runs")

    def test_half_open_after_recovery_then_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout_s=10.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.call(lambda: "probe ok") == "probe ok"
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout_s=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        with pytest.raises(ExecutionError):
            breaker.call(lambda: (_ for _ in ()).throw(ExecutionError("still bad")))
        assert breaker.state == OPEN
        # and it stays open until another recovery window elapses
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "rejected")

    def test_half_open_probe_budget(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout_s=1.0,
            half_open_max_probes=1, clock=clock,
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.admit()  # first probe admitted
        assert not breaker.admit()  # second rejected while probe in flight
        assert breaker.total_rejections == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_timeout_s=-1.0)

    def test_half_open_admits_exactly_one_probe_under_racing_threads(self):
        # Regression: admit() used to read state and consume the probe
        # slot non-atomically, so threads racing at a freshly half-open
        # circuit could all win the single probe.  A barrier lines the
        # threads up on the same admit() call; exactly one may pass.
        import threading

        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout_s=1.0,
            half_open_max_probes=1, clock=clock,
        )
        breaker.record_failure()
        clock.advance(1.0)  # OPEN -> eligible for HALF_OPEN on next admit

        n_threads = 8
        barrier = threading.Barrier(n_threads)
        admitted = []
        admitted_lock = threading.Lock()

        def race():
            barrier.wait()
            if breaker.admit():
                with admitted_lock:
                    admitted.append(threading.current_thread().name)

        threads = [threading.Thread(target=race) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(admitted) == 1
        assert breaker.total_rejections == n_threads - 1


class TestFaultyDatabase:
    def test_zero_rates_is_transparent(self):
        faulty = FaultyDatabase(bank_database(), seed=0)
        assert faulty.execute(COUNT_CLIENTS) == [(4,)]
        assert faulty.injected_faults == 0

    def test_error_injection_and_counters(self):
        faulty = FaultyDatabase(bank_database(), error_rate=1.0, seed=0)
        with pytest.raises(ExecutionError):
            faulty.execute(COUNT_CLIENTS)
        assert faulty.injected_errors == 1

    def test_timeout_injection_raises_deadline_error(self):
        faulty = FaultyDatabase(bank_database(), timeout_rate=1.0, seed=0)
        with pytest.raises(DeadlineExceededError):
            faulty.execute(COUNT_CLIENTS)
        assert faulty.injected_timeouts == 1

    def test_corruption_changes_rows(self):
        clean = bank_database()
        faulty = FaultyDatabase(bank_database(), corrupt_rate=1.0, seed=0)
        clean_rows = clean.execute("SELECT name FROM client")
        corrupt_rows = faulty.execute("SELECT name FROM client")
        assert corrupt_rows != clean_rows
        assert faulty.injected_corruptions == 1

    def test_same_seed_same_fault_sequence(self):
        def fault_trace(seed):
            faulty = FaultyDatabase(
                bank_database(), error_rate=0.3, timeout_rate=0.2, seed=seed
            )
            trace = []
            for _ in range(30):
                try:
                    faulty.execute(COUNT_CLIENTS)
                    trace.append("ok")
                except DeadlineExceededError:
                    trace.append("timeout")
                except ExecutionError:
                    trace.append("error")
            return trace

        assert fault_trace(11) == fault_trace(11)
        assert fault_trace(11) != fault_trace(12)

    def test_delegates_to_wrapped_database(self):
        database = bank_database()
        faulty = FaultyDatabase(database, seed=0)
        assert faulty.schema is database.schema
        assert faulty.row_count("client") == 4

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultyDatabase(bank_database(), error_rate=1.5)


class TestFlakyLLM:
    def test_injects_generation_failures(self):
        flaky = FlakyLLM(StubParser([COUNT_CLIENTS]), failure_rate=1.0, seed=0)
        with pytest.raises(GenerationError):
            flaky.generate("q", bank_database())
        assert flaky.injected_failures == 1

    def test_injects_timeouts(self):
        flaky = FlakyLLM(StubParser([COUNT_CLIENTS]), timeout_rate=1.0, seed=0)
        with pytest.raises(DeadlineExceededError):
            flaky.generate("q", bank_database())

    def test_delegates_when_lucky(self):
        stub = StubParser([COUNT_CLIENTS])
        flaky = FlakyLLM(stub, failure_rate=0.0, seed=0)
        result = flaky.generate("q", bank_database())
        assert result.sql == COUNT_CLIENTS
        assert stub.calls == 1


class TestClassifiedExecutionMatch:
    def test_clean_match(self):
        outcome = execution_match_outcome(
            bank_database(), COUNT_CLIENTS, COUNT_CLIENTS
        )
        assert outcome.matched and outcome.failure is None

    def test_prediction_unexecutable(self):
        outcome = execution_match_outcome(
            bank_database(), "SELECT nope FROM nothing", COUNT_CLIENTS
        )
        assert not outcome.matched
        assert outcome.failure == PREDICTION_UNEXECUTABLE

    def test_gold_unexecutable_does_not_raise(self):
        outcome = execution_match_outcome(
            bank_database(), COUNT_CLIENTS, "BROKEN GOLD"
        )
        assert not outcome.matched
        assert outcome.failure == GOLD_UNEXECUTABLE
        assert outcome.detail

    def test_prediction_timeout_classified(self):
        outcome = execution_match_outcome(
            bank_database(), HEAVY_SQL, COUNT_CLIENTS, deadline_s=0.05
        )
        assert outcome.failure == PREDICTION_TIMEOUT

    def test_gold_timeout_classified(self):
        outcome = execution_match_outcome(
            bank_database(), COUNT_CLIENTS, HEAVY_SQL, deadline_s=0.05
        )
        assert outcome.failure == GOLD_TIMEOUT

    def test_retry_recovers_transient_gold_failure(self):
        # Fault draws for seed 0: first execute fails, later ones pass,
        # so a retried gold query succeeds within the attempt budget.
        faulty = FaultyDatabase(bank_database(), error_rate=0.4, seed=0)
        clock = FakeClock()
        outcome = execution_match_outcome(
            faulty, COUNT_CLIENTS, COUNT_CLIENTS,
            retry_policy=RetryPolicy(max_attempts=5, seed=0),
            clock=clock,
        )
        assert outcome.matched
        assert faulty.injected_errors >= 1


class TestFaultTolerantHarness:
    def test_broken_gold_is_skipped_and_recorded(self):
        database = bank_database()
        dataset = _dataset(
            database, [COUNT_CLIENTS, "SELECT nope FROM nothing", COUNT_CLIENTS]
        )
        result = evaluate_parser(StubParser([COUNT_CLIENTS]), dataset)
        assert result.n_examples == 3
        assert result.n_scored == 2
        assert result.ex == 1.0
        assert result.failures == {GOLD_UNEXECUTABLE: 1}
        assert len(result.quarantined) == 1
        assert result.quarantined[0].failure == GOLD_UNEXECUTABLE

    def test_acceptance_broken_gold_plus_prediction_timeout(self):
        # The issue's acceptance scenario: one unexecutable gold query
        # AND a parser that times out on one example; the run completes
        # and reports both failure classes.
        database = bank_database()
        dataset = _dataset(
            database,
            [COUNT_CLIENTS, "SELECT nope FROM nothing", COUNT_CLIENTS],
        )
        parser = StubParser([COUNT_CLIENTS, COUNT_CLIENTS, HEAVY_SQL])
        result = evaluate_parser(parser, dataset, deadline_s=0.05)
        assert result.failures[GOLD_UNEXECUTABLE] == 1
        assert result.failures[PREDICTION_TIMEOUT] == 1
        assert result.n_scored == 2

    def test_two_runs_identical_failure_counts(self):
        def run():
            faulty = FaultyDatabase(
                bank_database(), error_rate=0.25, timeout_rate=0.15, seed=5
            )
            dataset = _dataset(faulty, [COUNT_CLIENTS] * 12)
            flaky = FlakyLLM(
                StubParser([COUNT_CLIENTS]), failure_rate=0.2, seed=5
            )
            return evaluate_parser(flaky, dataset, clock=FakeClock())

        first, second = run(), run()
        assert first.failures == second.failures
        assert first.failures  # the rates above must actually inject
        assert first.predictions == second.predictions

    def test_all_repro_errors_from_generation_are_captured(self):
        # The satellite fix: a PromptBudgetError must be recorded, not
        # kill the run as it did when only GenerationError was caught.
        database = bank_database()
        dataset = _dataset(database, [COUNT_CLIENTS] * 3)
        parser = StubParser(
            [
                PromptBudgetError("prompt too large"),
                GenerationError("no candidates"),
                COUNT_CLIENTS,
            ]
        )
        result = evaluate_parser(parser, dataset)
        assert result.failures[GENERATION_FAILED] == 2
        assert result.predictions[0] == SENTINEL_SQL
        assert result.predictions[2] == COUNT_CLIENTS
        details = [r.detail for r in result.quarantined]
        assert any("PromptBudgetError" in detail for detail in details)

    def test_circuit_breaker_stops_hammering_corrupt_database(self):
        faulty = FaultyDatabase(bank_database(), error_rate=1.0, seed=0)
        dataset = _dataset(faulty, [COUNT_CLIENTS] * 8)
        # static_eval off: prediction and gold are textually identical,
        # so the equivalence short-circuit would skip every execution
        # and the injected gold faults this test exists to observe.
        result = evaluate_parser(
            StubParser([COUNT_CLIENTS]), dataset,
            breaker_threshold=2, clock=FakeClock(), static_eval=False,
        )
        assert result.failures[GOLD_UNEXECUTABLE] == 8
        # Only the first two examples hit the database; the rest were
        # rejected by the open circuit without consuming attempts.
        assert faulty.injected_errors == 2
        assert any("circuit open" in r.detail for r in result.quarantined)

    def test_retries_recover_flaky_generation(self):
        database = bank_database()
        dataset = _dataset(database, [COUNT_CLIENTS] * 6)
        flaky = FlakyLLM(StubParser([COUNT_CLIENTS]), failure_rate=0.4, seed=2)
        clean = evaluate_parser(flaky, dataset, clock=FakeClock(), max_retries=8)
        assert clean.failures.get(GENERATION_FAILED, 0) == 0
        assert clean.ex == 1.0

    def test_mean_latency_over_actual_measurements(self):
        database = bank_database()
        dataset = _dataset(database, [COUNT_CLIENTS] * 4)
        empty = evaluate_parser(StubParser([COUNT_CLIENTS]), dataset, limit=0)
        assert empty.n_examples == 0
        assert empty.mean_latency_s == 0.0
        partial = evaluate_parser(StubParser([COUNT_CLIENTS]), dataset, limit=2)
        assert partial.mean_latency_s > 0.0

    def test_negative_max_retries_rejected(self):
        dataset = _dataset(bank_database(), [COUNT_CLIENTS])
        with pytest.raises(ValueError):
            evaluate_parser(StubParser([COUNT_CLIENTS]), dataset, max_retries=-1)

    def test_failure_report_rendering(self):
        dataset = _dataset(
            bank_database(), [COUNT_CLIENTS, "SELECT nope FROM nothing"]
        )
        result = evaluate_parser(StubParser([COUNT_CLIENTS]), dataset)
        report = format_failure_report(result)
        assert GOLD_UNEXECUTABLE in report
        assert "question 1" in report
        clean = evaluate_parser(StubParser([COUNT_CLIENTS]), dataset, limit=1)
        assert format_failure_report(clean) == ""

    def test_as_row_reports_failure_total(self):
        dataset = _dataset(
            bank_database(), [COUNT_CLIENTS, "SELECT nope FROM nothing"]
        )
        result = evaluate_parser(StubParser([COUNT_CLIENTS]), dataset)
        assert result.as_row()["failures"] == 1
        clean = evaluate_parser(StubParser([COUNT_CLIENTS]), dataset, limit=1)
        assert "failures" not in clean.as_row()


class TestGracefulDegradation:
    def test_fitted_parser_reports_beam_tier(self):
        from repro import CodeSParser

        parser = CodeSParser("codes-1b")
        database = bank_database()
        result = parser.generate(
            "How many clients are there?", database, demonstrations=[]
        )
        assert result.tier in ("beam", "skeleton", "sentinel")
        assert database.is_executable(result.sql)

    def test_sentinel_when_beam_cannot_execute(self):
        from repro import CodeSParser, Column, Database, Schema, Table

        # A schema whose only table has one untyped column exercises
        # the lower degradation tiers without any fitted index.
        schema = Schema(
            name="degenerate",
            tables=(Table(name="t", columns=(Column("c", "TEXT"),)),),
        )
        database = Database.from_schema(schema)
        parser = CodeSParser("codes-1b")
        result = parser.generate("completely unrelated gibberish",
                                 database, demonstrations=[])
        assert result.tier in ("beam", "skeleton", "sentinel")
        assert database.is_executable(result.sql)
