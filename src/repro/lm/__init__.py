"""Language models: tokenizer, n-gram LM, numpy transformer, pre-training.

The paper incrementally pre-trains StarCoder checkpoints on a curated
SQL-centric corpus.  Offline, this package provides:

- :class:`CodeTokenizer` / :class:`Vocabulary` — a deterministic
  code-aware tokenizer with a capped vocabulary;
- :class:`NgramLanguageModel` — an interpolated n-gram LM used as the
  fast SQL prior inside the parser's candidate ranker;
- :class:`TransformerLM` — a from-scratch decoder-only transformer with
  multi-query attention and learned absolute position embeddings,
  trained with AdamW + cosine decay (§5.2's recipe at laptop scale);
- corpus generators for the three pre-training slices (SQL-related,
  NL-related, NL-to-code) and the incremental pre-training driver.
"""

from repro.lm.vocab import CodeTokenizer, Vocabulary
from repro.lm.ngram import NgramLanguageModel
from repro.lm.transformer import TransformerConfig, TransformerLM
from repro.lm.corpus import CorpusConfig, PretrainCorpus, build_corpus
from repro.lm.pretrain import (
    IncrementalPretrainer,
    PretrainedLM,
    pretrain_base_lm,
)

__all__ = [
    "CodeTokenizer",
    "CorpusConfig",
    "IncrementalPretrainer",
    "NgramLanguageModel",
    "PretrainCorpus",
    "PretrainedLM",
    "TransformerConfig",
    "TransformerLM",
    "Vocabulary",
    "build_corpus",
    "pretrain_base_lm",
]
