"""The LM provider protocol: what the router routes over.

A *provider* is one place SQL text can be scored or generated — the
in-process n-gram LM today, a hosted LLM API in the ROADMAP's north
star.  The protocol is deliberately tiny: two operations (``generate``,
``score``), a ``health`` probe, and a frozen capability declaration.
Everything about *reliability* — retries, breakers, failover, hedging
— lives in :class:`~repro.lm.providers.router.ProviderRouter`, not in
the providers, so a provider only has to be honest about its own
behaviour.

Two conventions make the layer deterministic on a
:class:`~repro.reliability.clock.FakeClock`:

- Providers never sleep.  A call *reports* the simulated time it
  occupied (``ProviderResponse.latency_s``, or ``latency_s`` on the
  raised :class:`~repro.errors.ProviderError`); the router charges the
  clock exactly once per routed request with the effective latency it
  computed from those reports.  This is what makes hedged requests
  analyzable: the winner's completion time is a pure function of the
  reported latencies and the hedge delay.
- All randomness is seeded per provider at construction
  (``random.Random(f"{label}:{seed}")``), so a provider's fault and
  latency sequence is reproducible from call order alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable


@dataclass(frozen=True)
class ProviderCapabilities:
    """What a provider can do, declared once at construction.

    The router consults these flags before dispatch: routing a
    ``score`` call to a generate-only provider is a config error, not a
    runtime fault, and is rejected before any breaker or retry budget
    is spent.
    """

    can_generate: bool = True
    can_score: bool = True
    #: Provider runs in-process; faults and latency are not simulated.
    local: bool = False

    def supports(self, op: str) -> bool:
        if op == "generate":
            return self.can_generate
        if op == "score":
            return self.can_score
        raise ValueError(f"unknown provider operation {op!r}")


@dataclass(frozen=True)
class ProviderResponse:
    """One successful provider call: the value plus its simulated cost.

    ``latency_s`` is the time the call *would have* occupied; the
    provider does not sleep it.  The router folds reported latencies
    into a single clock charge per routed request.
    """

    value: Any
    latency_s: float
    provider: str


@dataclass(frozen=True)
class HealthReport:
    """One health-probe result.

    ``healthy`` feeds the router's selection order (healthy providers
    first); ``detail`` is a human-readable reason surfaced by the
    ``repro providers`` CLI.
    """

    provider: str
    healthy: bool
    latency_s: float = 0.0
    detail: str = ""


@runtime_checkable
class Provider(Protocol):
    """Anything the :class:`ProviderRouter` can route to."""

    name: str
    capabilities: ProviderCapabilities

    def generate(self, prompt: str) -> ProviderResponse:
        """Produce SQL text for ``prompt``; may raise ``ProviderError``."""
        ...

    def score(self, text: str) -> ProviderResponse:
        """Score SQL fluency (higher is better); may raise ``ProviderError``."""
        ...

    def health(self) -> HealthReport:
        """Probe liveness.  Must not raise — report, don't fail."""
        ...
