"""Health-aware provider routing: retries, failover, breakers, hedging.

The :class:`ProviderRouter` is the single reliability boundary between
the inference engine and however many LM providers back it.  Per
routed request it:

1. refreshes health probes when the probe interval has elapsed;
2. orders admissible providers healthy-first, then by configured
   priority (breaker-open providers are excluded up front — if *every*
   provider is excluded, :class:`~repro.errors.AllProvidersOpenError`
   tells the serving layer to shed);
3. calls the primary under a per-provider
   :class:`~repro.reliability.CircuitBreaker` and a seeded
   :class:`~repro.reliability.RetryPolicy` — retry backoff is charged
   as simulated time, and a breaker that opens mid-retry aborts the
   budget early;
4. on exhausted retries, fails over to the next admissible provider
   (counted), repeating step 3;
5. on a *slow success* — reported latency beyond ``hedge_delay_s`` —
   fires one hedged backup call and keeps whichever result completes
   first (backup completion is ``hedge_delay_s + backup latency``);
   the loser's usable result is discarded and counted.

Determinism: providers never sleep (see
:mod:`repro.lm.providers.base`); the router computes one *effective
latency* per request from the reported latencies, backoff schedule,
and hedge arithmetic, and charges it to the injected clock with a
single ``clock.sleep``.  On a ``FakeClock`` the entire routing history
— decisions, counters, latencies — is a pure function of
``(config, seeds, call order)``, which is what the byte-stability
tests in ``tests/test_providers.py`` assert.

Counter updates are guarded by a lock obtained from
:func:`repro.reliability.new_lock` — the serving layer's worker
threads may share one router, and ARCH005 keeps raw ``threading``
imports out of ``lm/``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllProvidersOpenError, ProviderError, ProviderTimeoutError
from repro.lm.providers.base import HealthReport, Provider, ProviderResponse
from repro.reliability.breaker import BreakerStats, CircuitBreaker
from repro.reliability.clock import Clock, SYSTEM_CLOCK
from repro.reliability.retry import RetryPolicy
from repro.reliability.sync import new_lock

#: Bounded routing-event history (oldest dropped first).
MAX_EVENTS = 512


@dataclass
class RoutedProvider:
    """One provider under management: breaker, health, counters."""

    provider: Provider
    priority: int
    breaker: CircuitBreaker
    healthy: bool = True
    last_report: HealthReport | None = None
    last_probe_at: float | None = None
    successes: int = 0
    failures: int = 0
    retries: int = 0
    hedge_calls: int = 0

    def stats_dict(self) -> dict[str, object]:
        """Plain-data stats for layers that must not import providers."""
        return {
            "name": self.provider.name,
            "priority": self.priority,
            "healthy": self.healthy,
            "successes": self.successes,
            "failures": self.failures,
            "retries": self.retries,
            "hedge_calls": self.hedge_calls,
            "breaker": self.breaker.stats.as_dict(),
        }


@dataclass
class _Attempt:
    """Outcome of one provider's full retry budget."""

    response: ProviderResponse | None
    spent_s: float
    error: ProviderError | None
    attempted: bool  # False when the breaker rejected every admit


@dataclass
class RouteResult:
    """One routed request, fully accounted."""

    value: object
    provider: str
    effective_latency_s: float
    failovers: int
    retries: int
    hedged: bool
    hedge_won: bool


class ProviderRouter:
    """Routes ``generate``/``score`` calls across providers with failover."""

    def __init__(
        self,
        providers: list[tuple[Provider, int]] | list[Provider],
        clock: Clock | None = None,
        retry: RetryPolicy | None = None,
        hedge_delay_s: float | None = None,
        probe_interval_s: float | None = None,
        breaker_failure_threshold: int = 3,
        breaker_recovery_timeout_s: float = 5.0,
        name: str = "router",
    ):
        if not providers:
            raise ValueError("router needs at least one provider")
        if hedge_delay_s is not None and hedge_delay_s < 0:
            raise ValueError(f"hedge_delay_s must be >= 0, got {hedge_delay_s}")
        if probe_interval_s is not None and probe_interval_s < 0:
            raise ValueError(
                f"probe_interval_s must be >= 0, got {probe_interval_s}"
            )
        self.name = name
        self._clock = clock if clock is not None else SYSTEM_CLOCK
        self.retry = retry if retry is not None else RetryPolicy(max_attempts=1)
        self.hedge_delay_s = hedge_delay_s
        self.probe_interval_s = probe_interval_s
        self._lock = new_lock()
        self.entries: list[RoutedProvider] = []
        seen: set[str] = set()
        for item in providers:
            provider, priority = item if isinstance(item, tuple) else (item, 0)
            if provider.name in seen:
                raise ValueError(f"duplicate provider name {provider.name!r}")
            seen.add(provider.name)
            self.entries.append(
                RoutedProvider(
                    provider=provider,
                    priority=priority,
                    breaker=CircuitBreaker(
                        failure_threshold=breaker_failure_threshold,
                        recovery_timeout_s=breaker_recovery_timeout_s,
                        clock=self._clock,
                        name=f"provider:{provider.name}",
                    ),
                )
            )
        # -- request-level counters (lock-guarded) ---------------------------
        self.requests = 0
        self.failovers = 0
        self.total_retries = 0
        self.hedges_fired = 0
        self.hedge_wins = 0
        self.hedge_discarded = 0
        self.all_open_sheds = 0
        self.effective_latencies: list[float] = []
        self.events: list[str] = []

    # -- probing and selection ------------------------------------------------

    def _record_event(self, event: str) -> None:
        self.events.append(event)
        if len(self.events) > MAX_EVENTS:
            del self.events[: len(self.events) - MAX_EVENTS]

    def _maybe_probe(self) -> None:
        if self.probe_interval_s is None:
            return
        now = self._clock.now()
        for entry in self.entries:
            due = (
                entry.last_probe_at is None
                or now - entry.last_probe_at >= self.probe_interval_s
            )
            if not due:
                continue
            report = entry.provider.health()
            entry.last_report = report
            entry.last_probe_at = now
            if report.healthy != entry.healthy:
                self._record_event(
                    f"probe {entry.provider.name}: "
                    f"{'healthy' if report.healthy else 'unhealthy'}"
                )
            entry.healthy = report.healthy

    def probe_now(self) -> list[HealthReport]:
        """Force a probe of every provider, returning the reports."""
        with self._lock:
            reports = []
            now = self._clock.now()
            for entry in self.entries:
                report = entry.provider.health()
                entry.last_report = report
                entry.last_probe_at = now
                entry.healthy = report.healthy
                reports.append(report)
            return reports

    def _candidates(self, op: str) -> list[RoutedProvider]:
        """Admissible providers for ``op``, healthy-first then priority."""
        supported = [
            entry for entry in self.entries if entry.provider.capabilities.supports(op)
        ]
        if not supported:
            raise ValueError(f"no configured provider supports {op!r}")
        admissible = [entry for entry in supported if entry.breaker.allow()]
        if not admissible:
            self.all_open_sheds += 1
            self._record_event(f"{op}: all providers open")
            raise AllProvidersOpenError(
                f"router {self.name!r}: all {len(supported)} provider(s) "
                f"have open circuits for {op!r}"
            )
        return sorted(
            admissible,
            key=lambda entry: (not entry.healthy, entry.priority),
        )

    # -- calling --------------------------------------------------------------

    def _call_once(
        self, entry: RoutedProvider, op: str, payload: str
    ) -> ProviderResponse:
        if op == "generate":
            return entry.provider.generate(payload)
        return entry.provider.score(payload)

    def _call_with_retries(
        self, entry: RoutedProvider, op: str, payload: str
    ) -> _Attempt:
        """Run one provider's full retry budget; never raises."""
        spent = 0.0
        attempted = False
        error: ProviderError | None = None
        backoffs = iter(self.retry.delays())
        for attempt in range(1, self.retry.max_attempts + 1):
            if not entry.breaker.admit():
                self._record_event(
                    f"{op} {entry.provider.name}: breaker open at attempt {attempt}"
                )
                break
            attempted = True
            try:
                response = self._call_once(entry, op, payload)
            except ProviderError as exc:
                error = exc
                entry.failures += 1
                entry.breaker.record_failure()
                spent += getattr(exc, "latency_s", 0.0)
                kind = "timeout" if isinstance(exc, ProviderTimeoutError) else "fault"
                self._record_event(
                    f"{op} {entry.provider.name}: {kind} at attempt {attempt}"
                )
                if attempt < self.retry.max_attempts:
                    entry.retries += 1
                    self.total_retries += 1
                    spent += next(backoffs, 0.0)
                continue
            entry.successes += 1
            entry.breaker.record_success()
            return _Attempt(
                response=response, spent_s=spent, error=None, attempted=True
            )
        return _Attempt(response=None, spent_s=spent, error=error, attempted=attempted)

    def _hedge(
        self,
        op: str,
        payload: str,
        primary: RoutedProvider,
        primary_response: ProviderResponse,
        backups: list[RoutedProvider],
    ) -> tuple[ProviderResponse, float, bool, bool]:
        """Maybe fire a hedged backup call.

        Returns ``(winner, completion_s, fired, backup_won)``.  Fires
        only when the primary's reported latency exceeds the hedge
        delay and an admissible backup exists.  The backup gets a
        single attempt (no retries — hedges are speculative).  The
        winner is whichever completes first; the loser's usable result
        is discarded and counted.
        """
        primary_completion = primary_response.latency_s
        if self.hedge_delay_s is None or primary_completion <= self.hedge_delay_s:
            return primary_response, primary_completion, False, False
        backup = next(
            (entry for entry in backups if entry.breaker.admit()), None
        )
        if backup is None:
            return primary_response, primary_completion, False, False
        self.hedges_fired += 1
        backup.hedge_calls += 1
        try:
            backup_response = self._call_once(backup, op, payload)
        except ProviderError as exc:
            backup.failures += 1
            backup.breaker.record_failure()
            self._record_event(
                f"{op} hedge {backup.provider.name}: failed "
                f"({type(exc).__name__})"
            )
            return primary_response, primary_completion, True, False
        backup.successes += 1
        backup.breaker.record_success()
        backup_completion = self.hedge_delay_s + backup_response.latency_s
        if backup_completion < primary_completion:
            self.hedge_wins += 1
            self.hedge_discarded += 1  # the primary's result goes unused
            self._record_event(
                f"{op} hedge {backup.provider.name}: won "
                f"({backup_completion:.4f}s < {primary_completion:.4f}s)"
            )
            return backup_response, backup_completion, True, True
        self.hedge_discarded += 1  # the backup's result goes unused
        self._record_event(
            f"{op} hedge {backup.provider.name}: lost "
            f"({backup_completion:.4f}s >= {primary_completion:.4f}s)"
        )
        return primary_response, primary_completion, True, False

    def route(self, op: str, payload: str) -> RouteResult:
        """Route one request; raises only ``ProviderError`` subclasses."""
        with self._lock:
            self.requests += 1
            self._maybe_probe()
            candidates = self._candidates(op)
            spent = 0.0
            failovers = 0
            retries_before = self.total_retries
            anything_attempted = False
            last_error: ProviderError | None = None
            for position, entry in enumerate(candidates):
                attempt = self._call_with_retries(entry, op, payload)
                spent += attempt.spent_s
                anything_attempted = anything_attempted or attempt.attempted
                if attempt.response is None:
                    last_error = attempt.error or last_error
                    if position + 1 < len(candidates):
                        failovers += 1
                        self.failovers += 1
                        self._record_event(
                            f"{op}: failover {entry.provider.name} -> "
                            f"{candidates[position + 1].provider.name}"
                        )
                    continue
                winner, completion, hedge_fired, hedge_won = self._hedge(
                    op, payload, entry, attempt.response, candidates[position + 1 :]
                )
                effective = spent + completion
                self._charge(effective)
                return RouteResult(
                    value=winner.value,
                    provider=winner.provider,
                    effective_latency_s=effective,
                    failovers=failovers,
                    retries=self.total_retries - retries_before,
                    hedged=hedge_fired,
                    hedge_won=hedge_won,
                )
            # Every candidate's budget is exhausted.  Time spent failing
            # is still charged — the caller waited through it.
            self._charge(spent)
            if not anything_attempted:
                self.all_open_sheds += 1
                raise AllProvidersOpenError(
                    f"router {self.name!r}: every provider's circuit rejected "
                    f"{op!r} before any attempt"
                )
            assert last_error is not None
            raise last_error

    def _charge(self, effective_s: float) -> None:
        self.effective_latencies.append(effective_s)
        if effective_s > 0:
            self._clock.sleep(effective_s)

    # -- public operations ----------------------------------------------------

    def generate(self, prompt: str) -> str:
        return self.route("generate", prompt).value

    def score(self, text: str) -> float:
        return self.route("score", text).value

    # -- observability --------------------------------------------------------

    def breaker_stats(self) -> list[BreakerStats]:
        return [entry.breaker.stats for entry in self.entries]

    def latency_quantile(self, q: float) -> float:
        """Empirical ``q``-quantile of effective request latencies."""
        if not self.effective_latencies:
            return 0.0
        ordered = sorted(self.effective_latencies)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def stats_dict(self) -> dict[str, object]:
        """Plain-data snapshot for the serving layer (no provider imports)."""
        with self._lock:
            return {
                "name": self.name,
                "requests": self.requests,
                "failovers": self.failovers,
                "retries": self.total_retries,
                "hedges_fired": self.hedges_fired,
                "hedge_wins": self.hedge_wins,
                "hedge_discarded": self.hedge_discarded,
                "all_open_sheds": self.all_open_sheds,
                "hedge_delay_s": self.hedge_delay_s,
                "providers": [entry.stats_dict() for entry in self.entries],
            }

    def as_rows(self) -> list[dict[str, object]]:
        """Per-provider table rows for ``format_table`` (CLI, bench)."""
        rows = []
        for entry in self.entries:
            stats = entry.breaker.stats
            rows.append(
                {
                    "provider": entry.provider.name,
                    "priority": entry.priority,
                    "healthy": "yes" if entry.healthy else "no",
                    "breaker": stats.state,
                    "ok": entry.successes,
                    "fail": entry.failures,
                    "retry": entry.retries,
                    "hedge": entry.hedge_calls,
                    "opens": stats.open_count,
                }
            )
        return rows
