"""Simulated unreliable providers: seeded faults, realistic latency.

These wrap an inner provider (usually the
:class:`~repro.lm.providers.local.LocalLMProvider`) and re-introduce
the failure modes hosted LLM APIs exhibit — 5xx faults, timeouts,
log-normal latency with a heavy tail — at configurable rates from a
seeded RNG.  Because every simulated provider delegates the actual
*answer* to the same inner LM, a router mixing healthy, flaky, and
dead providers can fail over freely with **zero SQL drift**: whichever
provider wins, the value is the same.

Fault decisions come from the shared
:class:`~repro.reliability.faults.FaultDecider`, the same core behind
the eval harness's ``FlakyLLM`` wrapper, so chaos semantics cannot
diverge between the two layers.  Latency draws come from a separate
seeded RNG stream so fault sequence and latency sequence are
independently reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import ProviderFaultError, ProviderTimeoutError
from repro.lm.providers.base import (
    HealthReport,
    Provider,
    ProviderCapabilities,
    ProviderResponse,
)
from repro.reliability.faults import FaultDecider


@dataclass(frozen=True)
class LatencyModel:
    """A seeded log-normal latency distribution with an optional tail.

    ``median_s`` and ``sigma`` parameterize the log-normal body (the
    classic shape of RPC latency); with probability ``tail_p`` a draw
    is multiplied by ``tail_mult`` — the stragglers that hedged
    requests exist to cut.
    """

    median_s: float = 0.05
    sigma: float = 0.35
    tail_p: float = 0.0
    tail_mult: float = 10.0

    def __post_init__(self) -> None:
        if self.median_s < 0:
            raise ValueError(f"median_s must be >= 0, got {self.median_s}")
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if not 0.0 <= self.tail_p <= 1.0:
            raise ValueError(f"tail_p must lie in [0, 1], got {self.tail_p}")
        if self.tail_mult < 1.0:
            raise ValueError(f"tail_mult must be >= 1, got {self.tail_mult}")

    def draw(self, rng: random.Random) -> float:
        if self.median_s == 0.0:
            return 0.0
        latency = rng.lognormvariate(math.log(self.median_s), self.sigma)
        if self.tail_p > 0.0 and rng.random() < self.tail_p:
            latency *= self.tail_mult
        return latency


class FlakyProvider:
    """A provider wrapper injecting faults via the shared decision core.

    The provider-protocol port of the eval harness's ``FlakyLLM``: one
    :class:`FaultDecider` drives both, so one fault injector serves
    the eval harness and the router's chaos tests.  Each ``generate``
    / ``score`` call draws once; a ``"failure"`` verdict raises
    :class:`~repro.errors.ProviderFaultError`, ``"timeout"`` raises
    :class:`~repro.errors.ProviderTimeoutError` (charged ``timeout_s``
    of simulated latency — a timeout occupies its full budget), and
    otherwise the call delegates to the inner provider.

    ``health()`` consumes a fault draw too: a probe is a call, and a
    probe against a flaky endpoint is itself flaky.  A fault verdict
    makes the report unhealthy without raising.
    """

    def __init__(
        self,
        inner: Provider,
        name: str = "flaky",
        failure_rate: float = 0.0,
        timeout_rate: float = 0.0,
        timeout_s: float = 1.0,
        seed: int = 0,
    ):
        self.inner = inner
        self.name = name
        self.capabilities = inner.capabilities
        self.timeout_s = float(timeout_s)
        self._decider = FaultDecider(
            failure_rate=failure_rate,
            timeout_rate=timeout_rate,
            seed=seed,
            label=f"flaky-provider[{name}]",
        )
        self.calls = 0

    @property
    def failure_rate(self) -> float:
        return self._decider.failure_rate

    @property
    def timeout_rate(self) -> float:
        return self._decider.timeout_rate

    @property
    def injected_failures(self) -> int:
        return self._decider.injected_failures

    @property
    def injected_timeouts(self) -> int:
        return self._decider.injected_timeouts

    def _maybe_fault(self, op: str, payload: str) -> None:
        verdict, draw = self._decider.decide()
        if verdict == "failure":
            raise ProviderFaultError(
                f"provider {self.name!r}: injected {op} fault "
                f"(draw={draw:.4f}) for {payload[:60]!r}"
            )
        if verdict == "timeout":
            raise ProviderTimeoutError(
                f"provider {self.name!r}: injected {op} timeout "
                f"(draw={draw:.4f}) for {payload[:60]!r}",
                latency_s=self.timeout_s,
            )

    def generate(self, prompt: str) -> ProviderResponse:
        self.calls += 1
        self._maybe_fault("generate", prompt)
        inner = self.inner.generate(prompt)
        return ProviderResponse(
            value=inner.value, latency_s=inner.latency_s, provider=self.name
        )

    def score(self, text: str) -> ProviderResponse:
        self.calls += 1
        self._maybe_fault("score", text)
        inner = self.inner.score(text)
        return ProviderResponse(
            value=inner.value, latency_s=inner.latency_s, provider=self.name
        )

    def health(self) -> HealthReport:
        verdict, draw = self._decider.decide()
        if verdict is not None:
            return HealthReport(
                provider=self.name,
                healthy=False,
                latency_s=self.timeout_s if verdict == "timeout" else 0.0,
                detail=f"probe hit injected {verdict} (draw={draw:.4f})",
            )
        inner = self.inner.health()
        return HealthReport(
            provider=self.name,
            healthy=inner.healthy,
            latency_s=inner.latency_s,
            detail=inner.detail,
        )


class RemoteProvider:
    """A latency-realistic "hosted API" provider.

    Composes the two things that make remote LLM calls interesting:
    a seeded :class:`LatencyModel` (log-normal body, optional heavy
    tail) and seeded fault injection (failure / timeout rates through
    the shared :class:`FaultDecider`).  The answer itself still comes
    from the wrapped inner provider — the simulation changes *when and
    whether* you get it, never *what* you get.

    Latency draws and fault draws use independent RNG streams, so
    enabling faults does not perturb the latency sequence (and vice
    versa) — each is reproducible from ``(seed, call order)`` alone.
    A draw above ``timeout_s`` is itself reported as a timeout: the
    caller's deadline would have expired first.
    """

    def __init__(
        self,
        inner: Provider,
        name: str = "remote",
        latency: LatencyModel | None = None,
        failure_rate: float = 0.0,
        timeout_rate: float = 0.0,
        timeout_s: float = 1.0,
        seed: int = 0,
    ):
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        self.inner = inner
        self.name = name
        self.capabilities = inner.capabilities
        self.latency = latency if latency is not None else LatencyModel()
        self.timeout_s = float(timeout_s)
        self._decider = FaultDecider(
            failure_rate=failure_rate,
            timeout_rate=timeout_rate,
            seed=seed,
            label=f"remote-provider[{name}]",
        )
        self._latency_rng = random.Random(f"remote-latency[{name}]:{seed}")
        self.calls = 0
        self.natural_timeouts = 0

    @property
    def injected_failures(self) -> int:
        return self._decider.injected_failures

    @property
    def injected_timeouts(self) -> int:
        return self._decider.injected_timeouts

    def _simulate(self, op: str, payload: str) -> float:
        """One remote round-trip: returns the latency or raises."""
        latency = self.latency.draw(self._latency_rng)
        verdict, draw = self._decider.decide()
        if verdict == "failure":
            raise ProviderFaultError(
                f"provider {self.name!r}: injected {op} fault "
                f"(draw={draw:.4f}) for {payload[:60]!r}",
                latency_s=min(latency, self.timeout_s),
            )
        if verdict == "timeout":
            raise ProviderTimeoutError(
                f"provider {self.name!r}: injected {op} timeout "
                f"(draw={draw:.4f}) for {payload[:60]!r}",
                latency_s=self.timeout_s,
            )
        if latency > self.timeout_s:
            self.natural_timeouts += 1
            raise ProviderTimeoutError(
                f"provider {self.name!r}: {op} latency {latency:.3f}s exceeded "
                f"timeout {self.timeout_s:.3f}s for {payload[:60]!r}",
                latency_s=self.timeout_s,
            )
        return latency

    def generate(self, prompt: str) -> ProviderResponse:
        self.calls += 1
        latency = self._simulate("generate", prompt)
        inner = self.inner.generate(prompt)
        return ProviderResponse(
            value=inner.value,
            latency_s=latency + inner.latency_s,
            provider=self.name,
        )

    def score(self, text: str) -> ProviderResponse:
        self.calls += 1
        latency = self._simulate("score", text)
        inner = self.inner.score(text)
        return ProviderResponse(
            value=inner.value,
            latency_s=latency + inner.latency_s,
            provider=self.name,
        )

    def health(self) -> HealthReport:
        try:
            latency = self._simulate("health", "probe")
        except (ProviderFaultError, ProviderTimeoutError) as exc:
            return HealthReport(
                provider=self.name,
                healthy=False,
                latency_s=exc.latency_s,
                detail=str(exc),
            )
        inner = self.inner.health()
        return HealthReport(
            provider=self.name,
            healthy=inner.healthy,
            latency_s=latency + inner.latency_s,
            detail=inner.detail,
        )


class DeadProvider:
    """A provider that fails every call — a hard outage, not flap.

    The benchmark's "dead" leg and the simplest way to exercise
    breaker-open failover: every ``generate``/``score`` raises
    :class:`~repro.errors.ProviderFaultError` after ``latency_s`` of
    simulated connect time, and ``health()`` always reports unhealthy.
    """

    def __init__(self, name: str = "dead", latency_s: float = 0.0):
        self.name = name
        self.capabilities = ProviderCapabilities(
            can_generate=True, can_score=True, local=False
        )
        self.latency_s = float(latency_s)
        self.calls = 0

    def _refuse(self, op: str, payload: str) -> ProviderResponse:
        self.calls += 1
        raise ProviderFaultError(
            f"provider {self.name!r}: endpoint down ({op} {payload[:60]!r})",
            latency_s=self.latency_s,
        )

    def generate(self, prompt: str) -> ProviderResponse:
        return self._refuse("generate", prompt)

    def score(self, text: str) -> ProviderResponse:
        return self._refuse("score", text)

    def health(self) -> HealthReport:
        return HealthReport(
            provider=self.name,
            healthy=False,
            latency_s=self.latency_s,
            detail="endpoint down",
        )
