"""Declarative provider/router configuration.

A router topology is data: which providers exist, what kind each is,
its priority, fault rates, latency shape, and the router's hedging,
probing, retry, and breaker knobs.  :class:`RouterConfig` captures
that as frozen dataclasses (hashable — the registry keys on them),
``RouterConfig.from_dict`` parses the JSON form the ``repro
providers`` CLI accepts, and :func:`build_router` turns a config plus
a local LM into a live :class:`~repro.lm.providers.router.ProviderRouter`.

Every simulated provider wraps the *same* local LM adapter, so a
config mixing healthy, flaky, and dead providers routes around faults
with zero SQL drift by construction — only timing and availability
vary, never answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lm.pretrain import PretrainedLM
from repro.lm.providers.local import LocalLMProvider
from repro.lm.providers.router import ProviderRouter
from repro.lm.providers.sim import (
    DeadProvider,
    FlakyProvider,
    LatencyModel,
    RemoteProvider,
)
from repro.reliability.clock import Clock
from repro.reliability.retry import RetryPolicy

PROVIDER_KINDS = ("local", "flaky", "remote", "dead")


@dataclass(frozen=True)
class ProviderSpec:
    """One provider declaration.

    ``kind`` selects the implementation: ``local`` (the in-process LM
    adapter), ``flaky`` (local + seeded fault injection), ``remote``
    (local + seeded latency model + fault injection), ``dead`` (hard
    outage).  Latency fields apply to ``remote`` only.
    """

    name: str
    kind: str = "local"
    priority: int = 0
    failure_rate: float = 0.0
    timeout_rate: float = 0.0
    timeout_s: float = 1.0
    latency_median_s: float = 0.05
    latency_sigma: float = 0.35
    latency_tail_p: float = 0.0
    latency_tail_mult: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in PROVIDER_KINDS:
            raise ValueError(
                f"unknown provider kind {self.kind!r}; "
                f"expected one of {PROVIDER_KINDS}"
            )

    @classmethod
    def from_dict(cls, raw: dict) -> ProviderSpec:
        allowed = set(cls.__dataclass_fields__)
        unknown = set(raw) - allowed
        if unknown:
            raise ValueError(
                f"unknown provider spec field(s) {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}"
            )
        return cls(**raw)


@dataclass(frozen=True)
class RouterConfig:
    """A full router topology plus its reliability knobs."""

    providers: tuple[ProviderSpec, ...] = field(
        default_factory=lambda: (ProviderSpec(name="local", kind="local"),)
    )
    hedge_delay_s: float | None = None
    probe_interval_s: float | None = None
    retry_max_attempts: int = 1
    retry_base_delay_s: float = 0.05
    retry_seed: int = 0
    breaker_failure_threshold: int = 3
    breaker_recovery_timeout_s: float = 5.0
    name: str = "router"

    @classmethod
    def from_dict(cls, raw: dict) -> RouterConfig:
        allowed = set(cls.__dataclass_fields__)
        unknown = set(raw) - allowed
        if unknown:
            raise ValueError(
                f"unknown router config field(s) {sorted(unknown)}; "
                f"allowed: {sorted(allowed)}"
            )
        data = dict(raw)
        if "providers" in data:
            data["providers"] = tuple(
                spec if isinstance(spec, ProviderSpec) else ProviderSpec.from_dict(spec)
                for spec in data["providers"]
            )
        return cls(**data)


def build_provider(spec: ProviderSpec, lm: PretrainedLM):
    """Instantiate one provider from its spec, backed by ``lm``."""
    local = LocalLMProvider(lm, name=spec.name if spec.kind == "local" else f"{spec.name}.lm")
    if spec.kind == "local":
        return local
    if spec.kind == "flaky":
        return FlakyProvider(
            local,
            name=spec.name,
            failure_rate=spec.failure_rate,
            timeout_rate=spec.timeout_rate,
            timeout_s=spec.timeout_s,
            seed=spec.seed,
        )
    if spec.kind == "remote":
        return RemoteProvider(
            local,
            name=spec.name,
            latency=LatencyModel(
                median_s=spec.latency_median_s,
                sigma=spec.latency_sigma,
                tail_p=spec.latency_tail_p,
                tail_mult=spec.latency_tail_mult,
            ),
            failure_rate=spec.failure_rate,
            timeout_rate=spec.timeout_rate,
            timeout_s=spec.timeout_s,
            seed=spec.seed,
        )
    return DeadProvider(name=spec.name)


def build_router(
    config: RouterConfig, lm: PretrainedLM, clock: Clock | None = None
) -> ProviderRouter:
    """A live router for ``config``, every provider backed by ``lm``."""
    providers = [
        (build_provider(spec, lm), spec.priority) for spec in config.providers
    ]
    return ProviderRouter(
        providers,
        clock=clock,
        retry=RetryPolicy(
            max_attempts=config.retry_max_attempts,
            base_delay_s=config.retry_base_delay_s,
            seed=config.retry_seed,
        ),
        hedge_delay_s=config.hedge_delay_s,
        probe_interval_s=config.probe_interval_s,
        breaker_failure_threshold=config.breaker_failure_threshold,
        breaker_recovery_timeout_s=config.breaker_recovery_timeout_s,
        name=config.name,
    )


def local_router(lm: PretrainedLM, clock: Clock | None = None) -> ProviderRouter:
    """The parity-preserving default: one zero-latency local provider.

    With a single fault-free in-process provider, no hedging, and no
    probing, ``router.score(text) == lm.score(text)`` exactly and the
    clock is never charged — the engine's golden outputs stay
    byte-identical.
    """
    return build_router(RouterConfig(), lm, clock=clock)
