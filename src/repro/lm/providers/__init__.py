"""Pluggable LM providers with health-aware routing (ROADMAP: serving).

The package splits the provider layer into:

- :mod:`~repro.lm.providers.base` — the protocol (``generate``,
  ``score``, ``health``, capability flags) and the no-sleep latency
  convention that keeps routing deterministic on a ``FakeClock``;
- :mod:`~repro.lm.providers.local` — the in-process adapter over the
  pre-trained n-gram LM (parity-preserving: zero latency, no faults);
- :mod:`~repro.lm.providers.sim` — seeded fault-injecting and
  latency-realistic "remote" providers for chaos tests and benches;
- :mod:`~repro.lm.providers.router` — retries, per-provider circuit
  breakers, health-probe-driven failover, hedged requests;
- :mod:`~repro.lm.providers.config` — the declarative topology the
  registry and CLI build routers from.

ARCH006: the engine and serving layers never import this package —
they reach providers through ``CodeSParser.router`` (built by the LM
registry), and serving reads router statistics as plain dicts.
"""

from repro.lm.providers.base import (
    HealthReport,
    Provider,
    ProviderCapabilities,
    ProviderResponse,
)
from repro.lm.providers.config import (
    ProviderSpec,
    RouterConfig,
    build_provider,
    build_router,
    local_router,
)
from repro.lm.providers.local import LocalLMProvider
from repro.lm.providers.router import ProviderRouter, RouteResult, RoutedProvider
from repro.lm.providers.sim import (
    DeadProvider,
    FlakyProvider,
    LatencyModel,
    RemoteProvider,
)

__all__ = [
    "DeadProvider",
    "FlakyProvider",
    "HealthReport",
    "LatencyModel",
    "LocalLMProvider",
    "Provider",
    "ProviderCapabilities",
    "ProviderResponse",
    "ProviderRouter",
    "ProviderSpec",
    "RemoteProvider",
    "RouteResult",
    "RoutedProvider",
    "RouterConfig",
    "build_provider",
    "build_router",
    "local_router",
]
