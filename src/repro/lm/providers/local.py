"""The in-process provider wrapping a pre-trained n-gram LM.

This is the adapter that preserves golden engine parity: ``score``
returns exactly ``lm.score(text)`` with zero reported latency, so a
router fronting a single fault-free :class:`LocalLMProvider` is
arithmetically indistinguishable from calling the LM directly.
"""

from __future__ import annotations

from repro.errors import GenerationError
from repro.lm.pretrain import PretrainedLM
from repro.lm.providers.base import (
    HealthReport,
    ProviderCapabilities,
    ProviderResponse,
)

#: How many training documents the generate() fallback considers.  The
#: n-gram prior has no sampler, so generation re-ranks a bounded slice
#: of the SQL the model was trained on; bounding keeps generate O(1) in
#: corpus size.
GENERATE_POOL_SIZE = 16


class LocalLMProvider:
    """Adapter making a :class:`~repro.lm.pretrain.PretrainedLM` a provider.

    Always healthy, zero latency, no faults: the in-process model
    cannot time out or 5xx.  ``generate`` returns the best-scoring
    document among the first :data:`GENERATE_POOL_SIZE` SQL documents
    the LM saw in pre-training (the prior has no sampling interface);
    the pool ranking is computed lazily once and cached.
    """

    def __init__(self, lm: PretrainedLM, name: str = "local"):
        self.lm = lm
        self.name = name
        self.capabilities = ProviderCapabilities(
            can_generate=True, can_score=True, local=True
        )
        self._best_doc: str | None = None
        self.calls = 0

    def _best_seen_sql(self) -> str:
        if self._best_doc is None:
            pool = self.lm.seen_sql[:GENERATE_POOL_SIZE]
            if not pool:
                raise GenerationError(
                    f"provider {self.name!r}: LM {self.lm.name!r} saw no SQL "
                    "during pre-training; nothing to generate from"
                )
            self._best_doc = max(pool, key=self.lm.score)
        return self._best_doc

    def generate(self, prompt: str) -> ProviderResponse:
        self.calls += 1
        return ProviderResponse(
            value=self._best_seen_sql(), latency_s=0.0, provider=self.name
        )

    def score(self, text: str) -> ProviderResponse:
        self.calls += 1
        return ProviderResponse(
            value=self.lm.score(text), latency_s=0.0, provider=self.name
        )

    def health(self) -> HealthReport:
        return HealthReport(
            provider=self.name,
            healthy=True,
            latency_s=0.0,
            detail=f"in-process LM {self.lm.name!r}",
        )
