"""Base and incremental pre-training drivers (paper §5.2).

A :class:`PretrainedLM` wraps the fast n-gram sequence prior together
with provenance metadata.  Base pre-training mixes corpora according to
the model *family* (StarCoder-like: mostly code with a little SQL;
Llama-like: mostly NL; CodeGen-like: code only).  Incremental
pre-training then continues training on the SQL-centric corpus with the
paper's epoch recipe — two epochs of SQL-related data and one epoch
each of NL-related and NL-to-code data — turning a StarCoder-tier base
into a CodeS-tier model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TrainingError
from repro.lm.corpus import CorpusConfig, PretrainCorpus, build_corpus
from repro.lm.ngram import NgramLanguageModel

#: Base-mix recipes per model family: fractions of (sql, nl, nl2code, code).
FAMILY_MIXES: dict[str, tuple[float, float, float, float]] = {
    # StarCoder: 80+ languages, SQL is a tiny fraction.
    "starcoder": (0.10, 0.10, 0.10, 0.70),
    # CodeGen: code-heavy, almost no SQL or NL.
    "codegen": (0.03, 0.05, 0.07, 0.85),
    # Llama-style general LM: mostly natural language.
    "llama": (0.02, 0.78, 0.05, 0.15),
    # Closed frontier models (GPT-4/ChatGPT/Codex/PaLM/Claude): trained
    # on everything, including essentially all public SQL.
    "closed": (1.0, 0.9, 1.0, 0.6),
}


def _sql_bodies(nl2code_docs: list[str]) -> list[str]:
    """Extract the SQL halves of NL-to-code pair documents."""
    bodies: list[str] = []
    for doc in nl2code_docs:
        __, __, body = doc.partition("\n")
        if body.upper().startswith("SELECT"):
            bodies.append(body)
    return bodies


@dataclass
class PretrainedLM:
    """An n-gram sequence prior plus its training provenance.

    ``seen_sql`` records the SQL documents the model was trained on —
    the parser mines its skeleton bank (its "SQL knowledge") from this
    list, so a SQL-heavier pre-training mix genuinely widens the bank.
    """

    name: str
    model: NgramLanguageModel
    family: str
    incremental: bool = False
    history: list[str] = field(default_factory=list)
    seen_sql: list[str] = field(default_factory=list)

    def score(self, text: str) -> float:
        """Length-normalized log probability (higher is more fluent)."""
        return self.model.mean_log_prob(text)

    def perplexity(self, texts: list[str]) -> float:
        return self.model.perplexity(texts)


def _take(documents: list[str], fraction: float) -> list[str]:
    count = int(round(len(documents) * fraction))
    return documents[:count]


def pretrain_base_lm(
    family: str,
    order: int = 3,
    corpus: PretrainCorpus | None = None,
    name: str | None = None,
) -> PretrainedLM:
    """Pre-train a base LM with the family's corpus mix."""
    if family not in FAMILY_MIXES:
        raise TrainingError(
            f"unknown family {family!r}; expected one of {sorted(FAMILY_MIXES)}"
        )
    corpus = corpus or build_corpus(CorpusConfig())
    sql_frac, nl_frac, nl2code_frac, code_frac = FAMILY_MIXES[family]
    model = NgramLanguageModel(order=order)
    sql_slice = _take(corpus.sql, sql_frac)
    nl2code_slice = _take(corpus.nl2code, nl2code_frac)
    model.fit(sql_slice)
    model.fit(_take(corpus.nl, nl_frac))
    model.fit(nl2code_slice)
    model.fit(_take(corpus.base_code, code_frac))
    return PretrainedLM(
        name=name or f"{family}-base",
        model=model,
        family=family,
        history=[f"base mix {FAMILY_MIXES[family]}"],
        seen_sql=[*sql_slice, *_sql_bodies(nl2code_slice)],
    )


class IncrementalPretrainer:
    """Continues pre-training a base LM on the SQL-centric corpus.

    Epoch recipe per the paper: SQL-related x2, NL-related x1,
    NL-to-code x1.
    """

    def __init__(
        self,
        corpus: PretrainCorpus | None = None,
        sql_epochs: int = 2,
        nl_epochs: int = 1,
        nl2code_epochs: int = 1,
    ):
        if min(sql_epochs, nl_epochs, nl2code_epochs) < 0:
            raise TrainingError("epoch counts must be non-negative")
        self.corpus = corpus or build_corpus(CorpusConfig())
        self.sql_epochs = sql_epochs
        self.nl_epochs = nl_epochs
        self.nl2code_epochs = nl2code_epochs

    def run(self, base: PretrainedLM, name: str | None = None) -> PretrainedLM:
        """Incrementally pre-train ``base`` in place and re-label it."""
        if self.sql_epochs:
            base.model.fit(self.corpus.sql, weight=self.sql_epochs)
        if self.nl_epochs:
            base.model.fit(self.corpus.nl, weight=self.nl_epochs)
        if self.nl2code_epochs:
            base.model.fit(self.corpus.nl2code, weight=self.nl2code_epochs)
        base.history.append(
            f"incremental sql x{self.sql_epochs}, nl x{self.nl_epochs}, "
            f"nl2code x{self.nl2code_epochs}"
        )
        seen_sql = list(base.seen_sql)
        if self.sql_epochs:
            seen_sql.extend(self.corpus.sql)
        if self.nl2code_epochs:
            seen_sql.extend(_sql_bodies(self.corpus.nl2code))
        return PretrainedLM(
            name=name or base.name.replace("-base", "") + "-codes",
            model=base.model,
            family=base.family,
            incremental=True,
            history=list(base.history),
            seen_sql=seen_sql,
        )
