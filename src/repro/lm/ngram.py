"""Interpolated n-gram language model.

This is the fast sequence prior the text-to-SQL parser uses to rank
candidate queries.  The model interpolates all orders up to ``order``
with Jelinek–Mercer smoothing, so unseen contexts back off gracefully
to shorter histories and ultimately to a uniform floor.

Why an n-gram LM here: candidate ranking needs tens of scores per
question at interactive speed; the transformer in
:mod:`repro.lm.transformer` demonstrates the pre-training recipe itself
but would be orders of magnitude slower as an inner-loop scorer on CPU.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Iterable, Sequence

from repro.errors import TrainingError
from repro.lm.vocab import BOS, EOS, CodeTokenizer


class NgramLanguageModel:
    """Jelinek–Mercer interpolated n-gram LM over code tokens."""

    def __init__(
        self,
        order: int = 3,
        interpolation: float = 0.4,
        tokenizer: CodeTokenizer | None = None,
    ):
        if order < 1:
            raise ValueError(f"order must be at least 1, got {order}")
        if not 0.0 < interpolation < 1.0:
            raise ValueError(f"interpolation must lie in (0, 1), got {interpolation}")
        self.order = order
        self.interpolation = interpolation
        self.tokenizer = tokenizer or CodeTokenizer()
        # counts[k] maps a length-k context tuple to a Counter of next tokens.
        self._counts: list[dict[tuple[str, ...], Counter[str]]] = [
            defaultdict(Counter) for _ in range(order)
        ]
        self._vocab: set[str] = set()
        self._trained_tokens = 0

    # -- training -----------------------------------------------------------

    def fit(self, texts: Iterable[str], weight: int = 1) -> int:
        """Accumulate counts from ``texts``; returns tokens consumed.

        ``weight`` repeats the counts, which is how multiple epochs over
        a corpus slice are expressed (the paper trains two epochs on the
        SQL slice, one on the others).
        """
        if weight < 1:
            raise TrainingError(f"weight must be at least 1, got {weight}")
        consumed = 0
        for text in texts:
            tokens = [BOS, *self.tokenizer.tokenize(text), EOS]
            consumed += len(tokens)
            self._vocab.update(tokens)
            for position in range(1, len(tokens)):
                token = tokens[position]
                for k in range(self.order):
                    if position - k < 0:
                        break
                    context = tuple(tokens[position - k:position])
                    self._counts[k][context][token] += weight
        self._trained_tokens += consumed * weight
        return consumed

    @property
    def trained_tokens(self) -> int:
        return self._trained_tokens

    @property
    def vocab_size(self) -> int:
        return max(1, len(self._vocab))

    # -- scoring ------------------------------------------------------------

    def _interpolated_prob(self, context: Sequence[str], token: str) -> float:
        """P(token | context) interpolating orders 0..order-1."""
        prob = 1.0 / (self.vocab_size + 1)  # uniform floor (+1 for OOV mass)
        for k in range(self.order):
            if k > len(context):
                break
            ctx = tuple(context[len(context) - k:]) if k else ()
            counter = self._counts[k].get(ctx)
            if counter is None:
                continue
            total = sum(counter.values())
            if total == 0:
                continue
            mle = counter.get(token, 0) / total
            prob = (1.0 - self.interpolation) * prob + self.interpolation * mle
        return prob

    def log_prob(self, text: str) -> float:
        """Total natural-log probability of ``text``."""
        tokens = [BOS, *self.tokenizer.tokenize(text), EOS]
        total = 0.0
        for position in range(1, len(tokens)):
            context = tokens[max(0, position - self.order + 1):position]
            total += math.log(self._interpolated_prob(context, tokens[position]))
        return total

    def mean_log_prob(self, text: str) -> float:
        """Per-token log probability (length-normalized score)."""
        tokens = self.tokenizer.tokenize(text)
        if not tokens:
            return 0.0
        return self.log_prob(text) / (len(tokens) + 1)

    def perplexity(self, texts: Iterable[str]) -> float:
        """Corpus perplexity under this model."""
        total_log = 0.0
        total_tokens = 0
        for text in texts:
            tokens = self.tokenizer.tokenize(text)
            total_log += self.log_prob(text)
            total_tokens += len(tokens) + 1
        if total_tokens == 0:
            raise TrainingError("cannot compute perplexity on an empty corpus")
        return math.exp(-total_log / total_tokens)
