"""A decoder-only transformer language model in pure numpy.

Architecture mirrors Table 1 of the paper at laptop scale:

- decoder-only, pre-LayerNorm residual blocks;
- **multi-query attention** — many query heads share a single key/value
  head, exactly the StarCoder/CodeS attention variant;
- learned absolute position embeddings;
- GELU feed-forward with a 4x hidden expansion;
- trained with AdamW (β₁=0.9, β₂=0.95, ε=1e−8, weight decay 0.1),
  cosine decay to a tenth of the peak rate, gradient clipping at 1.0.

Forward *and* backward passes are hand-written and verified against
numerical gradients in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError
from repro.lm.vocab import Vocabulary
from repro.nn.optimizer import AdamW
from repro.nn.schedule import CosineSchedule

_GELU_C = math.sqrt(2.0 / math.pi)


def _gelu(x: np.ndarray) -> np.ndarray:
    inner = _GELU_C * (x + 0.044715 * x ** 3)
    return 0.5 * x * (1.0 + np.tanh(inner))


def _gelu_grad(x: np.ndarray) -> np.ndarray:
    inner = _GELU_C * (x + 0.044715 * x ** 3)
    tanh_inner = np.tanh(inner)
    sech2 = 1.0 - tanh_inner ** 2
    return 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * _GELU_C * (
        1.0 + 3 * 0.044715 * x ** 2
    )


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


@dataclass(frozen=True)
class TransformerConfig:
    """Hyper-parameters of one model tier."""

    vocab_size: int
    dim: int = 64
    n_heads: int = 4
    n_layers: int = 2
    max_len: int = 128
    ff_mult: int = 4

    def __post_init__(self) -> None:
        if self.dim % self.n_heads != 0:
            raise ValueError(
                f"dim {self.dim} not divisible by n_heads {self.n_heads}"
            )
        if min(self.vocab_size, self.dim, self.n_heads, self.n_layers, self.max_len) <= 0:
            raise ValueError("all config dimensions must be positive")

    @property
    def head_dim(self) -> int:
        return self.dim // self.n_heads

    @property
    def parameter_count(self) -> int:
        d, hd, v = self.dim, self.head_dim, self.vocab_size
        per_layer = (
            2 * d            # ln1 gain/bias
            + d * d          # Wq
            + d * hd * 2     # Wk, Wv (single KV head: multi-query)
            + d * d          # Wo
            + 2 * d          # ln2
            + d * d * self.ff_mult * 2  # W1, W2
            + d * self.ff_mult + d      # feed-forward biases
        )
        return (
            v * d + self.max_len * d + self.n_layers * per_layer + 2 * d + d * v
        )


class _LayerParams:
    """Parameters of one transformer block."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator):
        d, hd, ff = config.dim, config.head_dim, config.dim * config.ff_mult
        scale = 0.02
        self.ln1_g = np.ones(d)
        self.ln1_b = np.zeros(d)
        self.wq = rng.normal(0, scale, (d, d))
        self.wk = rng.normal(0, scale, (d, hd))
        self.wv = rng.normal(0, scale, (d, hd))
        self.wo = rng.normal(0, scale, (d, d))
        self.ln2_g = np.ones(d)
        self.ln2_b = np.zeros(d)
        self.w1 = rng.normal(0, scale, (d, ff))
        self.b1 = np.zeros(ff)
        self.w2 = rng.normal(0, scale, (ff, d))
        self.b2 = np.zeros(d)

    def params(self) -> list[np.ndarray]:
        return [
            self.ln1_g, self.ln1_b, self.wq, self.wk, self.wv, self.wo,
            self.ln2_g, self.ln2_b, self.w1, self.b1, self.w2, self.b2,
        ]


def _layer_norm(x: np.ndarray, gain: np.ndarray, bias: np.ndarray):
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + 1e-5)
    normalized = (x - mean) * inv_std
    return normalized * gain + bias, (normalized, inv_std)


def _layer_norm_backward(dout, cache, gain):
    normalized, inv_std = cache
    dgain = (dout * normalized).sum(axis=tuple(range(dout.ndim - 1)))
    dbias = dout.sum(axis=tuple(range(dout.ndim - 1)))
    dnorm = dout * gain
    dx = (
        dnorm
        - dnorm.mean(axis=-1, keepdims=True)
        - normalized * (dnorm * normalized).mean(axis=-1, keepdims=True)
    ) * inv_std
    return dx, dgain, dbias


class TransformerLM:
    """Trainable decoder-only LM over a :class:`Vocabulary`."""

    def __init__(self, config: TransformerConfig, seed: int = 0):
        self.config = config
        rng = np.random.default_rng(seed)
        d = config.dim
        self.tok_emb = rng.normal(0, 0.02, (config.vocab_size, d))
        self.pos_emb = rng.normal(0, 0.02, (config.max_len, d))
        self.layers = [_LayerParams(config, rng) for _ in range(config.n_layers)]
        self.lnf_g = np.ones(d)
        self.lnf_b = np.zeros(d)
        self.w_out = rng.normal(0, 0.02, (d, config.vocab_size))

    def params(self) -> list[np.ndarray]:
        flat = [self.tok_emb, self.pos_emb]
        for layer in self.layers:
            flat.extend(layer.params())
        flat.extend([self.lnf_g, self.lnf_b, self.w_out])
        return flat

    # -- forward ------------------------------------------------------------

    def _forward(self, token_ids: np.ndarray):
        """Forward pass returning logits and caches for backward."""
        batch, length = token_ids.shape
        if length > self.config.max_len:
            raise TrainingError(
                f"sequence length {length} exceeds max_len {self.config.max_len}"
            )
        h = self.config.n_heads
        hd = self.config.head_dim
        scale = 1.0 / math.sqrt(hd)
        mask = np.triu(np.full((length, length), -1e9), k=1)

        x = self.tok_emb[token_ids] + self.pos_emb[:length]
        caches = []
        for layer in self.layers:
            a, ln1_cache = _layer_norm(x, layer.ln1_g, layer.ln1_b)
            q = (a @ layer.wq).reshape(batch, length, h, hd)
            k = a @ layer.wk  # (B, T, hd) — single shared KV head
            v = a @ layer.wv
            scores = np.einsum("bthd,bsd->bhts", q, k) * scale + mask
            attn = _softmax(scores)
            context = np.einsum("bhts,bsd->bthd", attn, v)
            concat = context.reshape(batch, length, h * hd)
            attn_out = concat @ layer.wo
            x_mid = x + attn_out

            b_norm, ln2_cache = _layer_norm(x_mid, layer.ln2_g, layer.ln2_b)
            ff_pre = b_norm @ layer.w1 + layer.b1
            ff_act = _gelu(ff_pre)
            ff_out = ff_act @ layer.w2 + layer.b2
            x_next = x_mid + ff_out
            caches.append(
                (a, ln1_cache, q, k, v, attn, concat, x, x_mid, b_norm,
                 ln2_cache, ff_pre, ff_act)
            )
            x = x_next
        y, lnf_cache = _layer_norm(x, self.lnf_g, self.lnf_b)
        logits = y @ self.w_out
        return logits, (token_ids, x, y, lnf_cache, caches, mask, scale)

    def logits(self, token_ids: np.ndarray) -> np.ndarray:
        """Next-token logits, shape ``(batch, length, vocab)``."""
        logits, _ = self._forward(np.atleast_2d(np.asarray(token_ids)))
        return logits

    # -- loss / backward ----------------------------------------------------

    def loss_and_grads(self, token_ids: np.ndarray, pad_id: int):
        """Mean next-token cross-entropy and parameter gradients.

        ``token_ids`` has shape (batch, length); position *t* predicts
        token *t+1*.  Padding targets are masked out of the loss.
        """
        token_ids = np.atleast_2d(np.asarray(token_ids))
        logits, cache = self._forward(token_ids)
        inputs, x_final, y, lnf_cache, layer_caches, mask, scale = cache
        batch, length, vocab = logits.shape

        targets = token_ids[:, 1:]
        logit_slice = logits[:, :-1, :]
        target_mask = (targets != pad_id).astype(np.float64)
        n_predictions = max(1.0, float(target_mask.sum()))

        probs = _softmax(logit_slice)
        batch_idx, pos_idx = np.meshgrid(
            np.arange(batch), np.arange(length - 1), indexing="ij"
        )
        picked = probs[batch_idx, pos_idx, targets]
        loss = float(
            -(np.log(picked + 1e-12) * target_mask).sum() / n_predictions
        )

        dlogits = np.zeros_like(logits)
        dslice = probs.copy()
        dslice[batch_idx, pos_idx, targets] -= 1.0
        dslice *= target_mask[:, :, None] / n_predictions
        dlogits[:, :-1, :] = dslice

        # Output head and final layer norm.
        grads: dict[int, np.ndarray] = {}
        dw_out = y.reshape(-1, y.shape[-1]).T @ dlogits.reshape(-1, vocab)
        dy = dlogits @ self.w_out.T
        dx, dlnf_g, dlnf_b = _layer_norm_backward(dy, lnf_cache, self.lnf_g)

        layer_grads: list[list[np.ndarray]] = []
        h, hd = self.config.n_heads, self.config.head_dim
        for layer, layer_cache in zip(reversed(self.layers), reversed(layer_caches)):
            (a, ln1_cache, q, k, v, attn, concat, x_in, x_mid, b_norm,
             ln2_cache, ff_pre, ff_act) = layer_cache
            # Feed-forward branch.
            dff_out = dx
            db2 = dff_out.sum(axis=(0, 1))
            dw2 = ff_act.reshape(-1, ff_act.shape[-1]).T @ dff_out.reshape(
                -1, dff_out.shape[-1]
            )
            dff_act = dff_out @ layer.w2.T
            dff_pre = dff_act * _gelu_grad(ff_pre)
            db1 = dff_pre.sum(axis=(0, 1))
            dw1 = b_norm.reshape(-1, b_norm.shape[-1]).T @ dff_pre.reshape(
                -1, dff_pre.shape[-1]
            )
            db_norm = dff_pre @ layer.w1.T
            dx_mid_ff, dln2_g, dln2_b = _layer_norm_backward(
                db_norm, ln2_cache, layer.ln2_g
            )
            dx_mid = dx + dx_mid_ff

            # Attention branch.
            dattn_out = dx_mid
            dwo = concat.reshape(-1, concat.shape[-1]).T @ dattn_out.reshape(
                -1, dattn_out.shape[-1]
            )
            dconcat = dattn_out @ layer.wo.T
            dcontext = dconcat.reshape(*concat.shape[:2], h, hd)
            dattn = np.einsum("bthd,bsd->bhts", dcontext, v)
            dv = np.einsum("bhts,bthd->bsd", attn, dcontext)
            dscores = attn * (dattn - (dattn * attn).sum(axis=-1, keepdims=True))
            dq = np.einsum("bhts,bsd->bthd", dscores, k) * scale
            dk = np.einsum("bhts,bthd->bsd", dscores, q) * scale

            da = (
                dq.reshape(*q.shape[:2], h * hd) @ layer.wq.T
                + dk @ layer.wk.T
                + dv @ layer.wv.T
            )
            dwq = a.reshape(-1, a.shape[-1]).T @ dq.reshape(-1, h * hd)
            dwk = a.reshape(-1, a.shape[-1]).T @ dk.reshape(-1, hd)
            dwv = a.reshape(-1, a.shape[-1]).T @ dv.reshape(-1, hd)
            dx_in_ln, dln1_g, dln1_b = _layer_norm_backward(
                da, ln1_cache, layer.ln1_g
            )
            dx = dx_mid + dx_in_ln
            layer_grads.append(
                [dln1_g, dln1_b, dwq, dwk, dwv, dwo,
                 dln2_g, dln2_b, dw1, db1, dw2, db2]
            )
        layer_grads.reverse()

        dtok = np.zeros_like(self.tok_emb)
        np.add.at(dtok, inputs, dx)
        dpos = np.zeros_like(self.pos_emb)
        dpos[:length] = dx.sum(axis=0)

        flat = [dtok, dpos]
        for grads_of_layer in layer_grads:
            flat.extend(grads_of_layer)
        flat.extend([dlnf_g, dlnf_b, dw_out])
        return loss, flat

    # -- training -----------------------------------------------------------

    def fit(
        self,
        sequences: list[list[int]],
        vocab: Vocabulary,
        epochs: int = 3,
        batch_size: int = 8,
        lr: float = 5e-3,
        seed: int = 0,
        warmup_fraction: float = 0.0,
    ) -> list[float]:
        """Train on encoded sequences; returns per-epoch mean loss.

        Sequences longer than ``max_len`` are truncated; shorter ones
        are padded (pad targets are masked from the loss).
        """
        if not sequences:
            raise TrainingError("cannot train on an empty corpus")
        clipped = [seq[: self.config.max_len] for seq in sequences]
        steps_per_epoch = math.ceil(len(clipped) / batch_size)
        schedule = CosineSchedule(
            peak_lr=lr,
            total_steps=max(1, steps_per_epoch * epochs),
            warmup_fraction=warmup_fraction,
        )
        optimizer = AdamW(self.params(), lr=lr, weight_decay=0.1, clip_norm=1.0)
        rng = np.random.default_rng(seed)
        order = np.arange(len(clipped))
        history: list[float] = []
        step = 0
        for _ in range(epochs):
            rng.shuffle(order)
            losses: list[float] = []
            for start in range(0, len(order), batch_size):
                batch_ids = [clipped[i] for i in order[start:start + batch_size]]
                width = max(len(seq) for seq in batch_ids)
                batch = np.full((len(batch_ids), width), vocab.pad_id, dtype=np.int64)
                for row, seq in enumerate(batch_ids):
                    batch[row, : len(seq)] = seq
                loss, grads = self.loss_and_grads(batch, pad_id=vocab.pad_id)
                optimizer.step(grads, lr=schedule.lr_at(step))
                losses.append(loss)
                step += 1
            history.append(float(np.mean(losses)))
        return history

    def perplexity(self, sequences: list[list[int]], vocab: Vocabulary) -> float:
        """Perplexity of encoded sequences under the current parameters."""
        if not sequences:
            raise TrainingError("cannot compute perplexity on an empty corpus")
        total_log = 0.0
        total_count = 0
        for seq in sequences:
            seq = seq[: self.config.max_len]
            if len(seq) < 2:
                continue
            ids = np.asarray([seq])
            logits = self.logits(ids)[0, :-1, :]
            probs = _softmax(logits)
            targets = np.asarray(seq[1:])
            picked = probs[np.arange(len(targets)), targets]
            keep = targets != vocab.pad_id
            total_log += float(np.log(picked[keep] + 1e-12).sum())
            total_count += int(keep.sum())
        if total_count == 0:
            raise TrainingError("no scorable tokens in the corpus")
        return math.exp(-total_log / total_count)

    def generate(
        self, prefix: list[int], vocab: Vocabulary, max_new_tokens: int = 20
    ) -> list[int]:
        """Greedy continuation of ``prefix`` until EOS or the budget."""
        ids = list(prefix)
        for _ in range(max_new_tokens):
            window = ids[-self.config.max_len:]
            logits = self.logits(np.asarray([window]))[0, -1]
            next_id = int(np.argmax(logits))
            ids.append(next_id)
            if next_id == vocab.eos_id:
                break
        return ids
