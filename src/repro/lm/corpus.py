"""Synthetic pre-training corpus generators (paper §5.1).

Three slices mirror the curated 21.5 GB corpus:

- **SQL-related** — standalone SQL queries over randomly drawn schemas
  (the StarCoder SQL segment);
- **NL-related** — instruction-following dialog turns
  (alpaca-cleaned / unnatural-instructions / UltraChat stand-ins);
- **NL-to-code** — natural-language/code pairs, including
  NL-SQL-458K-style (question, SQL) pairs.

A fourth generator produces generic (non-SQL) code for the *base* mix
that StarCoder-style models are pre-trained on before the incremental
phase.  Everything is seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.db.values import CATEGORIES, CITIES, WORDS

_AGGS = ["COUNT", "SUM", "AVG", "MIN", "MAX"]
_OPS = ["=", ">", "<", ">=", "<="]

_INSTRUCTION_TEMPLATES = [
    "Explain the difference between {a} and {b} in one paragraph.",
    "Summarize the following passage about {a}.",
    "Write a short note describing how {a} relates to {b}.",
    "List three advantages of using {a} for {b}.",
    "Rewrite this sentence to be more formal: the {a} was very {b}.",
    "Answer the question: why does {a} affect {b}?",
    "Translate the phrase '{a} {b}' into a formal register.",
    "Provide step by step instructions for organizing a {a}.",
]

_PYTHON_TEMPLATES = [
    "def {a}_{b}(items):\n    return [x for x in items if x.{a}]",
    "for {a} in {b}:\n    total += {a}.value",
    "class {a}:\n    def __init__(self, {b}):\n        self.{b} = {b}",
    "with open('{a}.txt') as f:\n    {b} = f.read()",
    "import {a}\nresult = {a}.process({b})",
    "if {a} > {b}:\n    raise ValueError('{a} out of range')",
]

_NL2CODE_QUESTIONS = [
    "how do I filter {a} rows by {b}",
    "count the number of {a} grouped by {b}",
    "find the {a} with the largest {b}",
    "select all {a} where {b} is missing",
    "sort the {a} by {b} in descending order",
    "what is the average {b} per {a}",
]


def _identifier(rng: random.Random) -> str:
    return rng.choice(WORDS)


def random_sql(rng: random.Random) -> str:
    """One random SQL query over a random throwaway schema.

    Queries are built compositionally (projection x predicates x
    grouping x ordering x joins x subqueries), so the corpus contains a
    long, frequency-skewed tail of SQL *skeletons*: simple selects are
    common, subqueries and compound predicates are rare.  How much of
    that tail a model absorbs is exactly what differs between a
    SQL-heavy and a code-mixed pre-training run.
    """
    table = _identifier(rng)
    col_a = f"{_identifier(rng)}_{rng.choice(['id', 'name', 'code', 'date', 'amount'])}"
    col_b = f"{_identifier(rng)}_{rng.choice(['type', 'year', 'status', 'count'])}"
    col_c = f"{_identifier(rng)}_{rng.choice(['score', 'total', 'label'])}"

    # Projection.
    roll = rng.random()
    if roll < 0.15:
        select = "COUNT(*)"
    elif roll < 0.30:
        agg = rng.choice(_AGGS)
        inner = f"DISTINCT {col_a}" if rng.random() < 0.2 else col_a
        select = f"{agg}({inner})"
    elif roll < 0.40:
        select = f"{col_a}, {col_b}"
    else:
        prefix = "DISTINCT " if rng.random() < 0.15 else ""
        select = f"{prefix}{col_a}"

    sql = f"SELECT {select} FROM {table}"

    # Optional join.
    joined = rng.random() < 0.22
    if joined:
        other = _identifier(rng) + "_rel"
        if "(" not in select and "DISTINCT" not in select:
            qualified = select.replace(", ", f", {table}.")
            sql = (
                f"SELECT {table}.{qualified} FROM {table} "
                f"JOIN {other} ON {table}.{col_b} = {other}.{col_b}"
            )
        else:
            sql += f" JOIN {other} ON {table}.{col_b} = {other}.{col_b}"

    # Predicates: 0-2, drawn from several kinds.
    predicates = []
    n_predicates = rng.choices([0, 1, 2], weights=[35, 50, 15])[0]
    for _ in range(n_predicates):
        kind = rng.random()
        if kind < 0.35:
            predicates.append(f"{col_b} {rng.choice(_OPS)} {rng.randint(0, 500)}")
        elif kind < 0.60:
            predicates.append(f"{col_c} = '{rng.choice(CATEGORIES)}'")
        elif kind < 0.72:
            predicates.append(
                f"{col_b} BETWEEN {rng.randint(0, 100)} AND {rng.randint(101, 500)}"
            )
        elif kind < 0.82:
            predicates.append(
                f"{col_c} IN ('{rng.choice(CITIES)}', '{rng.choice(CITIES)}')"
            )
        elif kind < 0.90:
            predicates.append(f"{col_a} LIKE '{rng.choice(CATEGORIES)[:1].upper()}%'")
        elif kind < 0.96:
            predicates.append(f"{col_a} IS NOT NULL")
        else:
            predicates.append(
                f"{col_b} > (SELECT AVG({col_b}) FROM {table})"
            )
    if predicates:
        joiner = " OR " if (len(predicates) == 2 and rng.random() < 0.3) else " AND "
        sql += " WHERE " + joiner.join(predicates)

    # Grouping / having.
    if "COUNT(*)" in select and rng.random() < 0.5:
        sql = sql.replace("SELECT COUNT(*)", f"SELECT {col_c}, COUNT(*)", 1)
        sql += f" GROUP BY {col_c}"
        if rng.random() < 0.4:
            sql += f" HAVING COUNT(*) > {rng.randint(1, 5)}"
    elif "(" not in select and rng.random() < 0.08:
        sql += f" GROUP BY {col_a}"

    # Ordering / limit.
    if rng.random() < 0.3:
        direction = rng.choice(["ASC", "DESC"])
        sql += f" ORDER BY {col_b} {direction}"
        if rng.random() < 0.6:
            sql += f" LIMIT {rng.randint(1, 10)}"
    return sql


def sql_corpus(n: int, seed: int = 0) -> list[str]:
    """The SQL-related slice: standalone SQL queries."""
    rng = random.Random(f"sql:{seed}")
    return [random_sql(rng) for _ in range(n)]


def nl_corpus(n: int, seed: int = 0) -> list[str]:
    """The NL-related slice: instruction-style dialog turns."""
    rng = random.Random(f"nl:{seed}")
    out = []
    for _ in range(n):
        template = rng.choice(_INSTRUCTION_TEMPLATES)
        out.append(template.format(a=rng.choice(WORDS), b=rng.choice(WORDS)))
    return out


def code_corpus(n: int, seed: int = 0) -> list[str]:
    """Generic non-SQL code (the bulk of a StarCoder-style base mix)."""
    rng = random.Random(f"code:{seed}")
    out = []
    for _ in range(n):
        template = rng.choice(_PYTHON_TEMPLATES)
        out.append(template.format(a=rng.choice(WORDS), b=rng.choice(WORDS)))
    return out


def nl2code_corpus(n: int, seed: int = 0) -> list[str]:
    """The NL-to-code slice, including NL-SQL pair documents."""
    rng = random.Random(f"nl2code:{seed}")
    out = []
    for _ in range(n):
        question = rng.choice(_NL2CODE_QUESTIONS).format(
            a=rng.choice(WORDS), b=rng.choice(WORDS)
        )
        if rng.random() < 0.6:
            body = random_sql(rng)  # NL-SQL-458K style pair
        else:
            body = rng.choice(_PYTHON_TEMPLATES).format(
                a=rng.choice(WORDS), b=rng.choice(WORDS)
            )
        out.append(f"-- question: {question}\n{body}")
    return out


@dataclass(frozen=True)
class CorpusConfig:
    """Sizes of the corpus slices (documents, not GB).

    The default ratio 11 : 4.5 : 6 matches the paper's SQL / NL /
    NL-to-code byte proportions.
    """

    sql_docs: int = 1100
    nl_docs: int = 450
    nl2code_docs: int = 600
    base_code_docs: int = 2000
    seed: int = 0


@dataclass(frozen=True)
class PretrainCorpus:
    """Materialized corpus slices."""

    sql: list[str] = field(default_factory=list)
    nl: list[str] = field(default_factory=list)
    nl2code: list[str] = field(default_factory=list)
    base_code: list[str] = field(default_factory=list)

    def all_documents(self) -> list[str]:
        return [*self.sql, *self.nl, *self.nl2code, *self.base_code]


def build_corpus(config: CorpusConfig | None = None) -> PretrainCorpus:
    """Generate all corpus slices for ``config``."""
    config = config or CorpusConfig()
    return PretrainCorpus(
        sql=sql_corpus(config.sql_docs, config.seed),
        nl=nl_corpus(config.nl_docs, config.seed),
        nl2code=nl2code_corpus(config.nl2code_docs, config.seed),
        base_code=code_corpus(config.base_code_docs, config.seed),
    )
