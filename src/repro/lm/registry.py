"""Managed lifecycle for pre-trained LMs and their corpora.

Pre-training is the expensive, deterministic step every parser shares;
earlier revisions memoized it in unbounded module-level dict globals
inside ``core/parser.py``.  :class:`LMRegistry` makes that lifecycle
explicit: a registry instance owns its corpora and pre-trained LMs,
``clear()`` releases them (tests, batch workers recycling memory), and
independent registries isolate parallel evaluations from each other.
The process-wide default registry keeps the old sharing behaviour for
ordinary use.

A serving process that cycles through many tiers or corpus seeds would
otherwise grow the registry without limit, so the internal maps can be
bounded with LRU eviction (``capacity`` counts LMs, corpora, and
routers separately — each map holds at most ``capacity`` entries).
Provider routers (:mod:`repro.lm.providers`) are registry citizens
too: ``router_for`` caches one live router per (LM recipe, router
config, clock) so parsers sharing a topology share breaker state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.config import ModelConfig
from repro.lm.corpus import CorpusConfig, PretrainCorpus, build_corpus
from repro.lm.pretrain import IncrementalPretrainer, PretrainedLM, pretrain_base_lm

if TYPE_CHECKING:
    from repro.lm.providers.config import RouterConfig
    from repro.lm.providers.router import ProviderRouter
    from repro.reliability.clock import Clock


class LMRegistry:
    """Cache of pre-training artifacts keyed by recipe, with a lifecycle.

    ``capacity`` bounds each internal map (LMs and corpora) with LRU
    eviction — reads refresh recency, and evictions are counted in
    ``lm_evictions`` / ``corpus_evictions``.  ``None`` means unbounded.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"registry capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lms: dict[tuple[str, bool, int], PretrainedLM] = {}
        self._corpora: dict[int, PretrainCorpus] = {}
        self._routers: dict[tuple, "ProviderRouter"] = {}
        self.lm_evictions = 0
        self.corpus_evictions = 0
        self.router_evictions = 0

    def _touch(self, store: dict, key: Any) -> Any:
        # LRU bookkeeping: re-insertion moves the key to the end.
        value = store[key] = store.pop(key)
        return value

    def _bound(self, store: dict) -> int:
        evicted = 0
        if self.capacity is not None:
            while len(store) > self.capacity:
                store.pop(next(iter(store)))
                evicted += 1
        return evicted

    def corpus(self, seed: int = 0) -> PretrainCorpus:
        """The (cached) pre-training corpus for ``seed``."""
        if seed in self._corpora:
            return self._touch(self._corpora, seed)
        corpus = self._corpora[seed] = build_corpus(CorpusConfig(seed=seed))
        self.corpus_evictions += self._bound(self._corpora)
        return corpus

    def lm_for(self, config: ModelConfig) -> PretrainedLM:
        """The (cached) pre-trained LM for a model tier."""
        key = (config.family, config.incremental, config.ngram_order)
        if key in self._lms:
            return self._touch(self._lms, key)
        corpus = self.corpus()
        base = pretrain_base_lm(
            config.family, order=config.ngram_order, corpus=corpus
        )
        if config.incremental:
            base = IncrementalPretrainer(corpus=corpus).run(base)
        self._lms[key] = base
        self.lm_evictions += self._bound(self._lms)
        return base

    def router_for(
        self,
        config: ModelConfig,
        router_config: "RouterConfig | None" = None,
        clock: "Clock | None" = None,
    ) -> "ProviderRouter":
        """The (cached) provider router fronting a model tier's LM.

        Routers are registry citizens like LMs: keyed by the LM recipe
        plus the (hashable, frozen) :class:`RouterConfig` plus the
        clock identity — a router carries live breaker state bound to
        one clock, so routers on different clocks must not be shared.
        Subject to the same LRU ``capacity`` bound as LMs and corpora,
        with evictions counted in ``router_evictions``.
        """
        from repro.lm.providers.config import RouterConfig, build_router

        router_config = router_config if router_config is not None else RouterConfig()
        key = (
            (config.family, config.incremental, config.ngram_order),
            router_config,
            id(clock) if clock is not None else None,
        )
        if key in self._routers:
            return self._touch(self._routers, key)
        router = self._routers[key] = build_router(
            router_config, self.lm_for(config), clock=clock
        )
        self.router_evictions += self._bound(self._routers)
        return router

    def clear(self) -> None:
        """Drop every cached corpus, LM, and router (rebuilt on next use)."""
        self._lms.clear()
        self._corpora.clear()
        self._routers.clear()
        self.lm_evictions = 0
        self.corpus_evictions = 0
        self.router_evictions = 0

    def __len__(self) -> int:
        return len(self._lms) + len(self._corpora) + len(self._routers)

    @property
    def stats(self) -> dict[str, int | None]:
        return {
            "lms": len(self._lms),
            "corpora": len(self._corpora),
            "routers": len(self._routers),
            "lm_evictions": self.lm_evictions,
            "corpus_evictions": self.corpus_evictions,
            "router_evictions": self.router_evictions,
            "capacity": self.capacity,
        }


#: Process-wide default: parsers share pre-training work unless handed
#: an isolated registry.
DEFAULT_LM_REGISTRY = LMRegistry()
