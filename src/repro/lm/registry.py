"""Managed lifecycle for pre-trained LMs and their corpora.

Pre-training is the expensive, deterministic step every parser shares;
earlier revisions memoized it in unbounded module-level dict globals
inside ``core/parser.py``.  :class:`LMRegistry` makes that lifecycle
explicit: a registry instance owns its corpora and pre-trained LMs,
``clear()`` releases them (tests, batch workers recycling memory), and
independent registries isolate parallel evaluations from each other.
The process-wide default registry keeps the old sharing behaviour for
ordinary use.
"""

from __future__ import annotations

from repro.config import ModelConfig
from repro.lm.corpus import CorpusConfig, PretrainCorpus, build_corpus
from repro.lm.pretrain import IncrementalPretrainer, PretrainedLM, pretrain_base_lm


class LMRegistry:
    """Cache of pre-training artifacts keyed by recipe, with a lifecycle."""

    def __init__(self) -> None:
        self._lms: dict[tuple[str, bool, int], PretrainedLM] = {}
        self._corpora: dict[int, PretrainCorpus] = {}

    def corpus(self, seed: int = 0) -> PretrainCorpus:
        """The (cached) pre-training corpus for ``seed``."""
        if seed not in self._corpora:
            self._corpora[seed] = build_corpus(CorpusConfig(seed=seed))
        return self._corpora[seed]

    def lm_for(self, config: ModelConfig) -> PretrainedLM:
        """The (cached) pre-trained LM for a model tier."""
        key = (config.family, config.incremental, config.ngram_order)
        if key not in self._lms:
            corpus = self.corpus()
            base = pretrain_base_lm(
                config.family, order=config.ngram_order, corpus=corpus
            )
            if config.incremental:
                base = IncrementalPretrainer(corpus=corpus).run(base)
            self._lms[key] = base
        return self._lms[key]

    def clear(self) -> None:
        """Drop every cached corpus and LM (they rebuild on next use)."""
        self._lms.clear()
        self._corpora.clear()

    def __len__(self) -> int:
        return len(self._lms) + len(self._corpora)


#: Process-wide default: parsers share pre-training work unless handed
#: an isolated registry.
DEFAULT_LM_REGISTRY = LMRegistry()
