"""Code-aware tokenizer and capped vocabulary."""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable

from repro.errors import TrainingError

_TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"      # identifiers / keywords
    r"|\d+(?:\.\d+)?"               # numbers
    r"|'[^'\n]*'|\"[^\"\n]*\""      # string literals
    r"|[<>!=]=|\|\||<>"             # two-char operators
    r"|[^\sA-Za-z0-9_]"             # single punctuation
)

PAD, UNK, BOS, EOS = "<pad>", "<unk>", "<bos>", "<eos>"
SPECIAL_TOKENS = (PAD, UNK, BOS, EOS)


class CodeTokenizer:
    """Regex tokenizer shared by the n-gram LM and the transformer."""

    def tokenize(self, text: str) -> list[str]:
        """Lower-cased code tokens; string literals collapse to a slot.

        Collapsing literal contents keeps the vocabulary small and makes
        the LM score SQL *structure*, which is what candidate ranking
        needs.
        """
        tokens: list[str] = []
        for raw in _TOKEN_RE.findall(text):
            if raw.startswith(("'", '"')):
                tokens.append("<str>")
            elif raw[0].isdigit():
                tokens.append("<num>")
            else:
                tokens.append(raw.lower())
        return tokens


class Vocabulary:
    """A token <-> id mapping with reserved special tokens."""

    def __init__(self, tokens: list[str]):
        self._token_to_id: dict[str, int] = {}
        self._tokens: list[str] = []
        for token in (*SPECIAL_TOKENS, *tokens):
            if token not in self._token_to_id:
                self._token_to_id[token] = len(self._tokens)
                self._tokens.append(token)

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[BOS]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[EOS]

    def id_of(self, token: str) -> int:
        return self._token_to_id.get(token, self.unk_id)

    def token_of(self, token_id: int) -> str:
        if not 0 <= token_id < len(self._tokens):
            raise ValueError(f"token id {token_id} out of range")
        return self._tokens[token_id]

    def encode(self, tokens: list[str], add_markers: bool = True) -> list[int]:
        ids = [self.id_of(token) for token in tokens]
        if add_markers:
            return [self.bos_id, *ids, self.eos_id]
        return ids

    def decode(self, ids: list[int], skip_special: bool = True) -> list[str]:
        tokens = [self.token_of(i) for i in ids]
        if skip_special:
            tokens = [t for t in tokens if t not in SPECIAL_TOKENS]
        return tokens

    @classmethod
    def build(
        cls,
        texts: Iterable[str],
        tokenizer: CodeTokenizer | None = None,
        max_size: int = 4096,
        min_count: int = 1,
    ) -> "Vocabulary":
        """Most frequent tokens of ``texts``, capped at ``max_size``."""
        if max_size <= len(SPECIAL_TOKENS):
            raise TrainingError(
                f"max_size must exceed the {len(SPECIAL_TOKENS)} special tokens"
            )
        tokenizer = tokenizer or CodeTokenizer()
        counts: Counter[str] = Counter()
        seen_any = False
        for text in texts:
            seen_any = True
            counts.update(tokenizer.tokenize(text))
        if not seen_any:
            raise TrainingError("cannot build a vocabulary from no texts")
        budget = max_size - len(SPECIAL_TOKENS)
        frequent = [
            token
            for token, count in sorted(
                counts.items(), key=lambda item: (-item[1], item[0])
            )
            if count >= min_count
        ]
        return cls(frequent[:budget])
