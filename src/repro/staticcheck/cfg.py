"""Intraprocedural control-flow graphs over Python AST.

A :class:`CFG` is built per function body (or module top level) by
:func:`build_cfg`.  Blocks hold *elements*: simple statements appear
verbatim, compound statements (``if``/``while``/``for``/``with``/
``try``) appear once as their own header element while their suites
are decomposed into further blocks.  Edges carry a kind:

- ``"normal"`` — sequential flow, branch taken/skipped, loop back.
- ``"exception"`` — flow that only happens when a statement raises:
  from a protected block to the handler/finally entries of every
  enclosing ``try``, and from an explicit ``raise`` with no enclosing
  handler to the exit block.

``return``/``break``/``continue``/``raise`` terminate their block;
``finally`` suites are modelled precisely enough for the dataflow
rules: an abrupt jump out of a ``try``/``finally`` routes through the
``finally`` blocks before reaching its target, so a ``close()`` in a
``finally`` dominates every exit the way it does at runtime.  ``with``
bodies are inlined without exception edges — the context manager owns
cleanup, which is exactly why RES001 recommends it.

The graph is deterministic: block indices follow construction order
(source order), and successor/predecessor lists are kept sorted.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

NORMAL = "normal"
EXCEPTION = "exception"

#: statement types that terminate a basic block.
_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


@dataclass
class Block:
    """One basic block: a run of elements with shared control flow."""

    index: int
    elements: list[ast.AST] = field(default_factory=list)


@dataclass
class CFG:
    """Control-flow graph for one function body or module top level."""

    blocks: list[Block]
    entry: int
    exit: int
    #: block -> sorted (successor, kind) pairs.
    succs: dict[int, list[tuple[int, str]]]
    preds: dict[int, list[tuple[int, str]]]

    def successors(self, index: int, kinds: tuple[str, ...] = (NORMAL, EXCEPTION)):
        return [s for s, kind in self.succs.get(index, []) if kind in kinds]

    def predecessors(self, index: int, kinds: tuple[str, ...] = (NORMAL, EXCEPTION)):
        return [p for p, kind in self.preds.get(index, []) if kind in kinds]

    def reachable(self) -> set[int]:
        """Blocks reachable from the entry over every edge kind."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            block = stack.pop()
            for succ in self.successors(block):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen


@dataclass
class _LoopFrame:
    break_target: int
    continue_target: int
    #: finally-stack depth when the loop was entered: a ``break`` only
    #: routes through ``finally`` frames pushed *inside* the loop.
    finally_depth: int


@dataclass
class _FinallyFrame:
    entry: int
    #: abrupt jumps routed through this finally: (ultimate target,
    #: finally-stack depth at which routing stops).
    pending: list[tuple[int, int]] = field(default_factory=list)


class _Builder:
    def __init__(self):
        self.blocks: list[Block] = [Block(0)]
        self.edges: set[tuple[int, int, str]] = set()
        self.exit = self._new_block_index()
        self.current: int | None = 0
        #: stack of exception-target lists (innermost last); a block
        #: created inside a protected region gets exception edges to
        #: every enclosing frame's targets.
        self.exc_stack: list[list[int]] = []
        self.loops: list[_LoopFrame] = []
        self.finallies: list[_FinallyFrame] = []

    # -- block and edge plumbing -------------------------------------------

    def _new_block_index(self) -> int:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block.index

    def _new_block(self, protected: bool = True) -> int:
        """Fresh block, wired with exception edges to enclosing frames."""
        index = self._new_block_index()
        if protected:
            for frame in self.exc_stack:
                for target in frame:
                    self._edge(index, target, EXCEPTION)
        return index

    def _edge(self, src: int, dst: int, kind: str = NORMAL) -> None:
        self.edges.add((src, dst, kind))

    def _start_block(self, preds: list[int] | None = None) -> int:
        index = self._new_block()
        for pred in preds or []:
            self._edge(pred, index)
        self.current = index
        return index

    def _append(self, node: ast.AST) -> None:
        if self.current is None:
            # statements after a terminator: a fresh block with no
            # incoming edges — the unreachable-code signal DEAD001 reads.
            self.current = self._new_block(protected=False)
        self.blocks[self.current].elements.append(node)

    # -- abrupt jumps through finally frames -------------------------------

    def _jump(self, target: int, stop_depth: int = 0) -> None:
        """Edge from the current block to ``target``, via finallies.

        ``stop_depth`` is the finally-stack depth beyond which frames
        do not intervene (a ``break`` does not run finallies entered
        before its loop).
        """
        if self.current is None:
            return
        frames = self.finallies[stop_depth:]
        if frames:
            frame = frames[-1]
            self._edge(self.current, frame.entry)
            frame.pending.append((target, stop_depth))
        else:
            self._edge(self.current, target)
        self.current = None

    def _route_pending(
        self, src: int, target: int, stop_depth: int
    ) -> None:
        """Continue an abrupt jump from a finished finally block."""
        frames = self.finallies[stop_depth:]
        if frames:
            frame = frames[-1]
            self._edge(src, frame.entry)
            frame.pending.append((target, stop_depth))
        else:
            self._edge(src, target)

    # -- statement visitors -------------------------------------------------

    def visit_body(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.visit(stmt)

    def visit(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._visit_if(stmt)
        elif isinstance(stmt, (ast.While,)):
            self._visit_while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_for(stmt)
        elif isinstance(stmt, ast.Try):
            self._visit_try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
        elif isinstance(stmt, getattr(ast, "Match", ())):
            self._visit_match(stmt)
        elif isinstance(stmt, ast.Return):
            self._append(stmt)
            self._jump(self.exit)
        elif isinstance(stmt, ast.Raise):
            self._append(stmt)
            self._visit_raise()
        elif isinstance(stmt, ast.Break):
            self._append(stmt)
            if self.loops:
                frame = self.loops[-1]
                self._jump(frame.break_target, frame.finally_depth)
            else:
                self.current = None
        elif isinstance(stmt, ast.Continue):
            self._append(stmt)
            if self.loops:
                frame = self.loops[-1]
                self._jump(frame.continue_target, frame.finally_depth)
            else:
                self.current = None
        else:
            # simple statement (incl. nested function/class definitions,
            # whose bodies get their own CFGs).
            self._append(stmt)

    def _visit_raise(self) -> None:
        if self.current is None:
            return
        if self.exc_stack:
            # block-level exception edges to the enclosing frames
            # already exist; the raise just ends the block.
            pass
        else:
            self._edge(self.current, self.exit, EXCEPTION)
        self.current = None

    def _visit_if(self, stmt: ast.If) -> None:
        self._append(stmt)
        header = self.current
        exits: list[int] = []
        self._start_block([header] if header is not None else [])
        self.visit_body(stmt.body)
        if self.current is not None:
            exits.append(self.current)
        if stmt.orelse:
            self._start_block([header] if header is not None else [])
            self.visit_body(stmt.orelse)
            if self.current is not None:
                exits.append(self.current)
        elif header is not None:
            exits.append(header)
        if exits:
            self._start_block(exits)
        else:
            self.current = None

    @staticmethod
    def _is_constant_true(test: ast.expr) -> bool:
        return isinstance(test, ast.Constant) and test.value is True

    def _visit_while(self, stmt: ast.While) -> None:
        pred = self.current
        header = self._new_block()
        if pred is not None:
            self._edge(pred, header)
        self.blocks[header].elements.append(stmt)
        after = self._new_block()
        self.loops.append(_LoopFrame(after, header, len(self.finallies)))
        self._start_block([header])
        self.visit_body(stmt.body)
        if self.current is not None:
            self._edge(self.current, header)
        self.loops.pop()
        if stmt.orelse:
            # else runs when the loop exits without break.
            if not self._is_constant_true(stmt.test):
                self._start_block([header])
                self.visit_body(stmt.orelse)
                if self.current is not None:
                    self._edge(self.current, after)
        elif not self._is_constant_true(stmt.test):
            # `while True:` only exits via break.
            self._edge(header, after)
        self.current = after

    def _visit_for(self, stmt: ast.For | ast.AsyncFor) -> None:
        pred = self.current
        header = self._new_block()
        if pred is not None:
            self._edge(pred, header)
        self.blocks[header].elements.append(stmt)
        after = self._new_block()
        self.loops.append(_LoopFrame(after, header, len(self.finallies)))
        self._start_block([header])
        self.visit_body(stmt.body)
        if self.current is not None:
            self._edge(self.current, header)
        self.loops.pop()
        if stmt.orelse:
            self._start_block([header])
            self.visit_body(stmt.orelse)
            if self.current is not None:
                self._edge(self.current, after)
        else:
            self._edge(header, after)
        self.current = after

    def _visit_with(self, stmt: ast.With | ast.AsyncWith) -> None:
        self._append(stmt)
        # body inlined; the context manager owns exception cleanup.
        self.visit_body(stmt.body)

    def _visit_match(self, stmt: ast.AST) -> None:
        self._append(stmt)
        header = self.current
        exits: list[int] = []
        for case in stmt.cases:
            self._start_block([header] if header is not None else [])
            self.visit_body(case.body)
            if self.current is not None:
                exits.append(self.current)
        if header is not None:
            # no case may match.
            exits.append(header)
        if exits:
            self._start_block(exits)
        else:
            self.current = None

    def _visit_try(self, stmt: ast.Try) -> None:
        pred = self.current
        handler_entries = [self._new_block() for _ in stmt.handlers]
        finally_entry = self._new_block() if stmt.finalbody else None
        targets = list(handler_entries)
        if finally_entry is not None:
            targets.append(finally_entry)

        finally_frame: _FinallyFrame | None = None
        if finally_entry is not None:
            finally_frame = _FinallyFrame(finally_entry)
            self.finallies.append(finally_frame)

        # -- body, protected by handlers and finally --------------------
        self.exc_stack.append(targets)
        body_entry = self._new_block()
        if pred is not None:
            self._edge(pred, body_entry)
        self.current = body_entry
        self.visit_body(stmt.body)
        body_exit = self.current
        self.exc_stack.pop()

        after_exits: list[int] = []

        # -- else, protected by finally only ----------------------------
        if finally_entry is not None:
            self.exc_stack.append([finally_entry])
        if stmt.orelse:
            if body_exit is not None:
                self._start_block([body_exit])
                self.visit_body(stmt.orelse)
                normal_exit = self.current
            else:
                normal_exit = None
        else:
            normal_exit = body_exit
        if normal_exit is not None:
            if finally_entry is not None:
                self._edge(normal_exit, finally_entry)
            else:
                after_exits.append(normal_exit)

        # -- handlers ----------------------------------------------------
        for handler, entry in zip(stmt.handlers, handler_entries):
            self.current = entry
            if handler.type is not None:
                self.blocks[entry].elements.append(handler.type)
            self.visit_body(handler.body)
            if self.current is not None:
                if finally_entry is not None:
                    self._edge(self.current, finally_entry)
                else:
                    after_exits.append(self.current)
        if finally_entry is not None:
            self.exc_stack.pop()

        # -- finally -----------------------------------------------------
        if finally_entry is not None:
            self.finallies.pop()
            self.current = finally_entry
            self.visit_body(stmt.finalbody)
            finally_exit = self.current
            if finally_exit is not None:
                after_exits.append(finally_exit)
                # abrupt jumps that entered the finally continue on to
                # their original targets (through outer finallies).
                assert finally_frame is not None
                for target, stop_depth in finally_frame.pending:
                    self._route_pending(finally_exit, target, stop_depth)
                # an unmatched exception propagates out after finally.
                propagated = False
                for frame in reversed(self.exc_stack):
                    for target in frame:
                        self._edge(finally_exit, target, EXCEPTION)
                        propagated = True
                    if propagated:
                        break
                if not propagated:
                    self._edge(finally_exit, self.exit, EXCEPTION)

        if after_exits:
            self._start_block(sorted(set(after_exits)))
        else:
            self.current = None

    # -- finalization --------------------------------------------------------

    def finish(self) -> CFG:
        if self.current is not None:
            self._edge(self.current, self.exit)
        succs: dict[int, list[tuple[int, str]]] = {}
        preds: dict[int, list[tuple[int, str]]] = {}
        for src, dst, kind in sorted(self.edges):
            succs.setdefault(src, []).append((dst, kind))
            preds.setdefault(dst, []).append((src, kind))
        return CFG(
            blocks=self.blocks,
            entry=0,
            exit=self.exit,
            succs=succs,
            preds=preds,
        )


def build_cfg(node: ast.AST) -> CFG:
    """CFG for a function/module body (any node with a ``body`` list)."""
    builder = _Builder()
    builder.visit_body(list(getattr(node, "body", [])))
    return builder.finish()


def function_nodes(tree: ast.AST):
    """Every function definition in ``tree``, in source order."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
