"""The check driver: parse, run rules, apply suppressions and baseline.

Pipeline per run (all deterministic):

1. parse every ``.py`` file under the root (sorted paths) into
   :class:`~repro.staticcheck.module.ModuleContext`;
2. run every selected rule's ``check`` per module, then each rule's
   ``finish`` for cross-module findings;
3. drop findings suppressed by an inline ``# staticcheck: disable=``
   comment on their line, tracking which suppressions fired;
4. emit :class:`UnusedSuppressionRule` findings for suppressions that
   silenced nothing (a stale disable comment is itself drift);
5. split the remainder against the baseline: grandfathered findings
   are reported separately, and baseline entries with no matching
   finding are *stale* and fail the check until removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.staticcheck.baseline import Baseline, BaselineEntry
from repro.staticcheck.cache import FindingCache, content_hash
from repro.staticcheck.findings import Finding, SourceSpan
from repro.staticcheck.module import ModuleContext, parse_module
from repro.staticcheck.registry import REGISTRY, Rule, register


@register
class UnusedSuppressionRule(Rule):
    """An inline ``# staticcheck: disable=RULE`` that silenced nothing.

    Suppressions are scoped to one rule on one line.  When the code it
    excused is fixed or moves, the comment outlives its reason and
    starts hiding future regressions on that line — so an unused
    suppression is itself a (warning-severity) finding.  Fix by
    deleting the stale comment.  The runner drives this rule from its
    suppression bookkeeping; it has no per-module ``check`` body.
    """

    id = "SUP001"
    severity = "warning"
    title = "unused inline suppression"
    #: driven by whole-run suppression bookkeeping, never cached.
    incremental = False


@dataclass
class CheckResult:
    """Everything one run produced, pre-sorted and frozen for emitters."""

    findings: tuple[Finding, ...]
    baselined: tuple[Finding, ...] = ()
    stale_baseline: tuple[BaselineEntry, ...] = ()
    files: int = 0
    suppressed: int = 0
    rule_ids: tuple[str, ...] = field(default_factory=tuple)
    #: ``(path, line, rule_id)`` for every suppression that silenced
    #: nothing — the structural form ``repro check --fix`` consumes.
    unused_suppressions: tuple[tuple[str, int, str], ...] = ()
    cache_hits: int = 0
    cache_misses: int = 0

    def ok(self) -> bool:
        return not self.findings and not self.stale_baseline


def load_tree(root: str | Path) -> list[ModuleContext]:
    """Parse every ``.py`` under ``root`` (sorted, posix-relative paths)."""
    root = Path(root)
    modules: list[ModuleContext] = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        modules.append(parse_module(relative, path.read_text(encoding="utf-8")))
    return modules


def check_modules(
    modules: list[ModuleContext],
    rules: list[Rule] | None = None,
    baseline: Baseline | None = None,
    cache: FindingCache | None = None,
) -> CheckResult:
    """Run ``rules`` (default: the whole registry) over parsed modules.

    With a ``cache``, per-module findings of ``Rule.incremental`` rules
    are served from it for unchanged files and recorded for the rest;
    non-incremental rules (cross-module state) always run, so warm
    output matches cold output exactly.  The caller saves the cache.
    """
    if rules is None:
        rules = REGISTRY.create()
    by_path = {module.path: module for module in modules}
    sup001 = next((r for r in rules if r.id == UnusedSuppressionRule.id), None)
    raw: list[Finding] = []
    for module in modules:
        digest = content_hash(module.source) if cache is not None else ""
        for rule in rules:
            if cache is not None and rule.incremental:
                cached = cache.get(module.path, digest, rule.id)
                if cached is None:
                    cached = rule.check(module)
                    cache.put(module.path, digest, rule.id, cached)
                raw.extend(cached)
            else:
                raw.extend(rule.check(module))
    for rule in rules:
        raw.extend(rule.finish())

    # Inline suppressions: drop matching findings, remember which
    # (line, rule) pairs earned their keep.
    used: dict[str, set[tuple[int, str]]] = {}
    kept: list[Finding] = []
    suppressed = 0
    for finding in raw:
        module = by_path.get(finding.path)
        if module is not None and module.suppressed(finding.rule, finding.line):
            used.setdefault(finding.path, set()).add((finding.line, finding.rule))
            suppressed += 1
        else:
            kept.append(finding)

    # Unused suppressions become findings themselves (unless the line
    # also disables SUP001, which is always considered used).
    unused: list[tuple[str, int, str]] = []
    if sup001 is not None:
        for module in modules:
            for line, rule_ids in sorted(module.suppressions.items()):
                for rule_id in sorted(rule_ids):
                    if rule_id == UnusedSuppressionRule.id:
                        continue
                    if (line, rule_id) in used.get(module.path, ()):
                        continue
                    if module.suppressed(UnusedSuppressionRule.id, line):
                        continue
                    unused.append((module.path, line, rule_id))
                    kept.append(
                        sup001.finding(
                            module,
                            SourceSpan(line=line),
                            f"suppression of {rule_id} on this line "
                            "matches no finding; delete the stale "
                            "disable comment",
                        )
                    )

    # Deduplicate (a rule pinning two identical findings to one node)
    # and order deterministically.
    deduped = sorted(set(kept), key=Finding.sort_key)

    if baseline is not None:
        active, baselined, stale = baseline.match(deduped)
    else:
        active, baselined, stale = deduped, [], []
    return CheckResult(
        findings=tuple(active),
        baselined=tuple(baselined),
        stale_baseline=tuple(stale),
        files=len(modules),
        suppressed=suppressed,
        rule_ids=tuple(rule.id for rule in rules),
        unused_suppressions=tuple(sorted(unused)),
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )


def check_tree(
    root: str | Path,
    rule_ids=None,
    baseline: Baseline | None = None,
    cache: FindingCache | None = None,
) -> CheckResult:
    """Parse and check every ``.py`` file under ``root``."""
    return check_modules(
        load_tree(root),
        rules=REGISTRY.create(rule_ids),
        baseline=baseline,
        cache=cache,
    )


def check_source(
    source: str, path: str = "mod.py", rule_ids=None
) -> list[Finding]:
    """Findings for one in-memory module (unit-test entry point).

    ``path`` drives the same scoping the tree walk uses: pass
    ``"reliability/clock.py"`` to exercise the ARCH001 allowlist,
    ``"serving/mod.py"`` for the concurrency zone, and so on.
    """
    module = parse_module(path, source)
    result = check_modules([module], rules=REGISTRY.create(rule_ids))
    return list(result.findings)
