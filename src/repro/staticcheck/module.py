"""Per-module analysis context: parsed AST plus inline suppressions.

Each checked file is parsed exactly once into a :class:`ModuleContext`
shared by every rule.  Suppressions are comments of the form::

    something()  # staticcheck: disable=ARCH001
    other()      # staticcheck: disable=ARCH003,DET001

scoped to *that line and those rules only* — a suppression never
silences a different rule on the same line, the same rule on another
line, or a whole file.  Comments are found with :mod:`tokenize`, so a
``# staticcheck:`` spelling inside a string literal never counts.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

_SUPPRESS_RE = re.compile(r"staticcheck:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass
class ModuleContext:
    """One parsed module as every rule sees it."""

    #: Path relative to the check root, posix-style (drives rule scoping).
    path: str
    source: str
    tree: ast.Module
    #: line number -> rule ids suppressed on that line.
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    def suppressed(self, rule: str, line: int) -> bool:
        return rule in self.suppressions.get(line, ())


def find_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids disabled by an inline comment."""
    table: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            rules = {
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            }
            if rules:
                table.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenError:
        # Unterminated constructs: the ast parse will surface the real
        # syntax error; suppressions just come up empty.
        pass
    return table


def parse_module(path: str, source: str) -> ModuleContext:
    """Parse one module; raises ``SyntaxError`` on unparseable source."""
    return ModuleContext(
        path=path,
        source=source,
        tree=ast.parse(source, filename=path),
        suppressions=find_suppressions(source),
    )
