"""Plugin-based static analysis for the repro codebase.

Grown out of ``scripts/arch_lint.py``: rules are classes implementing
the :class:`~repro.staticcheck.registry.Rule` protocol, registered in
a global :class:`~repro.staticcheck.registry.RuleRegistry`, and run by
:func:`check_tree` / :func:`check_modules` over parsed
:class:`~repro.staticcheck.module.ModuleContext` objects.  Findings
carry source spans and line-independent fingerprints; inline
``# staticcheck: disable=RULE`` comments and a committed baseline file
grandfather known findings without letting new ones in.  Emitters
render text, JSON, and SARIF 2.1.0 — all byte-deterministic.

Flow-sensitive rules (RES001 resource leaks, EXC001 exception flow,
DEAD001 dead code) build on the intraprocedural CFG (``cfg.py``) and
worklist dataflow solver (``dataflow.py``); a content-hash incremental
cache (``cache.py``) makes warm runs skip unchanged modules, and
``fix.py`` powers ``repro check --fix``.

Entry points: ``repro check`` (CLI) and the ``scripts/arch_lint.py``
shim.  See DESIGN.md §13–§14 for the architecture and how to add a
rule.
"""

from repro.staticcheck import rules as _rules  # noqa: F401  (registration)
from repro.staticcheck.baseline import (
    Baseline,
    BaselineEntry,
    load_baseline,
    save_baseline,
)
from repro.staticcheck.cache import (
    FindingCache,
    content_hash,
    rules_fingerprint,
)
from repro.staticcheck.cfg import CFG, Block, build_cfg, function_nodes
from repro.staticcheck.dataflow import (
    liveness,
    reaching_definitions,
    solve,
)
from repro.staticcheck.emit import render_json, render_sarif, render_text
from repro.staticcheck.fix import apply_fixes
from repro.staticcheck.findings import (
    ERROR,
    SEVERITIES,
    WARNING,
    Finding,
    SourceSpan,
)
from repro.staticcheck.module import ModuleContext, parse_module
from repro.staticcheck.registry import REGISTRY, Rule, RuleRegistry, register
from repro.staticcheck.runner import (
    CheckResult,
    check_modules,
    check_source,
    check_tree,
    load_tree,
)

__all__ = [
    "ERROR",
    "WARNING",
    "SEVERITIES",
    "Finding",
    "SourceSpan",
    "ModuleContext",
    "parse_module",
    "Rule",
    "RuleRegistry",
    "REGISTRY",
    "register",
    "Baseline",
    "BaselineEntry",
    "load_baseline",
    "save_baseline",
    "CheckResult",
    "check_modules",
    "check_source",
    "check_tree",
    "load_tree",
    "render_text",
    "render_json",
    "render_sarif",
    "FindingCache",
    "content_hash",
    "rules_fingerprint",
    "CFG",
    "Block",
    "build_cfg",
    "function_nodes",
    "solve",
    "liveness",
    "reaching_definitions",
    "apply_fixes",
]
