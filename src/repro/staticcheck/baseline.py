"""Committed baseline of grandfathered findings.

A baseline entry matches findings by line-independent fingerprint
(``rule | path | message``), so grandfathered findings survive
unrelated edits but *expire* the moment the offending code goes away:
an entry with no matching finding is reported as stale and fails the
check until it is deleted (or ``--write-baseline`` regenerates the
file).  Matching honours multiplicity — two identical findings need
two entries; baselining one leaves the other active.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, replace
from pathlib import Path

from repro.staticcheck.findings import Finding

BASELINE_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding; ``note`` records the justification."""

    rule: str
    path: str
    fingerprint: str
    note: str = ""

    def render(self) -> str:
        suffix = f" ({self.note})" if self.note else ""
        return f"{self.path}: {self.rule} {self.fingerprint}{suffix}"


class Baseline:
    """The set of grandfathered findings, with multiplicity."""

    def __init__(self, entries: tuple[BaselineEntry, ...] = ()):
        self.entries = tuple(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def match(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Split findings into (active, baselined) and report stale entries."""
        budget = Counter(
            (entry.rule, entry.path, entry.fingerprint) for entry in self.entries
        )
        active: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            key = (finding.rule, finding.path, finding.fingerprint)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined.append(replace(finding, baselined=True))
            else:
                active.append(finding)
        stale = [
            entry
            for entry in self.entries
            if budget.get((entry.rule, entry.path, entry.fingerprint), 0) > 0
        ]
        # Multiple identical stale entries each report once.
        seen: Counter = Counter()
        deduped_stale: list[BaselineEntry] = []
        for entry in stale:
            key = (entry.rule, entry.path, entry.fingerprint)
            if seen[key] < budget[key]:
                seen[key] += 1
                deduped_stale.append(entry)
        return active, baselined, deduped_stale

    @classmethod
    def from_findings(cls, findings: list[Finding], note: str = "") -> "Baseline":
        return cls(
            tuple(
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    fingerprint=finding.fingerprint,
                    note=note or finding.message,
                )
                for finding in sorted(findings, key=Finding.sort_key)
            )
        )


def load_baseline(path: str | Path) -> Baseline:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path}: unsupported version {payload.get('version')!r}"
        )
    return Baseline(
        tuple(
            BaselineEntry(
                rule=entry["rule"],
                path=entry["path"],
                fingerprint=entry["fingerprint"],
                note=entry.get("note", ""),
            )
            for entry in payload.get("entries", [])
        )
    )


def save_baseline(baseline: Baseline, path: str | Path) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "fingerprint": entry.fingerprint,
                "note": entry.note,
            }
            for entry in sorted(
                baseline.entries,
                key=lambda e: (e.path, e.rule, e.fingerprint),
            )
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
