"""Deterministic autofixes for ``repro check --fix``.

Only mechanical, provably-safe fixes are automated — the ones whose
*finding* already names the exact edit:

- **SUP001** (stale inline suppression): delete the unused rule id
  from its ``# staticcheck: disable=`` comment; when the last id goes,
  delete the whole comment (and the line, if nothing else is on it).
- **stale baseline entries**: rewrite the baseline file without the
  entries whose findings no longer exist.

Both fixes are derived from one :class:`~repro.staticcheck.runner.
CheckResult`, applied in sorted path order, and rendered as a unified
diff of every file touched.  The fixer is idempotent by construction:
after one pass the findings that drove it are gone, so a second pass
plans nothing and prints an empty diff (a property the tests assert).
Rule findings themselves (RES001, EXC001, ...) are *not* auto-fixed —
they require judgement; the fixer only retires bookkeeping that has
outlived the code it described.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass
from pathlib import Path

from repro.staticcheck.baseline import Baseline, load_baseline, save_baseline
from repro.staticcheck.runner import CheckResult

#: the ``disable=`` comment, split into (head, rule list, trailer) —
#: the trailer is anything after the id list, e.g. a justification.
_SUPPRESSION = re.compile(
    r"\s*#\s*staticcheck:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+)(?P<trailer>.*)$"
)


@dataclass(frozen=True)
class FileFix:
    """One file's planned rewrite (``after is None`` = no change)."""

    path: str
    before: str
    after: str

    def diff(self) -> str:
        return "".join(
            difflib.unified_diff(
                self.before.splitlines(keepends=True),
                self.after.splitlines(keepends=True),
                fromfile=f"a/{self.path}",
                tofile=f"b/{self.path}",
            )
        )


def _strip_rules(line: str, dead_rules: set[str]) -> str:
    """Remove ``dead_rules`` from the line's suppression comment."""
    match = _SUPPRESSION.search(line)
    if match is None:
        return line
    listed = [r.strip() for r in match.group("rules").split(",") if r.strip()]
    kept = [r for r in listed if r not in dead_rules]
    if kept == listed:
        return line
    newline = "\n" if line.endswith("\n") else ""
    code = line[: match.start()].rstrip()
    if not kept:
        # last id removed: drop the whole comment; drop the line too
        # if the comment was all there was.
        return code + newline if code else ""
    rebuilt = f"{code}  # staticcheck: disable={','.join(kept)}"
    trailer = match.group("trailer").rstrip()
    if trailer:
        rebuilt += trailer
    return rebuilt + newline


def plan_suppression_fixes(
    result: CheckResult, root: str | Path
) -> list[FileFix]:
    """One :class:`FileFix` per file with stale suppressions to delete."""
    root = Path(root)
    by_path: dict[str, dict[int, set[str]]] = {}
    for path, line, rule_id in result.unused_suppressions:
        by_path.setdefault(path, {}).setdefault(line, set()).add(rule_id)
    fixes = []
    for path in sorted(by_path):
        file_path = root / path
        try:
            before = file_path.read_text(encoding="utf-8")
        except OSError:
            continue  # file vanished between check and fix: nothing to do.
        lines = before.splitlines(keepends=True)
        for lineno, dead_rules in by_path[path].items():
            if 1 <= lineno <= len(lines):
                lines[lineno - 1] = _strip_rules(lines[lineno - 1], dead_rules)
        after = "".join(lines)
        if after != before:
            fixes.append(FileFix(path=path, before=before, after=after))
    return fixes


def plan_baseline_fix(
    result: CheckResult, baseline_path: str | Path
) -> FileFix | None:
    """Rewrite of the baseline file without its stale entries, if any."""
    if not result.stale_baseline:
        return None
    baseline_path = Path(baseline_path)
    before = baseline_path.read_text(encoding="utf-8")
    stale = set(result.stale_baseline)
    kept = Baseline(
        tuple(
            entry
            for entry in load_baseline(baseline_path).entries
            if entry not in stale
        )
    )
    # Render through save_baseline for the canonical byte form.
    scratch = baseline_path.with_suffix(".fixtmp")
    save_baseline(kept, scratch)
    after = scratch.read_text(encoding="utf-8")
    scratch.unlink()
    if after == before:
        return None
    return FileFix(path=baseline_path.name, before=before, after=after)


def apply_fixes(
    result: CheckResult,
    root: str | Path,
    baseline_path: str | Path | None = None,
) -> tuple[str, int]:
    """Apply every planned fix; return (unified diff, files changed)."""
    fixes = plan_suppression_fixes(result, root)
    targets = [(Path(root) / fix.path, fix) for fix in fixes]
    if baseline_path is not None and Path(baseline_path).exists():
        baseline_fix = plan_baseline_fix(result, baseline_path)
        if baseline_fix is not None:
            targets.append((Path(baseline_path), baseline_fix))
    chunks = []
    for file_path, fix in targets:
        file_path.write_text(fix.after, encoding="utf-8")
        chunks.append(fix.diff())
    return "".join(chunks), len(targets)
