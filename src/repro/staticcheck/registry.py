"""The rule protocol and registry.

Every rule is a class with a stable ``id``, a ``severity``, a one-line
``title``, and a docstring that *is* the rule's documentation — there
is no second prose copy anywhere: ``repro check --explain RULE`` and
the ``scripts/arch_lint.py`` shim both render from here.

Rules register themselves with the :data:`register` decorator at
import time; the runner instantiates a fresh object per run, so rules
may accumulate cross-module state in ``check`` and emit whole-tree
findings from ``finish`` (the lock-order graph does this) without
leaking between runs.
"""

from __future__ import annotations

import inspect

from repro.staticcheck.findings import SEVERITIES, Finding
from repro.staticcheck.module import ModuleContext


class Rule:
    """Base class for staticcheck rules.

    Subclasses set ``id`` / ``severity`` / ``title``, document
    themselves in the class docstring, and implement :meth:`check`.
    Rules needing a whole-tree view (e.g. a cross-module graph) keep
    state on ``self`` and emit from :meth:`finish`.
    """

    id: str = ""
    severity: str = "error"
    title: str = ""
    #: True when ``check`` depends only on the one module it is given
    #: (no cross-module state, no ``finish`` findings) — such rules'
    #: per-module findings are safe to serve from the incremental
    #: cache.  Rules that accumulate whole-tree state set this False.
    incremental: bool = True

    def check(self, module: ModuleContext) -> list[Finding]:
        """Findings for one module (called once per file)."""
        return []

    def finish(self) -> list[Finding]:
        """Findings requiring every module to have been seen."""
        return []

    @classmethod
    def docs(cls) -> str:
        """The rule's documentation — its docstring, nothing else."""
        return inspect.cleandoc(cls.__doc__ or "(undocumented)")

    def finding(self, module: ModuleContext, node, message: str) -> Finding:
        """Convenience constructor pinning a finding to ``node``."""
        from repro.staticcheck.findings import SourceSpan

        span = (
            node
            if isinstance(node, SourceSpan)
            else SourceSpan.from_node(node)
        )
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=module.path,
            span=span,
            message=message,
        )


class RuleRegistry:
    """Id-keyed registry of rule classes."""

    def __init__(self):
        self._rules: dict[str, type[Rule]] = {}

    def register(self, cls: type[Rule]) -> type[Rule]:
        if not cls.id:
            raise ValueError(f"rule class {cls.__name__} has no id")
        if cls.severity not in SEVERITIES:
            raise ValueError(
                f"rule {cls.id}: severity must be one of {SEVERITIES}, "
                f"got {cls.severity!r}"
            )
        if not (cls.__doc__ or "").strip():
            raise ValueError(f"rule {cls.id} has no docstring (its docs)")
        if cls.id in self._rules:
            raise ValueError(f"duplicate rule id {cls.id}")
        self._rules[cls.id] = cls
        return cls

    def ids(self) -> list[str]:
        return sorted(self._rules)

    def get(self, rule_id: str) -> type[Rule]:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(
                f"unknown rule {rule_id!r}; known: {', '.join(self.ids())}"
            ) from None

    def create(self, rule_ids=None) -> list[Rule]:
        """Fresh rule instances, sorted by id (whole registry by default)."""
        wanted = self.ids() if rule_ids is None else sorted(set(rule_ids))
        return [self.get(rule_id)() for rule_id in wanted]

    def explain(self, rule_id: str) -> str:
        cls = self.get(rule_id)
        header = f"{cls.id} ({cls.severity}) — {cls.title}"
        return f"{header}\n\n{cls.docs()}"

    def render_docs(self) -> str:
        """Every rule's documentation, one block per rule."""
        return "\n\n".join(self.explain(rule_id) for rule_id in self.ids())


#: The process-wide registry rule modules register into.
REGISTRY = RuleRegistry()

#: Decorator shorthand: ``@register`` above a Rule subclass.
register = REGISTRY.register
