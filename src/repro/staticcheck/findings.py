"""Frozen finding records with source spans.

A :class:`Finding` is one rule hit pinned to a source location.  The
span idiom follows :mod:`repro.sqlgen.spans`: findings carry plain
positions into the original text rather than threading location state
through the AST value objects, so rules stay free to analyse whatever
granularity they like and point back afterwards.

Fingerprints deliberately exclude line numbers: a baseline entry must
survive unrelated edits above the finding, so identity is
``rule | path | message`` (with multiplicity handled by the baseline
matcher, not the fingerprint).
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field

ERROR = "error"
WARNING = "warning"

SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True)
class SourceSpan:
    """1-based line / 0-based column range in the module source."""

    line: int
    col: int = 0
    end_line: int | None = None
    end_col: int | None = None

    @classmethod
    def from_node(cls, node: ast.AST) -> "SourceSpan":
        return cls(
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            end_line=getattr(node, "end_lineno", None),
            end_col=getattr(node, "end_col_offset", None),
        )

    def snippet(self, source: str) -> str:
        """The first source line the span covers (stripped)."""
        lines = source.splitlines()
        if 1 <= self.line <= len(lines):
            return lines[self.line - 1].strip()
        return ""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    span: SourceSpan
    message: str
    #: True once the baseline matcher grandfathered this finding.
    baselined: bool = field(default=False, compare=False)

    @property
    def line(self) -> int:
        return self.span.line

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline file."""
        digest = hashlib.sha256(
            f"{self.rule}|{self.path}|{self.message}".encode("utf-8")
        )
        return digest.hexdigest()[:16]

    def sort_key(self) -> tuple:
        return (self.path, self.span.line, self.span.col, self.rule, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        """Plain-data form for the JSON emitter (stable key set)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.span.line,
            "col": self.span.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "baselined": self.baselined,
        }
