"""Finding emitters: human text, machine JSON, and SARIF 2.1.0.

Every emitter is deterministic for a given tree state: findings are
pre-sorted by the runner, dictionaries serialize with sorted keys, and
nothing stamps wall-clock time or absolute paths — ``repro check
--format json`` is byte-identical across runs and across
``PYTHONHASHSEED`` values (pinned by the tier-1 byte-stability test).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.staticcheck.registry import REGISTRY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.runner import CheckResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: "CheckResult") -> str:
    """One line per finding plus a status summary (shim-compatible)."""
    lines = [finding.render() for finding in result.findings]
    for entry in result.stale_baseline:
        lines.append(f"stale baseline entry: {entry.render()}")
    if result.baselined:
        lines.append(f"({len(result.baselined)} baselined finding(s) suppressed)")
    if result.ok():
        lines.append(f"staticcheck: OK ({result.files} file(s))")
    else:
        lines.append(
            f"staticcheck: {len(result.findings)} finding(s), "
            f"{len(result.stale_baseline)} stale baseline entr(ies) "
            f"over {result.files} file(s)"
        )
    return "\n".join(lines)


def render_json(result: "CheckResult") -> str:
    """Stable-order JSON document (sorted keys, sorted findings)."""
    payload = {
        "files": result.files,
        "findings": [finding.as_dict() for finding in result.findings],
        "baselined": [finding.as_dict() for finding in result.baselined],
        "stale_baseline": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "fingerprint": entry.fingerprint,
                "note": entry.note,
            }
            for entry in result.stale_baseline
        ],
        "ok": result.ok(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_level(severity: str) -> str:
    return {"error": "error", "warning": "warning"}.get(severity, "note")


def render_sarif(result: "CheckResult") -> str:
    """Minimal SARIF 2.1.0 log consumable by code-scanning UIs."""
    rule_ids = sorted({finding.rule for finding in result.findings})
    rules = []
    for rule_id in rule_ids:
        try:
            cls = REGISTRY.get(rule_id)
            rules.append(
                {
                    "id": rule_id,
                    "name": cls.title or rule_id,
                    "fullDescription": {"text": cls.docs()},
                    "defaultConfiguration": {
                        "level": _sarif_level(cls.severity)
                    },
                }
            )
        except KeyError:
            rules.append({"id": rule_id, "name": rule_id})
    results = [
        {
            "ruleId": finding.rule,
            "level": _sarif_level(finding.severity),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.span.line,
                            "startColumn": finding.span.col + 1,
                        },
                    }
                }
            ],
            "fingerprints": {"staticcheck/v1": finding.fingerprint},
        }
        for finding in result.findings
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-staticcheck",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
