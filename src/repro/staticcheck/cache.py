"""Incremental per-module finding cache for warm ``repro check`` runs.

The cache stores, per checked file, the raw per-module findings of
every *incremental* rule (``Rule.incremental``), keyed by the SHA-256
of the file's bytes.  On a warm run an unchanged module skips every
incremental rule's ``check`` entirely; rules with cross-module state
(LOCK001's lock-order graph, the runner-driven SUP001) always run, as
do suppression matching and baseline splitting — so warm output is
byte-identical to a cold run by construction, which the test suite
verifies.

Two staleness guards:

- a **rules fingerprint** hashing every registered rule's source code
  (plus the cache format version): edit any rule and the whole cache
  invalidates;
- per-file **content hashes**: edit any module and only that module
  re-analyzes.

Entries for files no longer on disk are dropped on save.  The file
format is deterministic JSON (sorted keys), safe to commit or throw
away at will — a missing or corrupt cache simply means a cold run.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from pathlib import Path

from repro.staticcheck.findings import Finding, SourceSpan

CACHE_VERSION = 1


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def rules_fingerprint(rule_classes) -> str:
    """Hash of the cache version and every rule's source, sorted by id."""
    digest = hashlib.sha256(f"v{CACHE_VERSION}".encode("utf-8"))
    for cls in sorted(rule_classes, key=lambda cls: cls.id):
        digest.update(cls.id.encode("utf-8"))
        try:
            digest.update(inspect.getsource(cls).encode("utf-8"))
        except (OSError, TypeError):
            # source unavailable (frozen/interactive): key on the id
            # and docs so at least doc edits invalidate.
            digest.update(cls.docs().encode("utf-8"))
    return digest.hexdigest()


def _finding_to_dict(finding: Finding) -> dict:
    span = finding.span
    return {
        "rule": finding.rule,
        "severity": finding.severity,
        "path": finding.path,
        "line": span.line,
        "col": span.col,
        "end_line": span.end_line,
        "end_col": span.end_col,
        "message": finding.message,
    }


def _finding_from_dict(payload: dict) -> Finding:
    return Finding(
        rule=payload["rule"],
        severity=payload["severity"],
        path=payload["path"],
        span=SourceSpan(
            line=payload["line"],
            col=payload["col"],
            end_line=payload["end_line"],
            end_col=payload["end_col"],
        ),
        message=payload["message"],
    )


class FindingCache:
    """Content-hash-keyed store of per-(module, rule) raw findings."""

    def __init__(self, path: str | Path, fingerprint: str):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0
        self._files: dict[str, dict] = {}
        self._seen: set[str] = set()
        self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if (
            payload.get("version") != CACHE_VERSION
            or payload.get("fingerprint") != self.fingerprint
        ):
            return  # stale format or edited rules: start cold.
        files = payload.get("files")
        if isinstance(files, dict):
            self._files = files

    def get(
        self, module_path: str, digest: str, rule_id: str
    ) -> list[Finding] | None:
        """Cached findings, or None on any miss (never a false hit)."""
        self._seen.add(module_path)
        entry = self._files.get(module_path)
        if entry is None or entry.get("hash") != digest:
            self.misses += 1
            return None
        stored = entry.get("findings", {}).get(rule_id)
        if stored is None:
            self.misses += 1
            return None
        self.hits += 1
        return [_finding_from_dict(item) for item in stored]

    def put(
        self,
        module_path: str,
        digest: str,
        rule_id: str,
        findings: list[Finding],
    ) -> None:
        self._seen.add(module_path)
        entry = self._files.get(module_path)
        if entry is None or entry.get("hash") != digest:
            entry = {"hash": digest, "findings": {}}
            self._files[module_path] = entry
        entry["findings"][rule_id] = [
            _finding_to_dict(finding) for finding in findings
        ]

    def save(self) -> None:
        """Write the cache, dropping files not seen by this run."""
        files = {
            path: entry
            for path, entry in self._files.items()
            if path in self._seen
        }
        payload = {
            "version": CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "files": files,
        }
        self.path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
