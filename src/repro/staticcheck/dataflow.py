"""Generic worklist dataflow solving over :mod:`repro.staticcheck.cfg`.

One solver, :func:`solve`, runs any monotone set-lattice analysis in
either direction: facts are hashable values in ``frozenset`` lattices
joined by union (may-analyses).  Transfer functions work element by
element, so per-statement results (which the dead-store and resource
checkers need) fall out of replaying a block from its fixpoint
boundary value.

Shipped analyses:

- :func:`reaching_definitions` — forward; facts are ``(name, line)``
  definition sites.
- :func:`liveness` — backward; facts are variable names live at a
  program point.  :func:`live_after` replays one block to recover the
  per-element live-out sets.
- the RES001 held-resources lattice lives in
  ``rules/resources.py`` on top of :func:`solve` with a custom
  transfer; its facts are ``(name, line, kind)`` acquisition records.

Use/def extraction understands block *elements* as the CFG builder
emits them: compound headers contribute only their controlling
expressions (an ``ast.For`` header uses its ``iter`` and defines its
``target``), never their suites — the suites live in other blocks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable

from repro.staticcheck.cfg import CFG, EXCEPTION, NORMAL

Transfer = Callable[[ast.AST, frozenset], frozenset]

FORWARD = "forward"
BACKWARD = "backward"


@dataclass
class Solution:
    """Per-block fixpoint values at block entry and exit.

    For a forward analysis ``block_in`` is the join over predecessor
    outs; for a backward analysis ``block_in`` is still the value at
    the block's *entry* (i.e. the analysis result after the block for
    backward flows).
    """

    block_in: dict[int, frozenset]
    block_out: dict[int, frozenset]


def solve(
    cfg: CFG,
    transfer: Transfer,
    direction: str = FORWARD,
    entry_value: frozenset = frozenset(),
    kinds: tuple[str, ...] = (NORMAL, EXCEPTION),
) -> Solution:
    """Union-join worklist fixpoint over ``cfg``.

    ``transfer`` maps (element, incoming facts) to outgoing facts and
    must be monotone.  ``kinds`` selects which edge kinds propagate —
    the resource checker passes ``(NORMAL,)`` to reason about normal
    completion only.
    """
    indices = [block.index for block in cfg.blocks]
    block_in = {index: frozenset() for index in indices}
    block_out = {index: frozenset() for index in indices}
    if direction == FORWARD:
        block_in[cfg.entry] = entry_value
        sources = cfg.predecessors
        boundary = cfg.entry
    else:
        block_out[cfg.exit] = entry_value
        sources = cfg.successors
        boundary = cfg.exit

    def flow_through(index: int, value: frozenset) -> frozenset:
        elements = cfg.blocks[index].elements
        if direction == BACKWARD:
            elements = list(reversed(elements))
        for element in elements:
            value = transfer(element, value)
        return value

    worklist = list(indices)
    while worklist:
        index = worklist.pop(0)
        joined = frozenset().union(
            *(
                (block_out if direction == FORWARD else block_in)[source]
                for source in sources(index, kinds)
            )
        )
        if index == boundary:
            joined |= entry_value
        if direction == FORWARD:
            block_in[index] = joined
            result = flow_through(index, joined)
            if result != block_out[index]:
                block_out[index] = result
                for succ in cfg.successors(index, kinds):
                    if succ not in worklist:
                        worklist.append(succ)
        else:
            block_out[index] = joined
            result = flow_through(index, joined)
            if result != block_in[index]:
                block_in[index] = result
                for pred in cfg.predecessors(index, kinds):
                    if pred not in worklist:
                        worklist.append(pred)
    return Solution(block_in=block_in, block_out=block_out)


# ---------------------------------------------------------------------------
# use/def extraction for block elements


def _names_loaded(node: ast.AST | None) -> set[str]:
    if node is None:
        return set()
    return {
        sub.id
        for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
    }


def _names_stored(node: ast.AST | None) -> set[str]:
    if node is None:
        return set()
    return {
        sub.id
        for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store)
    }


def element_uses_defs(element: ast.AST) -> tuple[set[str], set[str]]:
    """(used names, defined names) for one CFG block element.

    Compound headers contribute only their controlling expressions;
    their suites are separate blocks.  Non-``Name`` assignment targets
    (``obj.attr``, ``seq[i]``) count their subexpressions as uses.
    """
    if isinstance(element, (ast.If, ast.While)):
        return _names_loaded(element.test), set()
    if isinstance(element, (ast.For, ast.AsyncFor)):
        return _names_loaded(element.iter), _names_stored(element.target)
    if isinstance(element, (ast.With, ast.AsyncWith)):
        uses: set[str] = set()
        defs: set[str] = set()
        for item in element.items:
            uses |= _names_loaded(item.context_expr)
            defs |= _names_stored(item.optional_vars)
        return uses, defs
    if isinstance(element, getattr(ast, "Match", ())):
        return _names_loaded(element.subject), set()
    if isinstance(element, ast.Assign):
        uses = _names_loaded(element.value)
        defs: set[str] = set()
        for target in element.targets:
            if isinstance(target, ast.Name):
                defs.add(target.id)
            else:
                uses |= _names_loaded(target)
                defs |= _names_stored(target)
        return uses, defs
    if isinstance(element, ast.AnnAssign):
        uses = _names_loaded(element.value) | _names_loaded(element.annotation)
        if isinstance(element.target, ast.Name):
            return uses, {element.target.id} if element.value else set()
        return uses | _names_loaded(element.target), set()
    if isinstance(element, ast.AugAssign):
        # reads the old value, writes the new one.
        uses = _names_loaded(element.value)
        if isinstance(element.target, ast.Name):
            return uses | {element.target.id}, {element.target.id}
        return uses | _names_loaded(element.target), set()
    if isinstance(element, ast.Delete):
        dead = {
            target.id
            for target in element.targets
            if isinstance(target, ast.Name)
        }
        return set(), dead
    if isinstance(element, (ast.FunctionDef, ast.AsyncFunctionDef)):
        uses = set()
        for decorator in element.decorator_list:
            uses |= _names_loaded(decorator)
        for default in element.args.defaults + [
            d for d in element.args.kw_defaults if d is not None
        ]:
            uses |= _names_loaded(default)
        return uses, {element.name}
    if isinstance(element, ast.ClassDef):
        uses = set()
        for decorator in element.decorator_list:
            uses |= _names_loaded(decorator)
        for base in element.bases:
            uses |= _names_loaded(base)
        return uses, {element.name}
    if isinstance(element, (ast.Import, ast.ImportFrom)):
        defs = set()
        for alias in element.names:
            if alias.name == "*":
                continue
            defs.add((alias.asname or alias.name).split(".", 1)[0])
        return set(), defs
    # simple statements and bare handler-type expressions: uses only,
    # plus any stores they contain (walrus, except-as has no AST name
    # node so it is invisible here).
    return _names_loaded(element), _names_stored(element)


# ---------------------------------------------------------------------------
# reaching definitions (forward)


def reaching_definitions(cfg: CFG) -> Solution:
    """Facts are ``(name, line)`` pairs: definitions that may reach."""

    def transfer(element: ast.AST, facts: frozenset) -> frozenset:
        _, defs = element_uses_defs(element)
        if not defs:
            return facts
        line = getattr(element, "lineno", 0)
        kept = {fact for fact in facts if fact[0] not in defs}
        kept.update((name, line) for name in defs)
        return frozenset(kept)

    return solve(cfg, transfer, direction=FORWARD)


# ---------------------------------------------------------------------------
# liveness (backward)


def _live_transfer(element: ast.AST, live: frozenset) -> frozenset:
    uses, defs = element_uses_defs(element)
    return frozenset((live - frozenset(defs)) | frozenset(uses))


def liveness(cfg: CFG) -> Solution:
    """Backward may-analysis; facts are names live at a program point."""
    return solve(cfg, _live_transfer, direction=BACKWARD)


def live_after(cfg: CFG, solution: Solution, block_index: int) -> list[frozenset]:
    """Per-element live-out sets for one block, in element order.

    ``live_after(...)[i]`` is the set of names live immediately after
    ``cfg.blocks[block_index].elements[i]``.
    """
    elements = cfg.blocks[block_index].elements
    live = solution.block_out[block_index]
    after: list[frozenset] = [frozenset()] * len(elements)
    for position in range(len(elements) - 1, -1, -1):
        after[position] = live
        live = _live_transfer(elements[position], live)
    return after
