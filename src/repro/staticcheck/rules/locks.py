"""LOCK001: lock-order and lock-held-across-blocking verification.

The serving and reliability layers are the only places threads and
locks may live (ARCH005), so their locking discipline is checkable in
one place.  This rule builds a per-class lock model from the AST:

1. **Discovery** — ``self.X = threading.Lock()`` / ``RLock()`` /
   ``Condition()`` / ``new_lock()`` defines lock ``Class.X``;
   ``self.X[key] = threading.Lock()`` defines the dict-of-locks family
   ``Class.X[*]``; ``threading.Condition(self.Y)`` makes ``X`` an
   alias of the underlying ``Y``.  Locks made by ``RLock``/``new_lock``
   are reentrant.
2. **Held tracking** — each method body is walked linearly with a
   held-lock stack: ``with self.X:`` (and ``with lock:`` where the
   local was bound from a lock attribute, a dict entry, or a
   lock-getter method) pushes; explicit ``.acquire()`` / ``.release()``
   pairs are honoured too.
3. **Summaries + fixpoint** — every method gets a summary of the locks
   it acquires and the blocking attributes it calls
   (``.sleep``, ``.execute``, ``.generate``); ``self.m(...)`` calls
   propagate summaries transitively, so holding a lock while calling a
   method that three frames down sleeps is still caught.

Findings:

- **lock-order inversion** — lock ``A`` acquired while holding ``B``
  somewhere and ``B`` acquired while holding ``A`` somewhere else: the
  classic ABBA deadlock, reported once per pair with both sites.
- **blocking under lock** — a held lock spans a call whose attribute
  name is a known blocking operation (``Clock.sleep``,
  ``Database.execute``, provider ``generate``), directly or through
  self-method calls.  Serialization-by-design sites carry an inline
  suppression with a justification comment.
- **non-reentrant re-acquisition** — ``with self.X:`` nested under
  itself when ``X`` is a plain ``Lock``: self-deadlock.

Scope: modules under ``serving/`` and ``reliability/``.  Cross-object
edges (holding my lock while calling *another object's* locked method)
are out of static reach and documented as a known limitation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.staticcheck.findings import Finding, SourceSpan
from repro.staticcheck.module import ModuleContext
from repro.staticcheck.registry import Rule, register
from repro.staticcheck.rules._util import ImportTable

#: path prefixes the rule applies to (the only legal lock zones).
SCOPE_PREFIXES = ("serving/", "reliability/")

#: attribute names treated as blocking operations when called.
BLOCKING_ATTRS = frozenset({"sleep", "execute", "generate"})

#: qualified factory names that create a lock (→ reentrant?).
LOCK_FACTORIES = {
    "threading.Lock": False,
    "threading.RLock": True,
    "threading.Condition": False,
    "repro.reliability.sync.new_lock": True,
    "new_lock": True,
}


@dataclass
class LockInfo:
    name: str  # "Class.attr" or "Class.attr[*]"
    reentrant: bool


@dataclass
class MethodSummary:
    """What one method does lock-wise, before fixpoint expansion."""

    acquires: set[str] = field(default_factory=set)
    blocking: set[str] = field(default_factory=set)
    calls: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class _Edge:
    held: str
    acquired: str


@register
class LockOrderRule(Rule):
    __doc__ = __doc__

    id = "LOCK001"
    severity = "error"
    title = "lock-order inversion or blocking call under lock"
    #: the lock-order graph spans modules; never served from cache.
    incremental = False

    def __init__(self):
        #: edge → (path, line, method) of first sighting, across modules
        self._edges: dict[_Edge, tuple[str, int, str]] = {}

    def check(self, module: ModuleContext) -> list[Finding]:
        if not any(
            module.path.startswith(p) or f"/{p}" in module.path
            for p in SCOPE_PREFIXES
        ):
            return []
        imports = ImportTable.from_tree(module.tree)
        findings: list[Finding] = []
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, imports, node))
        return findings

    def finish(self) -> list[Finding]:
        findings: list[Finding] = []
        for edge, (path, line, method) in sorted(
            self._edges.items(), key=lambda kv: (kv[0].held, kv[0].acquired)
        ):
            reverse = self._edges.get(_Edge(edge.acquired, edge.held))
            if reverse is None or edge.held >= edge.acquired:
                continue
            r_path, r_line, r_method = reverse
            findings.append(
                Finding(
                    rule=self.id,
                    severity=self.severity,
                    path=path,
                    span=SourceSpan(line=line),
                    message=(
                        f"lock-order inversion: {method} acquires "
                        f"{edge.acquired} while holding {edge.held}, but "
                        f"{r_method} ({r_path}:{r_line}) acquires "
                        f"{edge.held} while holding {edge.acquired}"
                    ),
                )
            )
        return findings

    # -- per-class analysis --------------------------------------------------

    def _check_class(
        self, module: ModuleContext, imports: ImportTable, cls: ast.ClassDef
    ) -> list[Finding]:
        locks = self._discover_locks(imports, cls)
        if not locks:
            return []
        methods = {
            item.name: item
            for item in cls.body
            if isinstance(item, ast.FunctionDef)
        }
        getters = self._discover_getters(methods, locks)
        summaries: dict[str, MethodSummary] = {}
        events: list[tuple] = []  # collected per-method under-held events
        for name, fn in methods.items():
            summaries[name] = self._walk_method(
                module, imports, cls.name, fn, locks, getters, events
            )
        self._expand_summaries(summaries)
        findings: list[Finding] = []
        for kind, held, payload, line, method in events:
            if kind == "acquire":
                self._record_acquire(
                    module, cls.name, findings, held, payload, line, method, locks
                )
            elif kind == "blocking":
                findings.append(
                    self.finding(
                        module,
                        SourceSpan(line=line),
                        f"{method} holds {held} across blocking call "
                        f".{payload}(...)",
                    )
                )
            elif kind == "call":
                summary = summaries.get(payload)
                if summary is None:
                    continue
                for acquired in sorted(summary.acquires):
                    self._record_acquire(
                        module,
                        cls.name,
                        findings,
                        held,
                        acquired,
                        line,
                        method,
                        locks,
                    )
                for attr in sorted(summary.blocking):
                    findings.append(
                        self.finding(
                            module,
                            SourceSpan(line=line),
                            f"{method} holds {held} across blocking call "
                            f".{attr}(...) reached via self.{payload}()",
                        )
                    )
        return findings

    def _record_acquire(
        self, module, class_name, findings, held, acquired, line, method, locks
    ) -> None:
        if acquired == held:
            info = locks.get(held)
            if info is not None and not info.reentrant:
                findings.append(
                    self.finding(
                        module,
                        SourceSpan(line=line),
                        f"{method} re-acquires non-reentrant {held} while "
                        "already holding it (self-deadlock)",
                    )
                )
            return
        edge = _Edge(held, acquired)
        self._edges.setdefault(edge, (module.path, line, method))

    # -- discovery -----------------------------------------------------------

    def _discover_locks(
        self, imports: ImportTable, cls: ast.ClassDef
    ) -> dict[str, LockInfo]:
        """``self.X = <factory>()`` assignments anywhere in the class."""
        locks: dict[str, LockInfo] = {}
        aliases: list[tuple[str, str]] = []  # (attr, aliased-to-attr)
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            resolved = imports.resolve(value.func) or ""
            if resolved not in LOCK_FACTORIES:
                continue
            reentrant = LOCK_FACTORIES[resolved]
            # Condition(self.Y) aliases the condition to Y's lock.
            alias_of = None
            if resolved == "threading.Condition" and value.args:
                arg = value.args[0]
                if self._is_self_attr(arg):
                    alias_of = arg.attr
            for target in node.targets:
                if self._is_self_attr(target):
                    name = f"{cls.name}.{target.attr}"
                    if alias_of is not None:
                        aliases.append((target.attr, alias_of))
                    else:
                        locks[name] = LockInfo(name, reentrant)
                elif (
                    isinstance(target, ast.Subscript)
                    and self._is_self_attr(target.value)
                ):
                    name = f"{cls.name}.{target.value.attr}[*]"
                    locks[name] = LockInfo(name, reentrant)
        for attr, alias_of in aliases:
            target = f"{cls.name}.{alias_of}"
            if target in locks:
                locks[f"{cls.name}.{attr}"] = locks[target]
        return locks

    @staticmethod
    def _is_self_attr(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    def _discover_getters(
        self, methods: dict[str, ast.FunctionDef], locks: dict[str, LockInfo]
    ) -> dict[str, str]:
        """Methods that return a known lock → {method: lock name}."""
        getters: dict[str, str] = {}
        for name, fn in methods.items():
            returned = self._returned_lock(fn, locks)
            if returned is not None:
                getters[name] = returned
        return getters

    def _returned_lock(
        self, fn: ast.FunctionDef, locks: dict[str, LockInfo]
    ) -> str | None:
        # Locals bound to a lock attr / dict entry anywhere in the
        # method.  Two passes (assignments to fixpoint, then returns)
        # because ``ast.walk`` is breadth-first: a ``return lock``
        # can be visited before the nested assignment that binds it.
        local_locks: dict[str, str] = {}
        class_name = next(iter(locks)).split(".", 1)[0] if locks else ""
        changed = True
        while changed:
            changed = False
            for node in ast.walk(fn):
                if not isinstance(node, ast.Assign):
                    continue
                resolved = self._lock_of_expr(node.value, locks, local_locks)
                if resolved is None and isinstance(node.value, ast.Call):
                    # ``lock = self._db_locks[k] = threading.Lock()`` —
                    # the chained Subscript target names the family.
                    for target in node.targets:
                        if isinstance(target, ast.Subscript) and (
                            self._is_self_attr(target.value)
                        ):
                            candidate = (
                                f"{class_name}.{target.value.attr}[*]"
                            )
                            if candidate in locks:
                                resolved = candidate
                if resolved is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name) and (
                            local_locks.get(target.id) != resolved
                        ):
                            local_locks[target.id] = resolved
                            changed = True
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                resolved = self._lock_of_expr(node.value, locks, local_locks)
                if resolved is not None:
                    return resolved
        return None

    def _lock_of_expr(
        self,
        node: ast.expr,
        locks: dict[str, LockInfo],
        local_locks: dict[str, str],
        getters: dict[str, str] | None = None,
    ) -> str | None:
        """Lock named by an expression, or None."""
        class_name = next(iter(locks)).split(".", 1)[0] if locks else ""
        if isinstance(node, ast.Name):
            return local_locks.get(node.id)
        if self._is_self_attr(node):
            # .name, not the key: a Condition alias maps the attribute
            # to its underlying lock's canonical name.
            info = locks.get(f"{class_name}.{node.attr}")
            return info.name if info is not None else None
        if isinstance(node, ast.Subscript) and self._is_self_attr(node.value):
            info = locks.get(f"{class_name}.{node.value.attr}[*]")
            return info.name if info is not None else None
        if (
            getters is not None
            and isinstance(node, ast.Call)
            and self._is_self_attr(node.func)
        ):
            return getters.get(node.func.attr)
        return None

    # -- held-stack walking --------------------------------------------------

    def _walk_method(
        self,
        module: ModuleContext,
        imports: ImportTable,
        class_name: str,
        fn: ast.FunctionDef,
        locks: dict[str, LockInfo],
        getters: dict[str, str],
        events: list[tuple],
    ) -> MethodSummary:
        summary = MethodSummary()
        local_locks: dict[str, str] = {}
        held: list[str] = []

        def emit(kind: str, payload: str, line: int) -> None:
            for held_lock in held:
                events.append((kind, held_lock, payload, line, fn.name))

        def walk(stmts: list[ast.stmt]) -> None:
            for stmt in stmts:
                self._scan_expressions(stmt, emit, summary, held)
                if isinstance(stmt, ast.Assign):
                    resolved = self._lock_of_expr(
                        stmt.value, locks, local_locks, getters
                    )
                    if resolved is not None:
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                local_locks[target.id] = resolved
                if isinstance(stmt, ast.With):
                    acquired: list[str] = []
                    for item in stmt.items:
                        lock_name = self._lock_of_expr(
                            item.context_expr, locks, local_locks, getters
                        )
                        if lock_name is not None:
                            summary.acquires.add(lock_name)
                            emit("acquire", lock_name, stmt.lineno)
                            held.append(lock_name)
                            acquired.append(lock_name)
                    walk(stmt.body)
                    for _ in acquired:
                        held.pop()
                elif isinstance(stmt, (ast.If,)):
                    walk(stmt.body)
                    walk(stmt.orelse)
                elif isinstance(stmt, (ast.For, ast.While)):
                    walk(stmt.body)
                    walk(stmt.orelse)
                elif isinstance(stmt, ast.Try):
                    walk(stmt.body)
                    for handler in stmt.handlers:
                        walk(handler.body)
                    walk(stmt.orelse)
                    walk(stmt.finalbody)
                elif isinstance(stmt, ast.Expr) and isinstance(
                    stmt.value, ast.Call
                ):
                    call = stmt.value
                    # explicit .acquire()/.release() on a known lock
                    if isinstance(call.func, ast.Attribute) and (
                        call.func.attr in ("acquire", "release")
                    ):
                        lock_name = self._lock_of_expr(
                            call.func.value, locks, local_locks, getters
                        )
                        if lock_name is not None:
                            if call.func.attr == "acquire":
                                summary.acquires.add(lock_name)
                                emit("acquire", lock_name, stmt.lineno)
                                held.append(lock_name)
                            elif lock_name in held:
                                held.remove(lock_name)

        walk(fn.body)
        return summary

    def _scan_expressions(
        self,
        stmt: ast.stmt,
        emit,
        summary: MethodSummary,
        held: list[str],
    ) -> None:
        """Blocking calls and self-method calls inside one statement.

        Nested ``With`` bodies are walked by the caller with the right
        held stack, so this scan stops at statement boundaries and only
        inspects the expressions owned by ``stmt`` itself.
        """
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.stmt):
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr in BLOCKING_ATTRS:
                    summary.blocking.add(func.attr)
                    emit("blocking", func.attr, sub.lineno)
                elif self._is_self_attr(func):
                    summary.calls.add(func.attr)
                    emit("call", func.attr, sub.lineno)

    def _expand_summaries(self, summaries: dict[str, MethodSummary]) -> None:
        """Propagate acquires/blocking through self-method calls."""
        changed = True
        while changed:
            changed = False
            for summary in summaries.values():
                for callee in list(summary.calls):
                    other = summaries.get(callee)
                    if other is None:
                        continue
                    before = (len(summary.acquires), len(summary.blocking))
                    summary.acquires |= other.acquires
                    summary.blocking |= other.blocking
                    if (
                        len(summary.acquires),
                        len(summary.blocking),
                    ) != before:
                        changed = True
