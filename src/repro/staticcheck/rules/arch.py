"""ARCH001–ARCH008: the architectural rules, on real AST visitors.

Ported from the original ``scripts/arch_lint.py`` core (that script is
now a shim over this registry).  The port closes the old
false-negative classes: import aliases (``import time as t``),
from-imports of clock functions, and multiline call spellings all
resolve through :class:`~repro.staticcheck.rules._util.ImportTable`
instead of matching surface receiver names.

Path-based exemptions live on each rule (``reliability/clock.py`` for
ARCH001, ``sqlgen/``/``analysis/`` for ARCH003, …) and key off the
module path relative to the check root.
"""

from __future__ import annotations

import ast

from repro.staticcheck.findings import Finding
from repro.staticcheck.module import ModuleContext
from repro.staticcheck.registry import Rule, register
from repro.staticcheck.rules._util import (
    ImportTable,
    imported_modules,
    module_matches,
)


@register
class RawClockRule(Rule):
    """Raw clock reads.

    ``time.time()``, ``time.monotonic()``, ``time.perf_counter()``,
    ``datetime.now()`` and ``datetime.utcnow()`` are forbidden
    everywhere in ``src/repro/`` except ``reliability/clock.py``.
    Timing must flow through the injectable
    :class:`repro.reliability.clock.Clock` protocol so tests can use
    ``FakeClock`` instead of sleeping.  Detection is alias-aware:
    ``import time as t; t.time()`` and ``from time import monotonic``
    are both caught.
    """

    id = "ARCH001"
    severity = "error"
    title = "raw clock reads outside reliability/clock.py"

    #: files (relative to the check root) allowed to read raw clocks.
    ALLOWLIST = ("reliability/clock.py",)

    #: qualified call targets that are raw clock reads.
    RAW_CLOCK_CALLS = frozenset(
        {
            "time.time",
            "time.monotonic",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.monotonic_ns",
            "datetime.now",
            "datetime.utcnow",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
        }
    )

    def check(self, module: ModuleContext) -> list[Finding]:
        if module.path in self.ALLOWLIST:
            return []
        imports = ImportTable.from_tree(module.tree)
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved in self.RAW_CLOCK_CALLS:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"raw clock call {resolved}(); inject "
                        "repro.reliability.clock.Clock instead",
                    )
                )
        return findings


@register
class BlanketExceptRule(Rule):
    """Blanket exception swallowing.

    ``except Exception`` / ``except BaseException`` / bare ``except:``
    handlers must either re-raise or classify the failure into the
    library taxonomy (raise a ``ReproError`` subtype, or record it via
    a recognised failure sink such as ``failures[...]`` /
    ``FailureRecord`` / ``classify*``).  Anything else silently
    converts programming errors into wrong results.
    """

    id = "ARCH002"
    severity = "error"
    title = "blanket except without re-raise or taxonomy classification"

    #: identifiers whose presence in a handler marks classification.
    TAXONOMY_SINKS = ("failures", "FailureRecord", "classify")

    def check(self, module: ModuleContext) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and self._is_blanket(node):
                if not (self._reraises(node) or self._classifies(node)):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "blanket except swallows errors; re-raise or "
                            "classify into the failure taxonomy",
                        )
                    )
        return findings

    @staticmethod
    def _is_blanket(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:  # bare except:
            return True
        node = handler.type
        if isinstance(node, ast.Tuple):
            return any(
                isinstance(item, ast.Name)
                and item.id in ("Exception", "BaseException")
                for item in node.elts
            )
        return isinstance(node, ast.Name) and node.id in (
            "Exception",
            "BaseException",
        )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(node, ast.Raise) for node in ast.walk(handler))

    def _classifies(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            name = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            if name and any(sink in name for sink in self.TAXONOMY_SINKS):
                return True
        return False


@register
class LowerComparisonRule(Rule):
    """Ad-hoc case-insensitive identifier comparison.

    Equality comparisons against ``.lower()`` / ``.casefold()`` calls
    (``a.lower() == b.lower()``) outside ``sqlgen/`` and ``analysis/``
    are forbidden: SQL identifier identity is owned by
    ``repro.sqlgen.ast.identifier_key`` / ``ColumnRef.key()`` /
    ``SchemaCatalog`` lookups.  Scattered ``.lower()`` spellings drift
    (casefold vs. lower, one side normalized but not the other) and
    make identifier semantics unauditable.  Normalized-key dict/set
    *lookups* (``name.lower() in mapping``) are the sanctioned catalog
    pattern and stay legal.
    """

    id = "ARCH003"
    severity = "error"
    title = "ad-hoc .lower() identifier comparison outside sqlgen/analysis"

    #: path prefixes that own identifier normalization.
    ALLOWLIST_PREFIXES = ("sqlgen/", "analysis/")

    #: case-normalizing string methods the rule looks for.
    CASE_NORMALIZERS = ("lower", "casefold")

    def check(self, module: ModuleContext) -> list[Finding]:
        if module.path.startswith(self.ALLOWLIST_PREFIXES):
            return []
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Compare) and self._compares_normalized(node):
                findings.append(
                    self.finding(
                        module,
                        node,
                        "ad-hoc .lower() identifier comparison; route "
                        "through repro.sqlgen.ast.identifier_key / "
                        "ColumnRef.key() / SchemaCatalog lookups",
                    )
                )
        return findings

    def _is_normalizer_call(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and not node.args
            and not node.keywords
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self.CASE_NORMALIZERS
        )

    def _compares_normalized(self, node: ast.Compare) -> bool:
        # Membership tests (``key in mapping``) are excluded: looking
        # up a normalized key in a normalized mapping is the catalog
        # pattern, not an ad-hoc comparison.
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return False
        operands = [node.left, *node.comparators]
        return any(self._is_normalizer_call(operand) for operand in operands)


@register
class EngineEncapsulationRule(Rule):
    """Engine stage encapsulation.

    The staged-inference internals (``repro.engine._stages``) may only
    be imported inside ``engine/``; everyone else composes pipelines
    through ``repro.engine.build_default_engine`` or
    ``CodeSParser.build_engine``.  And no module outside ``core/`` or
    ``engine/`` may re-implement the inline generation pipeline —
    detected as importing both of its private ingredients
    (``repro.core.slotfill`` and ``repro.core.ranking``) in one
    module.  The decomposition only stays a refactor if exactly one
    place wires the stages together.
    """

    id = "ARCH004"
    severity = "error"
    title = "engine stage internals / inline pipeline encapsulation"

    STAGE_INTERNALS_MODULE = "repro.engine._stages"
    ENGINE_PREFIX = "engine/"
    PIPELINE_INGREDIENTS = ("repro.core.slotfill", "repro.core.ranking")
    PIPELINE_ALLOWLIST_PREFIXES = ("core/", "engine/")

    def check(self, module: ModuleContext) -> list[Finding]:
        findings = []
        engine_exempt = module.path.startswith(self.ENGINE_PREFIX)
        pipeline_exempt = module.path.startswith(
            self.PIPELINE_ALLOWLIST_PREFIXES
        )
        pipeline_imports: dict[str, int] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            modules = imported_modules(node)
            if not engine_exempt and any(
                module_matches(name, self.STAGE_INTERNALS_MODULE)
                for name in modules
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        "stage internals import (repro.engine._stages) "
                        "outside engine/; compose pipelines via "
                        "repro.engine.build_default_engine",
                    )
                )
            if not pipeline_exempt:
                for name in modules:
                    for ingredient in self.PIPELINE_INGREDIENTS:
                        if module_matches(name, ingredient):
                            pipeline_imports.setdefault(ingredient, node.lineno)
        if len(pipeline_imports) == len(self.PIPELINE_INGREDIENTS):
            from repro.staticcheck.findings import SourceSpan

            findings.append(
                self.finding(
                    module,
                    SourceSpan(line=max(pipeline_imports.values())),
                    "imports every private pipeline ingredient "
                    f"({', '.join(self.PIPELINE_INGREDIENTS)}); the inline "
                    "generation pipeline is wired only in core/ and "
                    "engine/ — go through the staged engine",
                )
            )
        return findings


@register
class ConcurrencyContainmentRule(Rule):
    """Concurrency containment.

    Thread, lock, and queue primitives (``threading``, ``_thread``,
    ``queue``, ``multiprocessing``, ``concurrent.*``) may only be
    imported inside ``serving/`` and ``reliability/``.  The engine,
    the parser, and every model layer stay single-threaded and
    deterministic; all concurrency lives behind the serving facade
    where it is tested on a FakeClock.
    """

    id = "ARCH005"
    severity = "error"
    title = "concurrency primitives outside serving/ and reliability/"

    CONCURRENCY_MODULES = (
        "threading",
        "_thread",
        "queue",
        "multiprocessing",
        "concurrent",
    )
    ALLOWLIST_PREFIXES = ("serving/", "reliability/")

    def check(self, module: ModuleContext) -> list[Finding]:
        if module.path.startswith(self.ALLOWLIST_PREFIXES):
            return []
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for name in imported_modules(node):
                if any(
                    module_matches(name, primitive)
                    for primitive in self.CONCURRENCY_MODULES
                ):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"concurrency primitive import ({name}) "
                            "outside serving/ and reliability/; the "
                            "engine and model layers stay "
                            "single-threaded",
                        )
                    )
                    break
        return findings


@register
class ProviderEncapsulationRule(Rule):
    """Provider encapsulation.

    LM provider *implementations* (``repro.lm.providers.local`` /
    ``.sim`` / ``.router``) may only be imported inside
    ``lm/providers/`` and ``lm/registry.py`` — the registry is the
    sanctioned construction point (``LMRegistry.router_for``).  And
    ``engine/`` and ``serving/`` may import nothing from
    ``repro.lm.providers`` at all (not even the protocol or config):
    the engine reaches providers through ``parser.router`` and serving
    reads router statistics as plain dicts, so failover topology can
    change without touching either layer.
    """

    id = "ARCH006"
    severity = "error"
    title = "provider implementation imports outside the registry"

    PROVIDERS_PACKAGE = "repro.lm.providers"
    #: concrete implementation submodules importable only via the
    #: registry (``base`` and ``config`` are interface/data).
    IMPL_MODULES = ("local", "sim", "router")
    ALLOWLIST_PREFIXES = ("lm/providers/",)
    ALLOWLIST_FILES = ("lm/registry.py",)
    BANNED_PREFIXES = ("engine/", "serving/")

    def check(self, module: ModuleContext) -> list[Finding]:
        if (
            module.path.startswith(self.ALLOWLIST_PREFIXES)
            or module.path in self.ALLOWLIST_FILES
        ):
            return []
        banned = module.path.startswith(self.BANNED_PREFIXES)
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            modules = imported_modules(node)
            touched = any(
                module_matches(name, self.PROVIDERS_PACKAGE)
                for name in modules
            )
            if banned and touched:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{self.PROVIDERS_PACKAGE} import inside engine/ "
                        "or serving/; the engine consumes providers via "
                        "parser.router and serving reads router stats "
                        "as plain dicts",
                    )
                )
            elif any(self._impl_module(name) for name in modules):
                findings.append(
                    self.finding(
                        module,
                        node,
                        "provider implementation import "
                        f"({self.PROVIDERS_PACKAGE}."
                        f"{{{'|'.join(self.IMPL_MODULES)}}}) outside "
                        "lm/providers/; construct routers via "
                        "LMRegistry.router_for or the "
                        "repro.lm.providers package API",
                    )
                )
        return findings

    def _impl_module(self, name: str) -> bool:
        return any(
            module_matches(name, f"{self.PROVIDERS_PACKAGE}.{impl}")
            for impl in self.IMPL_MODULES
        )


@register
class SqliteContainmentRule(Rule):
    """SQLite containment.

    ``sqlite3`` may only be imported inside ``db/backends/`` — the one
    layer that implements the :class:`repro.db.backends.ExecutionBackend`
    protocol over the real engine.  Every other layer (engine stages,
    analysis, eval, serving, datasets) programs against the protocol
    and the backend's :class:`~repro.db.backends.BackendCapabilities`,
    so adding a backend never means chasing stray ``sqlite3`` calls
    through the codebase.  Detection is alias-aware: ``import sqlite3
    as s3`` and ``from sqlite3 import connect`` are both caught.
    """

    id = "ARCH007"
    severity = "error"
    title = "sqlite3 imports outside db/backends/"

    #: the only path prefix allowed to touch the driver module.
    ALLOWLIST_PREFIXES = ("db/backends/",)

    DRIVER_MODULE = "sqlite3"

    def check(self, module: ModuleContext) -> list[Finding]:
        if module.path.startswith(self.ALLOWLIST_PREFIXES):
            return []
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for name in imported_modules(node):
                if module_matches(name, self.DRIVER_MODULE):
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "sqlite3 import outside db/backends/; program "
                            "against the ExecutionBackend protocol "
                            "(repro.db.backends) instead of the driver",
                        )
                    )
                    break
        return findings


@register
class IPCContainmentRule(Rule):
    """Cross-process IPC containment.

    ``multiprocessing`` and ``concurrent.futures`` may only be
    imported inside ``serving/sharding/`` — the transport layer that
    owns worker processes — and pipe/queue IPC primitives
    (``multiprocessing.Pipe``/``Queue``/``Manager``,
    ``ProcessPoolExecutor``) may only be *constructed* there.  ARCH005
    contains thread primitives to ``serving/`` + ``reliability/``;
    this rule narrows the process toolbox further: everything
    cross-process speaks the sharding message protocol through a
    :class:`~repro.serving.sharding.transport.WorkerHandle`, so fork
    semantics, pickling constraints, and pipe lifecycles are audited
    in exactly one place.  Detection is alias-aware: ``import
    multiprocessing as mp; mp.Pipe()`` and ``from multiprocessing
    import Pipe`` are both caught.
    """

    id = "ARCH008"
    severity = "error"
    title = "multiprocessing/IPC primitives outside serving/sharding/"

    #: the only path prefix allowed to speak cross-process.
    ALLOWLIST_PREFIXES = ("serving/sharding/",)

    PROCESS_MODULES = ("multiprocessing", "concurrent.futures")

    #: qualified call targets that construct IPC channels/executors.
    IPC_CONSTRUCTORS = frozenset(
        {
            "multiprocessing.Pipe",
            "multiprocessing.Queue",
            "multiprocessing.SimpleQueue",
            "multiprocessing.JoinableQueue",
            "multiprocessing.Manager",
            "multiprocessing.connection.Pipe",
            "concurrent.futures.ProcessPoolExecutor",
        }
    )

    def check(self, module: ModuleContext) -> list[Finding]:
        if module.path.startswith(self.ALLOWLIST_PREFIXES):
            return []
        imports = ImportTable.from_tree(module.tree)
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for name in imported_modules(node):
                    if any(
                        module_matches(name, banned)
                        for banned in self.PROCESS_MODULES
                    ):
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"cross-process import ({name}) outside "
                                "serving/sharding/; worker processes are "
                                "reached through the sharding transport",
                            )
                        )
                        break
            elif isinstance(node, ast.Call):
                resolved = imports.resolve(node.func)
                if resolved in self.IPC_CONSTRUCTORS:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"IPC primitive {resolved}() constructed "
                            "outside serving/sharding/; pipes and process "
                            "pools live behind the WorkerHandle transport",
                        )
                    )
        return findings
