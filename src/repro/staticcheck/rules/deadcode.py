"""DEAD001: unreachable statements and dead stores.

Two defect classes, both answered by the CFG + dataflow layer:

1. **Unreachable code** — statements with no control-flow path from
   the function (or module) entry: code after ``return`` / ``raise``
   / ``break`` / ``continue``, and code after a ``while True:`` loop
   with no ``break``.  Reachability is computed over every CFG edge
   kind, so code reachable only through an exception handler is
   *not* flagged.  One finding per unreachable region (its first
   statement), not one per statement.
2. **Dead stores** — a local ``name = value`` whose binding is never
   read on any path before being overwritten or falling out of
   scope, per the CFG liveness analysis.  Deliberately scoped tight
   to keep the signal clean: only plain single-name assignments in
   function bodies count; names starting with ``_`` (the discard
   idiom), names referenced from nested scopes (closures), and
   ``global``/``nonlocal`` names are exempt, as are unpacking
   targets, augmented assignments, and loop variables.
"""

from __future__ import annotations

import ast

from repro.staticcheck.cfg import build_cfg, function_nodes
from repro.staticcheck.dataflow import live_after, liveness
from repro.staticcheck.module import ModuleContext
from repro.staticcheck.registry import Rule, register

_NESTED_SCOPES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def _nested_scope_names(fn: ast.AST) -> set[str]:
    """Names referenced anywhere inside nested scopes of ``fn``."""
    names: set[str] = set()
    for node in ast.iter_child_nodes(fn):
        for sub in ast.walk(node):
            if isinstance(sub, _NESTED_SCOPES) and sub is not fn:
                names.update(
                    inner.id
                    for inner in ast.walk(sub)
                    if isinstance(inner, ast.Name)
                )
    return names


def _declared_names(fn: ast.AST) -> set[str]:
    """``global``/``nonlocal`` declarations inside ``fn``."""
    names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            names.update(node.names)
    return names


@register
class DeadCodeRule(Rule):
    __doc__ = __doc__

    id = "DEAD001"
    severity = "error"
    title = "unreachable statement or dead store"

    def check(self, module: ModuleContext) -> list:
        findings = []
        findings.extend(self._unreachable(module, module.tree, "module"))
        for fn in function_nodes(module.tree):
            findings.extend(self._unreachable(module, fn, fn.name))
            findings.extend(self._dead_stores(module, fn))
        return findings

    # -- unreachable regions ------------------------------------------------

    def _unreachable(self, module: ModuleContext, node: ast.AST, scope: str):
        cfg = build_cfg(node)
        reachable = cfg.reachable()
        findings = []
        for block in cfg.blocks:
            if block.index in reachable or not block.elements:
                continue
            # report region heads only: a block fed exclusively by
            # other unreachable blocks is the same region continuing.
            if any(True for _ in cfg.predecessors(block.index)):
                continue
            first = block.elements[0]
            findings.append(
                self.finding(
                    module,
                    first,
                    f"unreachable statement in {scope!r}: no "
                    "control-flow path reaches this line",
                )
            )
        return findings

    # -- dead stores ---------------------------------------------------------

    def _dead_stores(self, module: ModuleContext, fn: ast.AST):
        exempt = _nested_scope_names(fn) | _declared_names(fn)
        cfg = build_cfg(fn)
        reachable = cfg.reachable()
        solution = liveness(cfg)
        findings = []
        for block in cfg.blocks:
            if block.index not in reachable:
                continue
            after = live_after(cfg, solution, block.index)
            for element, live in zip(block.elements, after):
                if not (
                    isinstance(element, ast.Assign)
                    and len(element.targets) == 1
                    and isinstance(element.targets[0], ast.Name)
                ):
                    continue
                name = element.targets[0].id
                if (
                    name.startswith("_")
                    or name in exempt
                    or name in live
                ):
                    continue
                findings.append(
                    self.finding(
                        module,
                        element,
                        f"dead store: the value assigned to {name!r} in "
                        f"{fn.name!r} is never read on any path; drop "
                        "the assignment or use the value",
                    )
                )
        return findings
