"""STAGE001: machine-check the engine stages' reads→writes contracts.

The staged engine's whole correctness story is that the shared
:class:`~repro.engine.context.InferenceContext` is the *only* channel
between stages, so each stage's contract is exactly "reads X, writes
Y".  This rule makes that contract machine-checked instead of a
docstring table: every stage class in ``engine/_stages.py`` must
declare ``reads`` / ``writes`` tuples, and the rule compares them
against the actual attribute loads and stores on the ``ctx`` parameter
in the stage's methods (including module-level helpers the stage calls
with ``ctx``, resolved to a fixpoint).

Three findings per mismatch class:

- **undeclared read** — the body loads ``ctx.X`` but ``X`` is in
  neither ``reads`` nor ``writes`` (reading your own output is legal);
- **undeclared write** — the body stores ``ctx.X`` outside ``writes``;
- **declared-but-unused** — a declared read is never loaded, or a
  declared write is never stored (contract rot in the other
  direction).

``ctx.cache`` and ``ctx.trace`` are engine plumbing injected by
``Engine.run`` and readable ambiently without declaration.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.staticcheck.findings import Finding
from repro.staticcheck.module import ModuleContext
from repro.staticcheck.registry import Rule, register
from repro.staticcheck.rules._util import const_str_tuple

#: the module whose stage classes carry contracts.
STAGE_MODULE = "engine/_stages.py"

#: the context parameter name the convention keys on.
CTX_PARAM = "ctx"

#: fields Engine.run injects; readable without declaration.
AMBIENT_READS = frozenset({"cache", "trace"})


@dataclass
class AccessSet:
    """Attribute loads/stores on ``ctx`` with first-seen lines."""

    reads: dict[str, int] = field(default_factory=dict)
    writes: dict[str, int] = field(default_factory=dict)
    #: names of module-level ``ctx``-taking functions called.
    calls: set[str] = field(default_factory=set)

    def record(self, attr: str, is_store: bool, line: int) -> None:
        target = self.writes if is_store else self.reads
        target.setdefault(attr, line)

    def merge(self, other: "AccessSet", line: int) -> None:
        for attr in other.reads:
            self.reads.setdefault(attr, line)
        for attr in other.writes:
            self.writes.setdefault(attr, line)


def _ctx_param_names(fn: ast.FunctionDef) -> set[str]:
    names = {arg.arg for arg in fn.args.args + fn.args.kwonlyargs}
    return {CTX_PARAM} & names


def _collect_accesses(fn: ast.FunctionDef) -> AccessSet:
    """ctx attribute accesses in one function body (lambdas included)."""
    accesses = AccessSet()
    if not _ctx_param_names(fn):
        return accesses
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and (
            isinstance(node.value, ast.Name) and node.value.id == CTX_PARAM
        ):
            if isinstance(node.ctx, ast.Store):
                accesses.record(node.attr, True, node.lineno)
            elif isinstance(node.ctx, ast.Load):
                accesses.record(node.attr, False, node.lineno)
        elif isinstance(node, ast.AugAssign) and (
            isinstance(node.target, ast.Attribute)
            and isinstance(node.target.value, ast.Name)
            and node.target.value.id == CTX_PARAM
        ):
            # ``ctx.x += 1`` both reads and writes x; the Store branch
            # above already recorded the write.
            accesses.record(node.target.attr, False, node.lineno)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            passes_ctx = any(
                isinstance(arg, ast.Name) and arg.id == CTX_PARAM
                for arg in node.args
            )
            if passes_ctx:
                accesses.calls.add(node.func.id)
    return accesses


def _module_helper_sets(tree: ast.Module) -> dict[str, AccessSet]:
    """Fixpoint access sets for module-level ``ctx``-taking functions."""
    helpers: dict[str, AccessSet] = {}
    fns: dict[str, ast.FunctionDef] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and _ctx_param_names(node):
            fns[node.name] = node
            helpers[node.name] = _collect_accesses(node)
    changed = True
    while changed:
        changed = False
        for name, accesses in helpers.items():
            for callee in list(accesses.calls):
                other = helpers.get(callee)
                if other is None:
                    continue
                before = (len(accesses.reads), len(accesses.writes))
                accesses.merge(other, fns[name].lineno)
                if (len(accesses.reads), len(accesses.writes)) != before:
                    changed = True
    return helpers


@register
class StageContractRule(Rule):
    __doc__ = __doc__

    id = "STAGE001"
    severity = "error"
    title = "engine stage reads→writes contract drift"

    def check(self, module: ModuleContext) -> list[Finding]:
        if not (
            module.path == STAGE_MODULE
            or module.path.endswith("/" + STAGE_MODULE)
        ):
            return []
        helpers = _module_helper_sets(module.tree)
        findings: list[Finding] = []
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_stage(module, node, helpers))
        return findings

    def _check_stage(
        self,
        module: ModuleContext,
        cls: ast.ClassDef,
        helpers: dict[str, AccessSet],
    ) -> list[Finding]:
        attrs = self._class_attrs(cls)
        methods = [
            item
            for item in cls.body
            if isinstance(item, ast.FunctionDef) and _ctx_param_names(item)
        ]
        # A stage is a class with a ``name`` string and a ``run`` method.
        if "name" not in attrs or not any(m.name == "run" for m in methods):
            return []
        stage = attrs["name"]
        if not isinstance(stage, str) or stage == "abstract":
            return []
        declared_reads = attrs.get("reads")
        declared_writes = attrs.get("writes")
        if declared_reads is None or declared_writes is None:
            return [
                self.finding(
                    module,
                    cls,
                    f"stage {stage!r} declares no reads/writes contract; "
                    "add `reads = (...)` and `writes = (...)` class "
                    "attributes",
                )
            ]
        actual = AccessSet()
        for method in methods:
            method_accesses = _collect_accesses(method)
            actual.merge(method_accesses, method.lineno)
            for callee in method_accesses.calls:
                if callee in helpers:
                    actual.merge(helpers[callee], method.lineno)
        findings: list[Finding] = []
        from repro.staticcheck.findings import SourceSpan

        allowed_reads = set(declared_reads) | set(declared_writes) | AMBIENT_READS
        for attr, line in sorted(actual.reads.items()):
            if attr not in allowed_reads:
                findings.append(
                    self.finding(
                        module,
                        SourceSpan(line=line),
                        f"stage {stage!r} reads ctx.{attr} but does not "
                        f"declare it (reads={declared_reads})",
                    )
                )
        for attr, line in sorted(actual.writes.items()):
            if attr not in declared_writes:
                findings.append(
                    self.finding(
                        module,
                        SourceSpan(line=line),
                        f"stage {stage!r} writes ctx.{attr} but does not "
                        f"declare it (writes={declared_writes})",
                    )
                )
        for attr in declared_reads:
            if attr not in actual.reads:
                findings.append(
                    self.finding(
                        module,
                        cls,
                        f"stage {stage!r} declares read {attr!r} but its "
                        "body never loads it; prune the contract",
                    )
                )
        for attr in declared_writes:
            if attr not in actual.writes:
                findings.append(
                    self.finding(
                        module,
                        cls,
                        f"stage {stage!r} declares write {attr!r} but its "
                        "body never stores it; prune the contract",
                    )
                )
        return findings

    @staticmethod
    def _class_attrs(cls: ast.ClassDef) -> dict[str, object]:
        """Literal class attributes: name string, reads/writes tuples."""
        attrs: dict[str, object] = {}
        for item in cls.body:
            if not isinstance(item, ast.Assign) or len(item.targets) != 1:
                continue
            target = item.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id == "name" and isinstance(item.value, ast.Constant):
                attrs["name"] = item.value.value
            elif target.id in ("reads", "writes"):
                value = const_str_tuple(item.value)
                if value is not None:
                    attrs[target.id] = value
        return attrs
