"""Built-in rules.  Importing this package registers all of them.

Modules register by decorating their rule classes with
:func:`repro.staticcheck.registry.register`; the imports below are the
single place the built-in set is enumerated.
"""

from repro.staticcheck.rules import (  # noqa: F401  (registration side effect)
    arch,
    deadcode,
    determinism,
    exceptions,
    locks,
    resources,
    stage_contract,
)

__all__ = [
    "arch",
    "deadcode",
    "determinism",
    "exceptions",
    "locks",
    "resources",
    "stage_contract",
]
