"""Shared AST helpers for rule implementations.

The central piece is :class:`ImportTable`, which resolves local names
through the module's import aliases so rules reason about *qualified*
names instead of surface spellings.  This closes the false-negative
classes the old regex-era checks had: ``import time as t; t.time()``
and ``from time import monotonic; monotonic()`` both resolve to
``time.time`` / ``time.monotonic`` here.
"""

from __future__ import annotations

import ast


class ImportTable:
    """Local-name → dotted-origin map built from a module's imports."""

    def __init__(self):
        #: e.g. {"t": "time", "np": "numpy", "monotonic": "time.monotonic"}
        self.aliases: dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportTable":
        table = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    origin = alias.name if alias.asname else local
                    table.aliases[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table.aliases[local] = f"{node.module}.{alias.name}"
        return table

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted origin of an expression, or ``None`` if not name-like.

        ``t.time`` with ``import time as t`` resolves to ``time.time``;
        an unresolvable base name is kept verbatim (``obj.time`` stays
        ``obj.time``), so callers can still pattern-match heuristically.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))


def imported_modules(node: ast.AST) -> list[str]:
    """Module names an Import/ImportFrom statement references.

    ``from repro.engine import _stages`` reports both ``repro.engine``
    and ``repro.engine._stages`` so submodule imports spelled either
    way are visible to import-policy rules.
    """
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom) and node.module:
        return [node.module] + [
            f"{node.module}.{alias.name}" for alias in node.names
        ]
    return []


def module_matches(module: str, target: str) -> bool:
    """Is ``module`` exactly ``target`` or a name inside it?"""
    return module == target or module.startswith(target + ".")


def const_str_tuple(node: ast.expr) -> tuple[str, ...] | None:
    """The value of a literal tuple/list of string constants, else None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values: list[str] = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant) and isinstance(element.value, str)
        ):
            return None
        values.append(element.value)
    return tuple(values)
