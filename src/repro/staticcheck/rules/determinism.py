"""DET001: determinism lint — the repro must be byte-stable by construction.

Per the text-to-SQL benchmark-evaluation literature, nondeterministic
predictions dominate error tails; this reproduction pins byte-identical
outputs (golden engine parity, seeded loadgen), which one unseeded
draw or one hash-order iteration silently breaks.  Three sub-checks:

- **Unseeded module-level RNG** — calls on the ``random`` *module*
  (``random.random()``, ``random.choice()``, …), ``random.Random()`` /
  ``numpy.random.default_rng()`` with no seed argument, and any
  ``numpy.random.*`` module-level draw.  Seeded instances
  (``random.Random(seed)``, ``default_rng(seed)``) are the sanctioned
  pattern and stay legal.
- **Entropy sources** — ``os.urandom``, ``uuid.uuid4``, and anything
  from ``secrets``: there is no such thing as seeding these.
- **Set-order iteration feeding ordered output** — iterating directly
  over a set literal / ``set(...)`` / set comprehension in a ``for``
  statement, list/generator comprehension, ``list()`` / ``tuple()`` /
  ``enumerate()`` / ``str.join()``: string hashes vary per process
  (``PYTHONHASHSEED``), so the produced order differs across runs.
  Wrap in ``sorted(...)`` or dedupe with ``dict.fromkeys`` (insertion
  -ordered) instead.  Membership tests and set-typed *variables* are
  out of static reach and stay legal.

Alias-aware: ``import numpy as np; np.random.rand()`` and
``from random import choice; choice(xs)`` are both caught.
"""

from __future__ import annotations

import ast

from repro.staticcheck.findings import Finding
from repro.staticcheck.module import ModuleContext
from repro.staticcheck.registry import Rule, register
from repro.staticcheck.rules._util import ImportTable

#: ordered consumers whose argument must not be a bare set expression.
_ORDERED_BUILTIN_CONSUMERS = ("list", "tuple", "enumerate")


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register
class DeterminismRule(Rule):
    __doc__ = __doc__

    id = "DET001"
    severity = "error"
    title = "unseeded randomness or hash-order-dependent iteration"

    def check(self, module: ModuleContext) -> list[Finding]:
        imports = ImportTable.from_tree(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(module, imports, node))
            elif isinstance(node, ast.For):
                findings.extend(
                    self._check_set_iteration(module, node.iter, "for loop")
                )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for generator in node.generators:
                    findings.extend(
                        self._check_set_iteration(
                            module, generator.iter, "comprehension"
                        )
                    )
        return findings

    def _check_call(
        self, module: ModuleContext, imports: ImportTable, node: ast.Call
    ) -> list[Finding]:
        findings: list[Finding] = []
        resolved = imports.resolve(node.func) or ""

        if resolved == "random.Random":
            if not node.args and not node.keywords:
                findings.append(
                    self.finding(
                        module,
                        node,
                        "random.Random() without a seed draws from OS "
                        "entropy; pass an explicit seed",
                    )
                )
        elif resolved == "random.SystemRandom":
            findings.append(
                self.finding(
                    module, node, "random.SystemRandom cannot be seeded"
                )
            )
        elif resolved.startswith("random.") and resolved.count(".") == 1:
            findings.append(
                self.finding(
                    module,
                    node,
                    f"module-level {resolved}() draws from the shared "
                    "unseeded RNG; use a random.Random(seed) instance",
                )
            )
        elif resolved in ("numpy.random.default_rng", "numpy.random.Generator"):
            if resolved.endswith("default_rng") and not (
                node.args or node.keywords
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        "numpy.random.default_rng() without a seed; pass "
                        "an explicit seed",
                    )
                )
        elif resolved.startswith("numpy.random."):
            findings.append(
                self.finding(
                    module,
                    node,
                    f"module-level {resolved}() draws from numpy's global "
                    "unseeded RNG; use numpy.random.default_rng(seed)",
                )
            )
        elif resolved == "os.urandom":
            findings.append(
                self.finding(module, node, "os.urandom is pure OS entropy")
            )
        elif resolved in ("uuid.uuid1", "uuid.uuid4"):
            findings.append(
                self.finding(
                    module,
                    node,
                    f"{resolved}() is nondeterministic; derive ids from "
                    "seeded or content-addressed state",
                )
            )
        elif resolved.startswith("secrets."):
            findings.append(
                self.finding(
                    module, node, f"{resolved}() draws from OS entropy"
                )
            )

        # Ordered consumers over bare set expressions.
        consumer = None
        if isinstance(node.func, ast.Name) and (
            node.func.id in _ORDERED_BUILTIN_CONSUMERS
        ):
            consumer = f"{node.func.id}()"
        elif (
            isinstance(node.func, ast.Attribute) and node.func.attr == "join"
        ):
            consumer = "str.join()"
        if consumer and node.args and _is_set_expr(node.args[0]):
            findings.append(
                self.finding(
                    module,
                    node,
                    f"{consumer} over a set expression produces "
                    "hash-order-dependent output; wrap in sorted(...) or "
                    "dedupe with dict.fromkeys",
                )
            )
        return findings

    def _check_set_iteration(
        self, module: ModuleContext, iter_expr: ast.expr, where: str
    ) -> list[Finding]:
        if _is_set_expr(iter_expr):
            return [
                self.finding(
                    module,
                    iter_expr,
                    f"{where} iterates a set expression in hash order, "
                    "which varies with PYTHONHASHSEED; wrap in "
                    "sorted(...) or dedupe with dict.fromkeys",
                )
            ]
        return []
