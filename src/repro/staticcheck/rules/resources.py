"""RES001: resources must be released on every control-flow path.

File handles (``open()``/``io.open``/``gzip.open``), SQLite
connections (``sqlite3.connect``), cursors (``.cursor()``), and locks
acquired via an explicit ``.acquire()`` call are tracked through a
forward "held resources" dataflow over the function's CFG.  A
resource acquired into a local name is *released* by:

- ``name.close()`` / ``name.release()`` / ``name.shutdown()``;
- being the subject of a ``with`` statement (``with name:`` /
  ``with closing(name):``);
- ``del name``;
- *escaping* — returned, yielded, raised, passed as a call argument,
  aliased to another name, or stored into an attribute, subscript, or
  container.  Ownership moved, so this function is off the hook.

Method calls *on* the resource (``handle.read()``, ``conn.execute``)
are uses, not escapes.  Any path that can reach the function exit —
or re-acquire into the same name — while a resource is still held is
a leak, reported at the acquisition site with a prefer-``with`` hint.
Resources acquired directly in a ``with`` header never enter the
lattice: the context manager owns cleanup, which is the recommended
fix.  The analysis follows normal edges only; exception-path safety
is exactly what ``with`` (or ``try``/``finally``) buys, hence the
hint.  Explicit ``lock.acquire()`` statements add the receiver
expression itself as a held fact until the matching ``.release()``.
"""

from __future__ import annotations

import ast

from repro.staticcheck.cfg import NORMAL, build_cfg, function_nodes
from repro.staticcheck.dataflow import FORWARD, solve
from repro.staticcheck.findings import SourceSpan
from repro.staticcheck.module import ModuleContext
from repro.staticcheck.registry import Rule, register
from repro.staticcheck.rules._util import ImportTable

#: fully-qualified call targets whose result is an owned resource.
RESOURCE_FACTORIES = {
    "open": "file handle",
    "io.open": "file handle",
    "gzip.open": "file handle",
    "sqlite3.connect": "sqlite connection",
}

#: method names whose call result is an owned resource.
RESOURCE_METHODS = {
    "cursor": "cursor",
    "connect": "connection",
}

#: method names that release the receiver.
RELEASE_METHODS = frozenset({"close", "release", "shutdown"})


def _method_call(node: ast.AST) -> tuple[ast.expr, str] | None:
    """(receiver, method name) when ``node`` is ``recv.method(...)``."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
    ):
        return node.func.value, node.func.attr
    return None


@register
class ResourceLeakRule(Rule):
    __doc__ = __doc__

    id = "RES001"
    severity = "error"
    title = "resource may not be released on every path"

    def check(self, module: ModuleContext) -> list:
        imports = ImportTable.from_tree(module.tree)
        findings = []
        for fn in function_nodes(module.tree):
            findings.extend(self._check_function(module, imports, fn))
        return findings

    # -- acquisition/release classification --------------------------------

    def _acquisition(
        self, imports: ImportTable, value: ast.expr
    ) -> str | None:
        """Resource kind produced by evaluating ``value``, or None."""
        if not isinstance(value, ast.Call):
            return None
        resolved = imports.resolve(value.func)
        if resolved in RESOURCE_FACTORIES:
            return RESOURCE_FACTORIES[resolved]
        call = _method_call(value)
        if call is not None and call[1] in RESOURCE_METHODS:
            return RESOURCE_METHODS[call[1]]
        return None

    @staticmethod
    def _escaping_names(element: ast.AST, skip_value: bool = False) -> set[str]:
        """Names that escape through ``element``.

        A loaded ``Name`` escapes unless it is the direct receiver of
        an attribute access (``name.read()`` is a use, not a move).
        """
        receivers: set[int] = set()
        for node in ast.walk(element):
            if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ):
                receivers.add(id(node.value))
        escaped: set[str] = set()
        for node in ast.walk(element):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in receivers
            ):
                escaped.add(node.id)
        return escaped

    # -- the held-resources dataflow ---------------------------------------

    def _check_function(
        self, module: ModuleContext, imports: ImportTable, fn: ast.AST
    ) -> list:
        cfg = build_cfg(fn)
        findings: dict[tuple, None] = {}

        def transfer(element: ast.AST, held: frozenset) -> frozenset:
            held = set(held)

            def kill(name: str) -> None:
                for fact in [f for f in held if f[0] == name]:
                    held.discard(fact)

            # with headers: subjects are released by the CM; bound
            # resources never enter the lattice.
            if isinstance(element, (ast.With, ast.AsyncWith)):
                for item in element.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name):
                        kill(expr.id)
                    call = _method_call(expr)
                    if call is None and isinstance(expr, ast.Call):
                        # closing(conn) and friends take ownership.
                        for arg in expr.args:
                            if isinstance(arg, ast.Name):
                                kill(arg.id)
                return frozenset(held)

            # release calls and explicit .acquire() statements.
            if isinstance(element, ast.Expr):
                call = _method_call(element.value)
                if call is not None:
                    receiver, method = call
                    if method in RELEASE_METHODS:
                        if isinstance(receiver, ast.Name):
                            kill(receiver.id)
                        else:
                            key = f"<{ast.dump(receiver)}>"
                            kill(key)
                        return frozenset(held)
                    if method == "acquire":
                        key = (
                            receiver.id
                            if isinstance(receiver, ast.Name)
                            else f"<{ast.dump(receiver)}>"
                        )
                        for fact in [f for f in held if f[0] == key]:
                            findings[
                                (
                                    fact[1],
                                    f"{fact[2]} acquired here may be "
                                    "re-acquired before release",
                                )
                            ] = None
                        held.add((key, element.lineno, "lock"))
                        return frozenset(held)

            if isinstance(element, ast.Delete):
                for target in element.targets:
                    if isinstance(target, ast.Name):
                        kill(target.id)
                return frozenset(held)

            if isinstance(element, ast.Assign) and len(element.targets) == 1:
                target = element.targets[0]
                kind = self._acquisition(imports, element.value)
                if isinstance(target, ast.Name) and kind is not None:
                    for fact in [f for f in held if f[0] == target.id]:
                        findings[
                            (
                                fact[1],
                                f"{fact[2]} assigned to {fact[0]!r} here is "
                                "overwritten before being released",
                            )
                        ] = None
                        held.discard(fact)
                    held.add((target.id, element.lineno, kind))
                    return frozenset(held)

            # generic escapes (return x, f(x), y = x, self.h = x, ...).
            for name in self._escaping_names(element):
                kill(name)
            return frozenset(held)

        solution = solve(cfg, transfer, direction=FORWARD, kinds=(NORMAL,))
        reachable = cfg.reachable()
        exit_held = solution.block_in[cfg.exit] if cfg.exit in reachable else frozenset()
        for name, line, kind in exit_held:
            label = name if not name.startswith("<") else "resource"
            findings[
                (
                    line,
                    f"{kind} {label!r} acquired here is not released or "
                    "closed on every path to function exit; use a `with` "
                    "block (or close it in a `finally`)",
                )
            ] = None
        return [
            self.finding(module, SourceSpan(line=line), message)
            for line, message in sorted(findings)
        ]
