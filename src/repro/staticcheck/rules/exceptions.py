"""EXC001: exception flow must respect the ``repro.errors`` taxonomy.

Three defect classes, all checked against the *live* taxonomy (the
rule introspects :mod:`repro.errors` at construction, so a new error
class is covered the moment it exists):

1. **Swallowed taxonomy errors** — an ``except ReproError`` (or any
   subclass) handler whose body is nothing but ``pass``/``...`` drops
   a classified library failure on the floor: no re-raise, no record,
   no typed outcome.  Handlers that return, assign, record, or
   reference the bound exception are handling, not swallowing;
   deliberate drops carry an inline suppression with a justification.
2. **Ad-hoc raises** — ``raise Exception(...)`` /
   ``RuntimeError(...)`` / ``BaseException(...)`` bypasses the
   taxonomy: callers can no longer catch library failures without
   also swallowing programming mistakes.  Raise a
   :class:`repro.errors.ReproError` subclass instead.  Specific
   builtin contract errors (``ValueError``, ``TypeError``,
   ``KeyError``, ``NotImplementedError``) stay legal — they signal
   caller bugs, not library failures.
3. **Dead except clauses** — a handler whose every class is already
   caught by a broader handler earlier in the same ``try`` can never
   run (``except ExecutionError`` after ``except ReproError``).  The
   hierarchy check resolves both taxonomy classes and builtins, so
   ``except TimeoutError`` after ``except OSError`` is caught too.
"""

from __future__ import annotations

import ast
import builtins

from repro.staticcheck.module import ModuleContext
from repro.staticcheck.registry import Rule, register
from repro.staticcheck.rules._util import ImportTable

#: generic exception classes that must not be raised directly.
AD_HOC_RAISES = frozenset({"Exception", "BaseException", "RuntimeError"})


def _taxonomy_classes() -> dict[str, type]:
    """Name -> class for every ``ReproError`` subclass (live walk)."""
    from repro.errors import ReproError

    classes: dict[str, type] = {ReproError.__name__: ReproError}
    frontier = [ReproError]
    while frontier:
        cls = frontier.pop()
        for sub in cls.__subclasses__():
            if sub.__name__ not in classes:
                classes[sub.__name__] = sub
                frontier.append(sub)
    return classes


@register
class ExceptionFlowRule(Rule):
    __doc__ = __doc__

    id = "EXC001"
    severity = "error"
    title = "swallowed taxonomy error, ad-hoc raise, or dead except clause"

    def __init__(self):
        self._taxonomy = _taxonomy_classes()

    # -- class resolution ---------------------------------------------------

    def _resolve_class(
        self, imports: ImportTable, node: ast.expr
    ) -> type | None:
        """The exception class an ``except`` clause names, if known."""
        resolved = imports.resolve(node)
        if resolved is None:
            return None
        name = resolved.rsplit(".", 1)[-1]
        if name in self._taxonomy:
            return self._taxonomy[name]
        candidate = getattr(builtins, name, None)
        if isinstance(candidate, type) and issubclass(
            candidate, BaseException
        ):
            return candidate
        return None

    def _handler_classes(
        self, imports: ImportTable, handler: ast.ExceptHandler
    ) -> list[type] | None:
        """Resolved classes for one handler; None when any is unknown."""
        if handler.type is None:
            return [BaseException]
        nodes = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        classes: list[type] = []
        for node in nodes:
            cls = self._resolve_class(imports, node)
            if cls is None:
                return None
            classes.append(cls)
        return classes

    # -- checks -------------------------------------------------------------

    def check(self, module: ModuleContext) -> list:
        imports = ImportTable.from_tree(module.tree)
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Try):
                findings.extend(self._check_try(module, imports, node))
            elif isinstance(node, ast.Raise):
                findings.extend(self._check_raise(module, imports, node))
        return findings

    @staticmethod
    def _is_swallow_body(body: list[ast.stmt]) -> bool:
        """True when the handler body does nothing at all."""
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or `...`
            return False
        return True

    def _check_try(
        self, module: ModuleContext, imports: ImportTable, node: ast.Try
    ) -> list:
        findings = []
        seen: list[tuple[type, int]] = []  # (class, handler line)
        for handler in node.handlers:
            classes = self._handler_classes(imports, handler)

            # 1. swallowed taxonomy error
            if classes is not None and self._is_swallow_body(handler.body):
                from repro.errors import ReproError

                swallowed = sorted(
                    cls.__name__
                    for cls in classes
                    if isinstance(cls, type)
                    and issubclass(cls, ReproError)
                )
                if swallowed:
                    findings.append(
                        self.finding(
                            module,
                            handler,
                            f"handler silently swallows "
                            f"{', '.join(swallowed)}; re-raise, record "
                            "the failure, or return a typed outcome",
                        )
                    )

            # 3. dead except clause
            if classes is not None and seen:
                shadows = []
                for cls in classes:
                    for earlier, line in seen:
                        if issubclass(cls, earlier):
                            shadows.append((cls.__name__, earlier.__name__, line))
                            break
                    else:
                        shadows = []
                        break
                if shadows and len(shadows) == len(classes):
                    name, earlier_name, line = shadows[0]
                    findings.append(
                        self.finding(
                            module,
                            handler,
                            f"dead except clause: {name} is already "
                            f"caught by the broader {earlier_name} "
                            f"handler on line {line}",
                        )
                    )
            if classes is None:
                # an unresolvable class may catch anything; stop
                # reasoning about later handlers in this try.
                break
            seen.extend((cls, handler.lineno) for cls in classes)
        return findings

    def _check_raise(
        self, module: ModuleContext, imports: ImportTable, node: ast.Raise
    ) -> list:
        exc = node.exc
        if exc is None:  # bare re-raise is always fine
            return []
        if isinstance(exc, ast.Call):
            exc = exc.func
        resolved = imports.resolve(exc)
        if resolved is None:
            return []
        name = resolved.rsplit(".", 1)[-1]
        if name in AD_HOC_RAISES and name not in self._taxonomy:
            return [
                self.finding(
                    module,
                    node,
                    f"ad-hoc {name} raise bypasses the repro.errors "
                    "taxonomy; raise a ReproError subclass so callers "
                    "can catch library failures precisely",
                )
            ]
        return []
