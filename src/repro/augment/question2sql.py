"""Question-to-SQL augmentation (§7, Figure 5a).

Start from a handful of genuine annotated (question, SQL) pairs, expand
the questions with the LLM (two-stage prompting), let the LLM write SQL
for each new question, and keep only pairs whose SQL executes.
"""

from __future__ import annotations

from repro.augment.synthetic_llm import SyntheticLLM
from repro.datasets.base import Text2SQLExample
from repro.datasets.generator import GeneratedDatabase
from repro.errors import TrainingError


class QuestionToSQLAugmenter:
    """Expands a small seed set into user-faithful training pairs."""

    def __init__(self, llm: SyntheticLLM | None = None):
        self.llm = llm or SyntheticLLM()

    def augment(
        self,
        seed_examples: list[Text2SQLExample],
        gdb: GeneratedDatabase,
        n_pairs: int,
    ) -> list[Text2SQLExample]:
        """Produce up to ``n_pairs`` new (question, SQL) examples."""
        if not seed_examples:
            raise TrainingError("question-to-SQL augmentation needs seed pairs")
        database = gdb.database
        questions = self.llm.generate_questions(seed_examples, gdb, n_pairs)
        pairs: list[Text2SQLExample] = []
        seen_questions = {example.question for example in seed_examples}
        for question in questions:
            if question in seen_questions:
                continue
            sql = self.llm.write_sql(question, database)
            if not database.is_executable(sql):
                continue  # the LLM hallucinated schema; drop the pair
            seen_questions.add(question)
            pairs.append(
                Text2SQLExample(question=question, sql=sql, db_id=gdb.db_id)
            )
            if len(pairs) >= n_pairs:
                break
        return pairs
