"""A seeded stand-in for the GPT-3.5 calls in the augmentation pipeline.

The paper prompts GPT-3.5 three ways (Figure 5): to imagine new user
questions in the style of a few annotated ones, to write SQL for those
questions given the DDL, and to refine stiff templated questions into
natural phrasing.  Offline, :class:`SyntheticLLM` provides the same
three capabilities deterministically:

- *question generation* samples the question grammar over the target
  database, style-conditioned on the seed questions' template mix;
- *SQL writing* runs a GPT-3.5-tier prompting parser (so, like the real
  API, it sometimes writes wrong SQL — augmentation noise is real);
- *question refinement* applies the paraphrase machinery (carriers,
  synonym swaps) with a temperature-controlled intensity.
"""

from __future__ import annotations

import random

from repro.datasets.base import Text2SQLExample
from repro.datasets.generator import GeneratedDatabase
from repro.datasets.perturb import (
    CARRIER_PHRASES,
    KEYWORD_SYNONYMS,
    _replace_words,
)
from repro.datasets.templates import sample_question_sql
from repro.db.database import Database
from repro.errors import GenerationError


class SyntheticLLM:
    """Deterministic GPT-3.5 stand-in for the augmentation prompts."""

    def __init__(self, seed: int = 0, temperature: float = 0.8):
        if not 0.0 <= temperature <= 2.0:
            raise ValueError(f"temperature must lie in [0, 2], got {temperature}")
        self._rng = random.Random(f"synthetic-llm:{seed}")
        self.temperature = temperature
        self._parser = None

    # -- Figure 5(a), stage 1: new questions in the users' style -----------

    def generate_questions(
        self,
        seed_examples: list[Text2SQLExample],
        gdb: GeneratedDatabase,
        n: int,
    ) -> list[str]:
        """Produce ``n`` new questions mimicking the seeds' intent mix.

        The seeds are shuffled per draw and a high temperature widens
        the template distribution beyond what the seeds cover — the
        paper's recipe for diverse but user-faithful questions.
        """
        from repro.sqlgen.skeleton import try_extract_skeleton

        seed_skeletons = {
            try_extract_skeleton(example.sql) for example in seed_examples
        }
        seed_skeletons.discard(None)
        questions: list[str] = []
        attempts = 0
        while len(questions) < n and attempts < n * 20:
            attempts += 1
            shuffled = list(seed_examples)
            self._rng.shuffle(shuffled)  # prompt-order diversity (§7)
            explore = self._rng.random() < self.temperature * 0.5
            template_id = None if explore else None
            pair = sample_question_sql(gdb, self._rng, template_id=template_id)
            if pair is None:
                continue
            if not explore and seed_skeletons:
                skeleton = try_extract_skeleton(pair.sql)
                if skeleton not in seed_skeletons:
                    continue
            if pair.question not in questions:
                questions.append(pair.question)
        return questions

    # -- Figure 5(a), stage 2: SQL for a generated question ------------------

    def write_sql(self, question: str, database: Database) -> str:
        """Write SQL for ``question`` — with GPT-3.5's imperfection."""
        if self._parser is None:
            from repro.baselines.registry import CLOSED_MODELS
            from repro.core.parser import CodeSParser

            config, _ = CLOSED_MODELS["gpt-3.5"]
            self._parser = CodeSParser(config=config)
        try:
            result = self._parser.generate(question, database, demonstrations=[])
        except GenerationError:
            return "SELECT 1"
        return result.sql

    # -- Figure 5(b): refine a templated question ----------------------------

    def refine_question(
        self, templated_question: str, name_map: dict[str, str] | None = None
    ) -> str:
        """Turn a stiff templated question into natural phrasing.

        ``name_map`` translates raw schema identifiers to their human
        meaning ("c4" -> "currency") — the naturalization the paper's
        GPT-3.5 refinement performs with the DDL in its prompt.
        """
        question = templated_question
        if name_map:
            question = _replace_words(
                question,
                {name: phrase for name, phrase in name_map.items() if name != phrase},
                self._rng,
            )
        if self._rng.random() < self.temperature * 0.6:
            question = _replace_words(
                question, KEYWORD_SYNONYMS, self._rng, probability=0.4
            )
        if self._rng.random() < self.temperature * 0.5:
            carrier = self._rng.choice(CARRIER_PHRASES)
            body = question[0].lower() + question[1:] if question else question
            question = f"{carrier} {body.rstrip('.?')}?"
        # Clean templated artifacts ("the the", double spaces).
        question = " ".join(question.replace(" the the ", " the ").split())
        return question
