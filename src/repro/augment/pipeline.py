"""End-to-end bi-directional augmentation for one new-domain database."""

from __future__ import annotations

from repro.analysis.analyzer import SemanticAnalyzer
from repro.analysis.catalog import SchemaCatalog
from repro.analysis.diagnostics import has_errors
from repro.analysis.equivalence import canonical_key_sql
from repro.augment.question2sql import QuestionToSQLAugmenter
from repro.augment.sql2question import SQLToQuestionAugmenter
from repro.augment.synthetic_llm import SyntheticLLM
from repro.datasets.base import Text2SQLDataset, Text2SQLExample
from repro.db.database import Database
from repro.errors import DatasetError


def admit_clean_pairs(
    pairs: list[Text2SQLExample], database: Database
) -> list[Text2SQLExample]:
    """Admission gate for the augmentation pool.

    Synthetic pairs whose SQL lints with error-tier diagnostics against
    ``database``'s schema catalog are rejected: admitting them would
    teach the parser to emit hallucinated or ill-typed SQL.  Warnings
    (off-FK joins, out-of-subset SQL) pass through.
    """
    analyzer = SemanticAnalyzer(SchemaCatalog.from_database(database))
    return [
        pair for pair in pairs if not has_errors(analyzer.analyze_sql(pair.sql))
    ]


def dedupe_canonical(pairs: list[Text2SQLExample]) -> list[Text2SQLExample]:
    """Drop pairs whose (question, canonical SQL) identity already appeared.

    Surface-variant SQL duplicates — reordered conjuncts, BETWEEN vs.
    range spellings, alias noise — survive string-level dedup but teach
    the parser nothing new; keying on
    :func:`~repro.analysis.equivalence.canonical_key_sql` collapses
    them.  The question rides along in the key so distinct phrasings of
    the same SQL (paraphrase value for retrieval) are kept.
    """
    seen: set[tuple[str, str]] = set()
    unique: list[Text2SQLExample] = []
    for pair in pairs:
        key = (" ".join(pair.question.split()).lower(), canonical_key_sql(pair.sql))
        if key in seen:
            continue
        seen.add(key)
        unique.append(pair)
    return unique


def augment_domain(
    dataset: Text2SQLDataset,
    n_question_to_sql: int = 60,
    n_sql_to_question: int = 90,
    seed: int = 0,
) -> list[Text2SQLExample]:
    """Build an augmented training set for a new-domain dataset.

    ``dataset.train`` plays the role of the few manually annotated seed
    pairs; the result combines authentic (question-to-SQL) and generic
    (SQL-to-question) pairs, plus the seeds themselves — "authenticity
    and broad applicability" (§7).  Every synthetic pair passes the
    :func:`admit_clean_pairs` semantic gate and canonical-key dedup
    (:func:`dedupe_canonical`) before joining the pool; the seeds are
    trusted as-is and stay verbatim at the front.
    """
    if len(dataset.databases) != 1:
        raise DatasetError("domain augmentation expects a single-database dataset")
    db_id = next(iter(dataset.databases))
    gdb = dataset.generated.get(db_id)
    if gdb is None:
        raise DatasetError("domain augmentation needs the generated-database artifacts")

    llm = SyntheticLLM(seed=seed)
    authentic = QuestionToSQLAugmenter(llm).augment(
        dataset.train, gdb, n_question_to_sql
    )
    generic = SQLToQuestionAugmenter(llm, seed=seed).augment(gdb, n_sql_to_question)
    admitted = dedupe_canonical(
        admit_clean_pairs([*authentic, *generic], gdb.database)
    )
    return [*dataset.train, *admitted]
