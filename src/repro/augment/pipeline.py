"""End-to-end bi-directional augmentation for one new-domain database."""

from __future__ import annotations

from repro.analysis.analyzer import SemanticAnalyzer
from repro.analysis.catalog import SchemaCatalog
from repro.analysis.diagnostics import has_errors
from repro.augment.question2sql import QuestionToSQLAugmenter
from repro.augment.sql2question import SQLToQuestionAugmenter
from repro.augment.synthetic_llm import SyntheticLLM
from repro.datasets.base import Text2SQLDataset, Text2SQLExample
from repro.db.database import Database
from repro.errors import DatasetError


def admit_clean_pairs(
    pairs: list[Text2SQLExample], database: Database
) -> list[Text2SQLExample]:
    """Admission gate for the augmentation pool.

    Synthetic pairs whose SQL lints with error-tier diagnostics against
    ``database``'s schema catalog are rejected: admitting them would
    teach the parser to emit hallucinated or ill-typed SQL.  Warnings
    (off-FK joins, out-of-subset SQL) pass through.
    """
    analyzer = SemanticAnalyzer(SchemaCatalog.from_database(database))
    return [
        pair for pair in pairs if not has_errors(analyzer.analyze_sql(pair.sql))
    ]


def augment_domain(
    dataset: Text2SQLDataset,
    n_question_to_sql: int = 60,
    n_sql_to_question: int = 90,
    seed: int = 0,
) -> list[Text2SQLExample]:
    """Build an augmented training set for a new-domain dataset.

    ``dataset.train`` plays the role of the few manually annotated seed
    pairs; the result combines authentic (question-to-SQL) and generic
    (SQL-to-question) pairs, plus the seeds themselves — "authenticity
    and broad applicability" (§7).  Every synthetic pair passes the
    :func:`admit_clean_pairs` semantic gate before joining the pool;
    the seeds are trusted as-is.
    """
    if len(dataset.databases) != 1:
        raise DatasetError("domain augmentation expects a single-database dataset")
    db_id = next(iter(dataset.databases))
    gdb = dataset.generated.get(db_id)
    if gdb is None:
        raise DatasetError("domain augmentation needs the generated-database artifacts")

    llm = SyntheticLLM(seed=seed)
    authentic = QuestionToSQLAugmenter(llm).augment(
        dataset.train, gdb, n_question_to_sql
    )
    generic = SQLToQuestionAugmenter(llm, seed=seed).augment(gdb, n_sql_to_question)
    admitted = admit_clean_pairs([*authentic, *generic], gdb.database)
    return [*dataset.train, *admitted]
