"""Bi-directional data augmentation for new-domain adaptation (§7)."""

from repro.augment.synthetic_llm import SyntheticLLM
from repro.augment.question2sql import QuestionToSQLAugmenter
from repro.augment.sql2question import SQLToQuestionAugmenter
from repro.augment.pipeline import admit_clean_pairs, augment_domain

__all__ = [
    "QuestionToSQLAugmenter",
    "SQLToQuestionAugmenter",
    "SyntheticLLM",
    "admit_clean_pairs",
    "augment_domain",
]
