"""SQL-to-question augmentation (§7, Figure 5b).

SQL templates (the benchmark's template families, standing in for the
75 Spider templates) are slot-filled with the new database's schema;
their *templated questions* — stiff renderings that insert raw table
and column names — are then refined into natural phrasing by the LLM.
"""

from __future__ import annotations

import random

from repro.analysis.analyzer import SemanticAnalyzer
from repro.analysis.catalog import SchemaCatalog
from repro.analysis.diagnostics import has_errors
from repro.augment.synthetic_llm import SyntheticLLM
from repro.datasets.base import Text2SQLExample
from repro.datasets.generator import GeneratedDatabase
from repro.datasets.templates import sample_question_sql, template_ids
from repro.sqlgen.ast import Aggregation, ColumnRef, Query
from repro.sqlgen.parser import parse_sql
from repro.sqlgen.serializer import serialize_condition


def templated_question(query: Query) -> str:
    """A stiff, template-style question for ``query``.

    Inserts raw schema identifiers ("Return the open_date of account
    ...") exactly like the paper's pre-refinement templated questions.
    """
    select_parts = []
    for item in query.select_items:
        expr = item.expr
        if isinstance(expr, Aggregation):
            if expr.arg.column == "*":
                select_parts.append(f"the {expr.func} of rows")
            else:
                select_parts.append(f"the {expr.func} of {expr.arg.column}")
        elif isinstance(expr, ColumnRef):
            target = "all columns" if expr.column == "*" else f"the {expr.column}"
            select_parts.append(target)
    text = f"Return {' and '.join(select_parts)} of {query.from_table}"
    for edge in query.joins:
        text += f" joined with {edge.table}"
    if query.where is not None:
        text += f" where {serialize_condition(query.where).lower()}"
    if query.group_by:
        text += f" grouped by {', '.join(col.column for col in query.group_by)}"
    if query.order_by:
        directions = ", ".join(
            f"{_order_column(item.expr)} {'descending' if item.descending else 'ascending'}"
            for item in query.order_by
        )
        text += f" ordered by {directions}"
    if query.limit is not None:
        text += f" limited to {query.limit}"
    return text + "."


def _order_column(expr) -> str:
    if isinstance(expr, ColumnRef):
        return expr.column
    if isinstance(expr, Aggregation):
        return f"{expr.func} of {expr.arg.column}"
    return str(expr)


def _name_map(gdb: GeneratedDatabase) -> dict[str, str]:
    """Raw identifier -> human phrase for the refinement step."""
    mapping: dict[str, str] = {}
    for (table, column), spec in gdb.column_specs.items():
        mapping[column] = spec.readable()
    for table in gdb.schema.tables:
        mapping[table.name] = gdb.table_noun(table.name)
    return mapping


class SQLToQuestionAugmenter:
    """Generates generic template pairs and refines their questions."""

    def __init__(self, llm: SyntheticLLM | None = None, seed: int = 0):
        self.llm = llm or SyntheticLLM(seed=seed)
        self._rng = random.Random(f"sql2question:{seed}")

    def augment(self, gdb: GeneratedDatabase, n_pairs: int) -> list[Text2SQLExample]:
        """Up to ``n_pairs`` refined (question, SQL) pairs for ``gdb``.

        Sampled SQL is admitted only when it lints clean against the
        database's schema catalog: a dirty template instantiation would
        train the parser to reproduce hallucinated or ill-typed SQL, so
        it is rejected here and another sample is drawn instead.
        """
        ids = template_ids()
        analyzer = SemanticAnalyzer(SchemaCatalog.from_database(gdb.database))
        pairs: list[Text2SQLExample] = []
        seen_sql: set[str] = set()
        attempts = 0
        while len(pairs) < n_pairs and attempts < n_pairs * 15:
            attempts += 1
            template_id = self._rng.choice(ids)
            sampled = sample_question_sql(gdb, self._rng, template_id=template_id)
            if sampled is None or sampled.sql in seen_sql:
                continue
            seen_sql.add(sampled.sql)
            if has_errors(analyzer.analyze_sql(sampled.sql)):
                continue
            stiff = templated_question(parse_sql(sampled.sql))
            refined = self.llm.refine_question(stiff, name_map=_name_map(gdb))
            pairs.append(
                Text2SQLExample(question=refined, sql=sampled.sql, db_id=gdb.db_id)
            )
        return pairs
