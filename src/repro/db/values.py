"""Deterministic generators for realistic database values.

Benchmark databases need plausible content — person names, cities,
dates, categories, free text — so that the value retriever, the BM25
index, and the EX/TS metrics are exercised on realistic strings.
All generation is driven by a seeded :class:`random.Random`.
"""

from __future__ import annotations

import random
from typing import Any

FIRST_NAMES = [
    "Sarah", "James", "Maria", "David", "Anna", "Robert", "Linda", "Wei",
    "Elena", "Omar", "Lucia", "Ivan", "Mei", "Carlos", "Fatima", "John",
    "Petra", "Ahmed", "Julia", "Kenji", "Amara", "Pavel", "Nina", "Hugo",
    "Clara", "Tomas", "Leila", "Viktor", "Rosa", "Daniel",
]

LAST_NAMES = [
    "Martinez", "Smith", "Johnson", "Chen", "Garcia", "Novak", "Kim",
    "Brown", "Silva", "Tanaka", "Kowalski", "Ali", "Petrov", "Larsen",
    "Okafor", "Dubois", "Ricci", "Haddad", "Yilmaz", "Svensson",
    "Fischer", "Moreau", "Santos", "Ivanov", "Nakamura", "Olsen",
]

CITIES = [
    "Jesenik", "Prague", "Boston", "Kyoto", "Lagos", "Lima", "Oslo",
    "Porto", "Graz", "Basel", "Leeds", "Ghent", "Turin", "Malmo",
    "Quito", "Hanoi", "Perth", "Davao", "Tunis", "Varna",
]

COUNTRIES = [
    "United States", "Canada", "France", "Japan", "Brazil", "Nigeria",
    "Czech Republic", "Norway", "Vietnam", "Australia", "Germany",
    "Mexico", "India", "South Korea", "Italy", "Spain",
]

WORDS = [
    "alpha", "harbor", "crimson", "lattice", "meadow", "quartz", "ember",
    "willow", "summit", "cascade", "orchid", "falcon", "granite", "velvet",
    "cobalt", "maple", "onyx", "prairie", "saffron", "tundra", "zephyr",
    "birch", "canyon", "delta", "fjord", "glacier", "horizon", "island",
]

CATEGORIES = [
    "gold", "silver", "bronze", "standard", "premium", "basic", "active",
    "inactive", "pending", "approved", "rejected", "open", "closed",
]


class ValueGenerator:
    """Seeded factory for plausible column values."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def person_name(self) -> str:
        return f"{self._rng.choice(FIRST_NAMES)} {self._rng.choice(LAST_NAMES)}"

    def first_name(self) -> str:
        return self._rng.choice(FIRST_NAMES)

    def city(self) -> str:
        return self._rng.choice(CITIES)

    def country(self) -> str:
        return self._rng.choice(COUNTRIES)

    def word(self) -> str:
        return self._rng.choice(WORDS)

    def phrase(self, length: int = 3) -> str:
        return " ".join(self._rng.choice(WORDS) for _ in range(length))

    def title(self, length: int = 3) -> str:
        return self.phrase(length).title()

    def category(self) -> str:
        return self._rng.choice(CATEGORIES)

    def gender(self) -> str:
        return self._rng.choice(["M", "F"])

    def date(self, start_year: int = 1990, end_year: int = 2023) -> str:
        year = self._rng.randint(start_year, end_year)
        month = self._rng.randint(1, 12)
        day = self._rng.randint(1, 28)
        return f"{year:04d}-{month:02d}-{day:02d}"

    def year(self, start: int = 1940, end: int = 2023) -> int:
        return self._rng.randint(start, end)

    def integer(self, low: int = 0, high: int = 1000) -> int:
        return self._rng.randint(low, high)

    def amount(self, low: float = 10.0, high: float = 100_000.0) -> float:
        return round(self._rng.uniform(low, high), 2)

    def code(self, prefix: str = "C", width: int = 5) -> str:
        return f"{prefix}{self._rng.randint(0, 10 ** width - 1):0{width}d}"

    def email(self) -> str:
        name = self._rng.choice(FIRST_NAMES).lower()
        host = self._rng.choice(WORDS)
        return f"{name}@{host}.example"

    def boolean_flag(self) -> str:
        return self._rng.choice(["Y", "N"])

    def choice(self, options: list[Any]) -> Any:
        return self._rng.choice(options)

    def sample(self, options: list[Any], k: int) -> list[Any]:
        return self._rng.sample(options, min(k, len(options)))

    def shuffle(self, items: list[Any]) -> None:
        self._rng.shuffle(items)

    def random(self) -> float:
        return self._rng.random()

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)
