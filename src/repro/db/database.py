"""Compatibility shim: the SQLite engine moved to ``db/backends/``.

:class:`~repro.db.backends.sqlite.Database` is now one registered
:class:`~repro.db.backends.base.ExecutionBackend` among several; this
module keeps the historical import path alive without importing
``sqlite3`` itself (staticcheck rule ARCH007 confines raw ``sqlite3``
usage to ``db/backends/``).
"""

from __future__ import annotations

from repro.db.backends.base import Row
from repro.db.backends.sqlite import Database

__all__ = ["Database", "Row"]
