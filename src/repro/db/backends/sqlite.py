"""The reference SQLite execution backend.

The paper hosts all benchmark databases in SQLite (§9.1.4); we do the
same.  A :class:`Database` couples a live ``sqlite3`` connection with
the :class:`~repro.db.schema.Schema` (which carries comments and keys
that SQLite itself cannot store).  This module is the only place in the
repository allowed to import ``sqlite3`` (staticcheck rule ARCH007);
everything else reaches execution through the
:class:`~repro.db.backends.base.ExecutionBackend` protocol.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Callable, Iterator

from repro.errors import DeadlineExceededError, ExecutionError, SchemaError
from repro.db.backends.base import SQLITE_CAPABILITIES, BackendCapabilities, Row
from repro.db.schema import Schema
from repro.reliability.deadline import Deadline, ExecutionGuard

#: Abort queries after this many SQLite VM steps (guards runaway joins).
_PROGRESS_STEPS = 20_000_000

#: Polling cadence used when an outer guard must stay responsive while a
#: nested statement runs under the VM-step budget.
_CHAINED_POLL_STEPS = 5_000


class _StepBudget:
    """Progress handler bounding total VM steps, chaining an outer guard.

    When a deadline guard is already installed (an outer frame), the
    nested statement still polls it between step-budget checks, so a
    wall-clock expiry interrupts nested queries too.
    """

    def __init__(self, budget: int, poll: int, outer=None):
        self.remaining = budget
        self.poll = poll
        self.outer = outer

    def __call__(self) -> int:
        self.remaining -= self.poll
        if self.outer is not None and self.outer():
            return 1
        return 1 if self.remaining <= 0 else 0


class Database:
    """A schema plus a populated SQLite connection.

    Build one with :meth:`from_schema`; the connection is in-memory by
    default so that databases are cheap and isolated per experiment.
    Registered as the ``"sqlite"`` :class:`~repro.db.backends.base.
    ExecutionBackend` — the reference backend every other dialect's
    results are conformance-checked against.
    """

    name: str = "sqlite"
    dialect: str = "sqlite"
    capabilities: BackendCapabilities = SQLITE_CAPABILITIES

    def __init__(self, schema: Schema, connection: sqlite3.Connection):
        self.schema = schema
        self._conn = connection
        self._conn.execute("PRAGMA foreign_keys = OFF")
        # sqlite3 cannot report the currently installed progress handler,
        # so nesting is tracked here: each executing frame pushes its
        # handler and pops back to the previous one, which is what lets
        # an outer deadline guard survive nested execute() calls.
        self._handler_stack: list[tuple[Callable[[], int] | None, int]] = []

    # -- progress-handler stack ---------------------------------------------

    def _push_progress_handler(self, callback: Callable[[], int] | None, steps: int) -> None:
        """Install ``callback`` while remembering the current handler."""
        self._handler_stack.append((callback, steps))
        self._conn.set_progress_handler(callback, steps)

    def _pop_progress_handler(self) -> None:
        """Restore the handler that was active before the last push."""
        if not self._handler_stack:
            self._conn.set_progress_handler(None, 0)
            return
        self._handler_stack.pop()
        if self._handler_stack:
            callback, steps = self._handler_stack[-1]
            self._conn.set_progress_handler(callback, steps)
        else:
            self._conn.set_progress_handler(None, 0)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_schema(
        cls,
        schema: Schema,
        rows: dict[str, list[Row]] | None = None,
        path: str = ":memory:",
    ) -> "Database":
        """Create a SQLite database for ``schema`` and load ``rows``.

        ``rows`` maps table names to lists of value tuples ordered like
        the table's columns.  Missing tables are created empty.
        """
        # check_same_thread=False lets serving worker threads execute
        # against a connection opened on the main thread; the serving
        # layer serializes each database's batches behind a per-db
        # lock, so the connection is never used concurrently.
        connection = sqlite3.connect(path, check_same_thread=False)
        database = cls(schema, connection)
        for table in schema.tables:
            column_defs = []
            for column in table.columns:
                definition = f'"{column.name}" {column.storage_type}'
                if column.is_primary:
                    definition += " PRIMARY KEY"
                column_defs.append(definition)
            ddl = f'CREATE TABLE "{table.name}" ({", ".join(column_defs)})'
            connection.execute(ddl)
        if rows:
            database.insert_rows(rows)
        connection.commit()
        return database

    def insert_rows(self, rows: dict[str, list[Row]]) -> None:
        """Bulk-insert ``rows`` (table name -> tuples) into this database."""
        for table_name, table_rows in rows.items():
            if not self.schema.has_table(table_name):
                raise SchemaError(f"unknown table {table_name!r}")
            table = self.schema.table(table_name)
            placeholders = ", ".join("?" for _ in table.columns)
            statement = f'INSERT INTO "{table.name}" VALUES ({placeholders})'
            try:
                self._conn.executemany(statement, table_rows)
            except sqlite3.Error as exc:
                raise ExecutionError(
                    f"failed to insert into {table_name}: {exc}"
                ) from exc
        self._conn.commit()

    def clone_with_rows(self, rows: dict[str, list[Row]]) -> "Database":
        """Fresh database with the same schema but different content.

        Used to build the database variants behind test-suite accuracy.
        """
        return Database.from_schema(self.schema, rows)

    def close(self) -> None:
        self._conn.close()

    # -- execution ----------------------------------------------------------

    def execute(
        self, sql: str, max_rows: int = 100_000, deadline: Deadline | None = None
    ) -> list[Row]:
        """Run ``sql`` and return its rows.

        Raises :class:`ExecutionError` on any SQLite error (syntax,
        missing schema elements, interrupted query).  With a
        ``deadline``, the statement is additionally polled against the
        wall clock and aborted with :class:`DeadlineExceededError` —
        a subclass of :class:`ExecutionError` — once the budget is
        spent.
        """
        if deadline is not None:
            try:
                with ExecutionGuard(self, deadline):
                    cursor = self._conn.execute(sql)
                    return cursor.fetchmany(max_rows)
            except sqlite3.Error as exc:
                raise ExecutionError(f"{type(exc).__name__}: {exc}") from exc
        outer = self._handler_stack[-1][0] if self._handler_stack else None
        poll = _CHAINED_POLL_STEPS if outer is not None else _PROGRESS_STEPS
        self._push_progress_handler(_StepBudget(_PROGRESS_STEPS, poll, outer), poll)
        try:
            cursor = self._conn.execute(sql)
            return cursor.fetchmany(max_rows)
        except sqlite3.Error as exc:
            raise ExecutionError(f"{type(exc).__name__}: {exc}") from exc
        finally:
            self._pop_progress_handler()

    def is_executable(self, sql: str, deadline: Deadline | None = None) -> bool:
        """True when ``sql`` runs without error on this database.

        A deadline expiry counts as "not executable": the query may be
        valid SQL, but it cannot answer within the serving budget.
        """
        try:
            self.execute(sql, max_rows=1, deadline=deadline)
            return True
        except ExecutionError:  # includes DeadlineExceededError
            return False

    # -- value access -------------------------------------------------------

    def row_count(self, table_name: str) -> int:
        table = self.schema.table(table_name)
        rows = self.execute(f'SELECT COUNT(*) FROM "{table.name}"')
        return int(rows[0][0])

    def total_value_count(self) -> int:
        """Total number of stored cells across all tables."""
        total = 0
        for table in self.schema.tables:
            total += self.row_count(table.name) * len(table.columns)
        return total

    def representative_values(
        self, table_name: str, column_name: str, k: int = 2
    ) -> list[Any]:
        """First ``k`` distinct non-null values of a column (§6.3 (3)).

        Mirrors the paper's probe query::

            SELECT DISTINCT {COLUMN} FROM {TABLE}
            WHERE {COLUMN} IS NOT NULL LIMIT {k}
        """
        table = self.schema.table(table_name)
        column = table.column(column_name)
        sql = (
            f'SELECT DISTINCT "{column.name}" FROM "{table.name}" '
            f'WHERE "{column.name}" IS NOT NULL LIMIT {int(k)}'
        )
        return [row[0] for row in self.execute(sql)]

    def distinct_values(
        self, table_name: str, column_name: str, limit: int = 10_000
    ) -> list[Any]:
        """Distinct non-null values of a column, up to ``limit``."""
        table = self.schema.table(table_name)
        column = table.column(column_name)
        sql = (
            f'SELECT DISTINCT "{column.name}" FROM "{table.name}" '
            f'WHERE "{column.name}" IS NOT NULL LIMIT {int(limit)}'
        )
        return [row[0] for row in self.execute(sql)]

    def iter_text_values(self) -> Iterator[tuple[str, str, str]]:
        """Yield ``(table, column, value)`` for every distinct text value.

        This is the stream the BM25 value index is built from.
        """
        for table in self.schema.tables:
            for column in table.columns:
                if column.type.upper() not in ("TEXT", "DATE"):
                    continue
                for value in self.distinct_values(table.name, column.name):
                    if isinstance(value, str) and value:
                        yield table.name, column.name, value

    def table_rows(self, table_name: str) -> list[Row]:
        """All rows of a table (for cloning / perturbation)."""
        table = self.schema.table(table_name)
        return self.execute(f'SELECT * FROM "{table.name}"')

    def all_rows(self) -> dict[str, list[Row]]:
        """Complete content snapshot keyed by table name."""
        return {table.name: self.table_rows(table.name) for table in self.schema.tables}
