"""Pluggable execution backends behind the :class:`ExecutionBackend` protocol.

Two backends ship today:

* ``"sqlite"`` — the reference :class:`~repro.db.backends.sqlite.Database`
  (a real ``sqlite3`` engine; the dialect every golden file is pinned to).
* ``"columnar"`` — :class:`~repro.db.backends.columnar.ColumnarBackend`,
  an in-memory columnar interpreter of the sqlgen AST that speaks the
  ANSI dialect (double-quoted identifiers, ``FETCH FIRST``, ``<>``).

``create_backend(name, database)`` adapts the reference database into
the named backend; the cross-dialect conformance suite
(:mod:`repro.eval.conformance`) result-compares every registered
backend against SQLite on the bundled gold sets.
"""

from repro.db.backends.base import (
    SQLITE_CAPABILITIES,
    BackendCapabilities,
    ExecutionBackend,
    Row,
    available_backends,
    backend_dialect,
    backend_for_dialect,
    create_backend,
    register_backend,
)
from repro.db.backends.columnar import COLUMNAR_CAPABILITIES, ColumnarBackend
from repro.db.backends.sqlite import Database

register_backend("sqlite", lambda database: database, dialect="sqlite")
register_backend(
    "columnar", ColumnarBackend.from_database, dialect=COLUMNAR_CAPABILITIES.dialect
)

__all__ = [
    "COLUMNAR_CAPABILITIES",
    "SQLITE_CAPABILITIES",
    "BackendCapabilities",
    "ColumnarBackend",
    "Database",
    "ExecutionBackend",
    "Row",
    "available_backends",
    "backend_dialect",
    "backend_for_dialect",
    "create_backend",
    "register_backend",
]
