"""Execution backend protocol, capability flags, and the backend registry.

An :class:`ExecutionBackend` is anything that can run SQL for one
schema: the real SQLite engine, the in-memory columnar executor, or a
future networked engine.  Every layer above the database — engine
stages, analyzer, eval harness, serving — programs against this
protocol plus the backend's :class:`BackendCapabilities`, never against
``sqlite3`` directly (enforced by staticcheck rule ARCH007).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Protocol, runtime_checkable

from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.db.schema import Schema
    from repro.reliability.deadline import Deadline

Row = tuple[Any, ...]


@dataclass(frozen=True)
class BackendCapabilities:
    """Dialect and semantic quirks of one execution backend.

    The syntactic flags (``identifier_quote``, ``limit_style``,
    ``inequality``) drive the dialect emitters in
    :mod:`repro.sqlgen.dialects`; the semantic flags describe runtime
    behaviour the analyzer and executors must honour.
    """

    #: Dialect name understood by :func:`repro.sqlgen.dialects.emitter_for`.
    dialect: str = "sqlite"
    #: Quote character for identifiers ("" = bare identifiers).
    identifier_quote: str = ""
    #: Row-limit spelling: "limit" | "fetch_first" | "top".
    limit_style: str = "limit"
    #: Not-equal operator spelling.
    inequality: str = "!="
    #: String concatenation operator.
    string_concat: str = "||"
    #: True when ``/`` on integers yields a real (ANSI) rather than the
    #: truncated integer quotient (SQLite).
    true_division: bool = False
    #: Date-part extraction idiom ("strftime" vs "extract").
    date_function: str = "strftime"
    #: True when LIKE compares case-sensitively (SQLite: ASCII-insensitive).
    like_case_sensitive: bool = False


#: Capabilities of the reference SQLite backend.
SQLITE_CAPABILITIES = BackendCapabilities(
    dialect="sqlite",
    identifier_quote="",
    limit_style="limit",
    inequality="!=",
    string_concat="||",
    true_division=False,
    date_function="strftime",
    like_case_sensitive=False,
)


@runtime_checkable
class ExecutionBackend(Protocol):
    """Runtime-checkable protocol every execution backend satisfies.

    Attributes are data members (``isinstance`` verifies presence, not
    types): ``schema`` (the :class:`~repro.db.schema.Schema`), ``name``
    (registry name), ``dialect`` (the SQL dialect the backend parses and
    the emitters must produce for it) and ``capabilities``.
    """

    schema: "Schema"
    name: str
    dialect: str
    capabilities: BackendCapabilities

    def execute(
        self,
        sql: str,
        max_rows: int = 100_000,
        deadline: "Deadline | None" = None,
    ) -> list[Row]:
        """Run ``sql``; raise :class:`~repro.errors.ExecutionError` on failure."""
        ...

    def is_executable(self, sql: str, deadline: "Deadline | None" = None) -> bool:
        """True when ``sql`` runs without error within the deadline."""
        ...

    def row_count(self, table_name: str) -> int:
        ...

    def representative_values(
        self, table_name: str, column_name: str, k: int = 2
    ) -> list[Any]:
        ...

    def distinct_values(
        self, table_name: str, column_name: str, limit: int = 10_000
    ) -> list[Any]:
        ...

    def table_rows(self, table_name: str) -> list[Row]:
        ...

    def all_rows(self) -> dict[str, list[Row]]:
        ...

    def close(self) -> None:
        ...


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: Factories keyed by backend name.  Each takes the reference SQLite
#: ``Database`` (the form every bundled dataset ships in) and returns a
#: backend exposing the same schema and content.
_BACKENDS: dict[str, Callable[[Any], ExecutionBackend]] = {}

#: Dialect spoken by each registered backend (parallel to ``_BACKENDS``).
_BACKEND_DIALECTS: dict[str, str] = {}


def register_backend(
    name: str,
    factory: Callable[[Any], ExecutionBackend],
    dialect: str = "sqlite",
) -> None:
    """Register ``factory`` under ``name`` (last registration wins).

    ``dialect`` is the SQL dialect instances of the backend parse; it
    lets :func:`backend_for_dialect` map a user-facing ``--dialect``
    flag to the backend that executes it.
    """
    _BACKENDS[name] = factory
    _BACKEND_DIALECTS[name] = dialect


def available_backends() -> tuple[str, ...]:
    """Registered backend names in registration order."""
    return tuple(_BACKENDS)


def backend_for_dialect(dialect: str) -> str:
    """The registered backend name that executes ``dialect``.

    When several backends share a dialect the first registered wins.
    """
    for name, spoken in _BACKEND_DIALECTS.items():
        if spoken == dialect:
            return name
    known = ", ".join(sorted(set(_BACKEND_DIALECTS.values())))
    raise ExecutionError(
        f"no execution backend speaks dialect {dialect!r} (known: {known})"
    )


def create_backend(name: str, database: Any) -> ExecutionBackend:
    """Instantiate backend ``name`` over ``database``'s schema and content.

    ``database`` is the reference SQLite :class:`~repro.db.backends.
    sqlite.Database`; the ``"sqlite"`` factory returns it unchanged,
    other factories snapshot its content into their own storage.
    """
    try:
        factory = _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise ExecutionError(
            f"unknown execution backend {name!r} (known: {known})"
        ) from None
    return factory(database)


def backend_dialect(database: Any) -> str:
    """The dialect a database object speaks (``"sqlite"`` for legacy objects).

    Accepts anything: fault-injection wrappers and test doubles that
    predate the backend protocol simply default to the reference
    dialect.
    """
    return getattr(database, "dialect", "sqlite")
