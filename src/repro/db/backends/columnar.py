"""In-memory columnar execution backend speaking the ANSI dialect.

A second, fully offline :class:`~repro.db.backends.base.ExecutionBackend`
with deliberately different surface syntax from SQLite: double-quoted
identifiers, ``FETCH FIRST n ROWS ONLY`` row limits and ``<>``
inequality (see :class:`repro.sqlgen.dialects.ansi.ANSIEmitter`).  It
stores table content column-major and interprets the sqlgen AST
directly, matching SQLite's *observable* semantics — three-valued
logic, NULL-last aggregation, affinity coercion of literals, ASCII
case-insensitive LIKE — so the cross-dialect conformance suite can
result-compare it against the reference backend on every bundled gold
set.

The executor exists for two reasons: it proves the backend protocol is
real (nothing above ``db/`` knows which engine runs a query), and it is
the permanent conformance counterweight that keeps future backends
honest about dialect quirks.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Iterator, Optional, Union

from repro.errors import ExecutionError, SQLSyntaxError
from repro.db.backends.base import BackendCapabilities, Row
from repro.db.schema import Schema, Table
from repro.reliability.deadline import Deadline
from repro.sqlgen.ast import (
    Aggregation,
    BetweenCondition,
    BinaryCondition,
    ColumnRef,
    CompoundCondition,
    Condition,
    Expression,
    InCondition,
    LikeCondition,
    Literal,
    NullCondition,
    Query,
    identifier_key,
    normalize_number,
)
from repro.sqlgen.dialects import parse_dialect_sql
from repro.sqlgen.lexer import TokenKind, tokenize_sql

#: Capabilities of the columnar backend (the "ansi" dialect).
COLUMNAR_CAPABILITIES = BackendCapabilities(
    dialect="ansi",
    identifier_quote='"',
    limit_style="fetch_first",
    inequality="<>",
    string_concat="||",
    true_division=True,
    date_function="extract",
    like_case_sensitive=False,
)

#: Poll an active deadline every this many row visits.
_DEADLINE_POLL_OPS = 1024

#: Functions evaluated over a whole group.
_AGGREGATE_FUNCS = frozenset({"count", "sum", "avg", "min", "max"})

#: Single-argument scalar functions the executor evaluates row-wise.
_SCALAR_FUNCS = frozenset({"abs", "round", "length", "upper", "lower"})

#: One row environment: ``table.column`` key -> cell value.
_Env = dict[str, Any]


class ColumnarBackend:
    """Column-major in-memory backend executing the sqlgen AST."""

    name: str = "columnar"
    dialect: str = "ansi"
    capabilities: BackendCapabilities = COLUMNAR_CAPABILITIES

    def __init__(
        self,
        schema: Schema,
        rows: dict[str, list[Row]] | None = None,
        capabilities: BackendCapabilities | None = None,
    ):
        self.schema = schema
        if capabilities is not None:
            self.capabilities = capabilities
            self.dialect = capabilities.dialect
        # Column-major storage: table key -> column key -> value list.
        self._columns: dict[str, dict[str, list[Any]]] = {}
        self._nrows: dict[str, int] = {}
        rows = rows or {}
        for table in schema.tables:
            table_key = identifier_key(table.name)
            content = rows.get(table.name)
            if content is None:
                # Accept snapshots keyed under any casing of the name.
                for key, value in rows.items():
                    if identifier_key(key) == table_key:
                        content = value
                        break
            content = content or []
            store: dict[str, list[Any]] = {
                identifier_key(column.name): [] for column in table.columns
            }
            for row in content:
                if len(row) != len(table.columns):
                    raise ExecutionError(
                        f"row width {len(row)} != {len(table.columns)} "
                        f"columns in table {table.name!r}"
                    )
                for column, value in zip(table.columns, row):
                    store[identifier_key(column.name)].append(value)
            self._columns[table_key] = store
            self._nrows[table_key] = len(content)

    @classmethod
    def from_database(cls, database: Any) -> "ColumnarBackend":
        """Snapshot a reference backend's schema and content."""
        return cls(database.schema, database.all_rows())

    def with_capabilities(self, **overrides: Any) -> "ColumnarBackend":
        """Copy of this backend with tweaked capability flags (for tests)."""
        caps = dataclasses.replace(self.capabilities, **overrides)
        clone = ColumnarBackend(self.schema, capabilities=caps)
        clone._columns = self._columns
        clone._nrows = self._nrows
        return clone

    # -- execution ----------------------------------------------------------

    def execute(
        self, sql: str, max_rows: int = 100_000, deadline: Deadline | None = None
    ) -> list[Row]:
        """Run ``sql`` (in this backend's dialect) and return its rows.

        Raises :class:`ExecutionError` for syntax errors, unknown schema
        elements, or unsupported constructs, and
        :class:`~repro.errors.DeadlineExceededError` once ``deadline``
        expires (polled during row iteration).
        """
        if deadline is not None:
            deadline.check("execution")
        try:
            literal_row = _parse_literal_select(sql)
            if literal_row is not None:
                return [literal_row][:max_rows]
            query = parse_dialect_sql(sql, self.dialect)
        except SQLSyntaxError as exc:
            raise ExecutionError(f"{type(exc).__name__}: {exc}") from exc
        rows = _Evaluator(self, deadline).run(query)
        return rows[:max_rows]

    def is_executable(self, sql: str, deadline: Deadline | None = None) -> bool:
        """True when ``sql`` runs without error within the deadline."""
        try:
            self.execute(sql, max_rows=1, deadline=deadline)
            return True
        except ExecutionError:  # includes DeadlineExceededError
            return False

    def close(self) -> None:
        self._columns = {}
        self._nrows = {}

    # -- value access -------------------------------------------------------

    def _table_store(self, table_name: str) -> tuple[Table, dict[str, list[Any]], int]:
        table = self.schema.table(table_name)
        key = identifier_key(table.name)
        return table, self._columns[key], self._nrows[key]

    def row_count(self, table_name: str) -> int:
        _, _, nrows = self._table_store(table_name)
        return nrows

    def total_value_count(self) -> int:
        """Total number of stored cells across all tables."""
        total = 0
        for table in self.schema.tables:
            total += self.row_count(table.name) * len(table.columns)
        return total

    def representative_values(
        self, table_name: str, column_name: str, k: int = 2
    ) -> list[Any]:
        """First ``k`` distinct non-null values of a column (§6.3 (3))."""
        return self.distinct_values(table_name, column_name, limit=int(k))

    def distinct_values(
        self, table_name: str, column_name: str, limit: int = 10_000
    ) -> list[Any]:
        """Distinct non-null values in storage order, up to ``limit``."""
        table, store, _ = self._table_store(table_name)
        column = table.column(column_name)
        values = store[identifier_key(column.name)]
        out: list[Any] = []
        seen: dict[Any, None] = {}
        for value in values:
            if value is None or value in seen:
                continue
            seen[value] = None
            out.append(value)
            if len(out) >= int(limit):
                break
        return out

    def iter_text_values(self) -> Iterator[tuple[str, str, str]]:
        """Yield ``(table, column, value)`` for every distinct text value."""
        for table in self.schema.tables:
            for column in table.columns:
                if column.type.upper() not in ("TEXT", "DATE"):
                    continue
                for value in self.distinct_values(table.name, column.name):
                    if isinstance(value, str) and value:
                        yield table.name, column.name, value

    def table_rows(self, table_name: str) -> list[Row]:
        """All rows of a table, reassembled row-major."""
        table, store, nrows = self._table_store(table_name)
        columns = [store[identifier_key(column.name)] for column in table.columns]
        return [tuple(column[i] for column in columns) for i in range(nrows)]

    def all_rows(self) -> dict[str, list[Row]]:
        """Complete content snapshot keyed by table name."""
        return {table.name: self.table_rows(table.name) for table in self.schema.tables}


# ---------------------------------------------------------------------------
# SELECT-without-FROM (sentinel queries)
# ---------------------------------------------------------------------------


def _parse_literal_select(sql: str) -> Optional[Row]:
    """Recognize ``SELECT <literal>[, <literal>...]`` with no FROM clause.

    The degradation ladder's sentinel (``SELECT 1``) is outside the core
    grammar, which requires a FROM clause; every real engine accepts it,
    so this backend does too.  Lexical errors propagate as
    :class:`SQLSyntaxError` for the caller to classify.
    """
    tokens = tokenize_sql(sql)
    # Keyword-token comparison via the lexer's own case folding — not
    # an identifier comparison.
    if not tokens or tokens[0].lower() != "select":  # staticcheck: disable=ARCH003
        return None
    values: list[Any] = []
    i = 1
    while i < len(tokens):
        token = tokens[i]
        if token.kind is TokenKind.NUMBER:
            values.append(float(token.value) if "." in token.value else int(token.value))
        elif token.kind is TokenKind.STRING:
            values.append(token.value[1:-1].replace("''", "'"))
        elif token.kind is TokenKind.KEYWORD and token.lower() == "null":  # staticcheck: disable=ARCH003
            values.append(None)
        else:
            return None
        i += 1
        nxt = tokens[i]
        if nxt.kind is TokenKind.EOF:
            return tuple(values)
        if not (nxt.kind is TokenKind.PUNCT and nxt.value == ","):
            return None
        i += 1
    return None


# ---------------------------------------------------------------------------
# SQLite-compatible value semantics
# ---------------------------------------------------------------------------


def _type_rank(value: Any) -> int:
    if isinstance(value, bool) or isinstance(value, (int, float)):
        return 0
    if isinstance(value, str):
        return 1
    return 2


def _compare(a: Any, b: Any) -> Optional[int]:
    """SQLite ordering: NULL propagates, numbers < text < blob."""
    if a is None or b is None:
        return None
    rank_a, rank_b = _type_rank(a), _type_rank(b)
    if rank_a != rank_b:
        return -1 if rank_a < rank_b else 1
    if rank_a == 0:
        fa, fb = float(a), float(b)
        return (fa > fb) - (fa < fb)
    return (a > b) - (a < b)


def _value_key(value: Any) -> tuple:
    """Canonical grouping/distinct key consistent with :func:`_compare`."""
    if value is None:
        return (-1,)
    rank = _type_rank(value)
    if rank == 0:
        return (0, float(value))
    return (rank, value)


def _sort_key(value: Any) -> tuple:
    """ORDER BY key: NULLs first, then numbers, then text, then blobs."""
    return _value_key(value)


def _row_key(row: Row) -> tuple:
    return tuple(_value_key(value) for value in row)


def _parse_numeric_text(text: str) -> Optional[Union[int, float]]:
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return None


def _coerce_to_affinity(value: Any, storage_type: str) -> Any:
    """Apply SQLite column affinity to a bare literal before comparison."""
    if value is None:
        return None
    if storage_type in ("INTEGER", "REAL"):
        if isinstance(value, str):
            number = _parse_numeric_text(value)
            return value if number is None else number
        return value
    if isinstance(value, bool) or isinstance(value, (int, float)):
        return normalize_number(value)
    return value


def _like_to_regex(pattern: str) -> str:
    out: list[str] = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return "".join(out)


def _as_text(value: Any) -> Optional[str]:
    if value is None:
        return None
    if isinstance(value, str):
        return value
    if isinstance(value, bool) or isinstance(value, (int, float)):
        return normalize_number(value)
    return str(value)


def _as_number(value: Any) -> Optional[Union[int, float]]:
    """SQLite numeric coercion: text parses its numeric prefix, else 0."""
    if value is None:
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    number = _parse_numeric_text(str(value))
    return 0 if number is None else number


# ---------------------------------------------------------------------------
# Evaluation contexts
# ---------------------------------------------------------------------------


class _RowCtx:
    """One ungrouped row."""

    __slots__ = ("env",)

    def __init__(self, env: _Env):
        self.env = env

    members: Optional[list[_Env]] = None


class _GroupCtx:
    """One group of rows (GROUP BY bucket, or the whole-table group)."""

    __slots__ = ("env", "members")

    def __init__(self, members: list[_Env]):
        self.members = members
        self.env = members[0] if members else {}


_Ctx = Union[_RowCtx, _GroupCtx]


class _Evaluator:
    """Interprets one parsed query tree against the columnar store."""

    def __init__(self, backend: ColumnarBackend, deadline: Deadline | None):
        self.backend = backend
        self.schema = backend.schema
        self.deadline = deadline
        self._ops = 0
        # Uncorrelated subqueries evaluate once per statement.
        self._subquery_memo: dict[int, list[Row]] = {}

    # -- bookkeeping ---------------------------------------------------------

    def _tick(self) -> None:
        self._ops += 1
        if self.deadline is not None and self._ops % _DEADLINE_POLL_OPS == 0:
            self.deadline.check("execution")

    # -- entry ---------------------------------------------------------------

    def run(self, query: Query) -> list[Row]:
        if query.compound_query is None:
            return [row for _, row in self._simple(query)]
        arms = list(query.compound_chain())
        combined = [row for _, row in self._simple(arms[0], skip_order_limit=True)]
        for index in range(1, len(arms)):
            arm = arms[index]
            rows = [row for _, row in self._simple(arm, skip_order_limit=True)]
            if rows and combined and len(rows[0]) != len(combined[0]):
                raise ExecutionError(
                    "SELECTs to the left and right of "
                    f"{arms[index - 1].compound_op or 'the set operation'} do not "
                    "have the same number of result columns"
                )
            combined = _apply_set_op(
                arms[index - 1].compound_op.upper(), combined, rows
            )
        last = arms[-1]
        if last.order_by:
            combined = self._order_compound(arms[0], last, combined)
        if last.limit is not None:
            combined = combined[: last.limit]
        return combined

    # -- simple (non-compound) SELECT ---------------------------------------

    def _simple(
        self, query: Query, skip_order_limit: bool = False
    ) -> list[tuple[_Ctx, Row]]:
        scope = self._validate_scope(query)
        envs = self._scan(query, scope)
        if query.where is not None:
            envs = [
                env
                for env in envs
                if self._condition(query.where, _RowCtx(env), query, scope) is True
            ]
        has_aggregate = _query_has_aggregate(query)
        ctxs: list[_Ctx]
        if query.group_by:
            keys = [self._resolve(col, query, scope) for col in query.group_by]
            groups: dict[tuple, list[_Env]] = {}
            for env in envs:
                self._tick()
                group_key = tuple(_value_key(env.get(key)) for key in keys)
                groups.setdefault(group_key, []).append(env)
            ctxs = [_GroupCtx(members) for members in groups.values()]
        elif has_aggregate:
            ctxs = [_GroupCtx(envs)]
        else:
            ctxs = [_RowCtx(env) for env in envs]
        if query.having is not None:
            ctxs = [
                ctx
                for ctx in ctxs
                if self._condition(query.having, ctx, query, scope) is True
            ]
        projected = [(ctx, self._project(query, ctx, scope)) for ctx in ctxs]
        if query.distinct:
            deduped: list[tuple[_Ctx, Row]] = []
            seen: dict[tuple, None] = {}
            for ctx, row in projected:
                key = _row_key(row)
                if key in seen:
                    continue
                seen[key] = None
                deduped.append((ctx, row))
            projected = deduped
        if skip_order_limit:
            return projected
        if query.order_by:
            projected = self._order_simple(query, scope, projected)
        if query.limit is not None:
            projected = projected[: query.limit]
        return projected

    def _validate_scope(self, query: Query) -> list[Table]:
        tables: list[Table] = []
        for name in query.local_tables():
            if not self.schema.has_table(name):
                raise ExecutionError(f"no such table: {name}")
            tables.append(self.schema.table(name))
        return tables

    def _scan(self, query: Query, scope: list[Table]) -> list[_Env]:
        envs = self._table_envs(scope[0])
        for edge, table in zip(query.joins, scope[1:]):
            left_key = self._resolve(edge.left, query, scope)
            right_key = self._resolve(edge.right, query, scope)
            joined: list[_Env] = []
            right_envs = self._table_envs(table)
            for env in envs:
                for right_env in right_envs:
                    self._tick()
                    merged = {**env, **right_env}
                    if _compare(merged.get(left_key), merged.get(right_key)) == 0:
                        joined.append(merged)
            envs = joined
        return envs

    def _table_envs(self, table: Table) -> list[_Env]:
        table_key = identifier_key(table.name)
        store = self.backend._columns[table_key]
        nrows = self.backend._nrows[table_key]
        column_keys = [
            (f"{table_key}.{identifier_key(column.name)}", identifier_key(column.name))
            for column in table.columns
        ]
        envs: list[_Env] = []
        for i in range(nrows):
            self._tick()
            env: _Env = {}
            for qualified, bare in column_keys:
                env[qualified] = store[bare][i]
            envs.append(env)
        return envs

    # -- name resolution -----------------------------------------------------

    def _resolve(self, ref: ColumnRef, query: Query, scope: list[Table]) -> str:
        """Resolve a column reference to its ``table.column`` env key."""
        column_key = identifier_key(ref.column)
        if ref.table:
            table_key = identifier_key(ref.table)
            for table in scope:
                if identifier_key(table.name) == table_key:
                    if not table.has_column(ref.column):
                        raise ExecutionError(f"no such column: {ref}")
                    return f"{table_key}.{column_key}"
            raise ExecutionError(f"no such column: {ref}")
        matches = [
            table
            for table in scope
            if table.has_column(ref.column)
        ]
        if not matches:
            raise ExecutionError(f"no such column: {ref.column}")
        if len(matches) > 1:
            raise ExecutionError(f"ambiguous column name: {ref.column}")
        return f"{identifier_key(matches[0].name)}.{column_key}"

    def _declared_type(self, ref: ColumnRef, query: Query, scope: list[Table]) -> str:
        key = self._resolve(ref, query, scope)
        table_key, _, column_key = key.partition(".")
        for table in scope:
            if identifier_key(table.name) == table_key:
                return table.column(column_key).storage_type
        return "TEXT"

    # -- expressions ---------------------------------------------------------

    def _expr(self, expr: Expression, ctx: _Ctx, query: Query, scope: list[Table]) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            if expr.column == "*":
                raise ExecutionError("'*' is only valid inside COUNT or a SELECT list")
            return ctx.env.get(self._resolve(expr, query, scope))
        if isinstance(expr, Aggregation):
            func = expr.func.lower()
            if func in _AGGREGATE_FUNCS:
                if not isinstance(ctx, _GroupCtx):
                    raise ExecutionError(f"misuse of aggregate: {func}()")
                return self._aggregate(expr, ctx, query, scope)
            if func in _SCALAR_FUNCS:
                value = self._expr(expr.arg, ctx, query, scope)
                return _scalar_func(func, value)
            raise ExecutionError(f"unsupported function: {func}")
        raise ExecutionError(f"unsupported expression: {expr!r}")

    def _aggregate(
        self, agg: Aggregation, ctx: _GroupCtx, query: Query, scope: list[Table]
    ) -> Any:
        func = agg.func.lower()
        if agg.arg.column == "*":
            if func != "count":
                raise ExecutionError(f"misuse of '*' argument in {func}()")
            return len(ctx.members)
        key = self._resolve(agg.arg, query, scope)
        values = [env.get(key) for env in ctx.members]
        values = [value for value in values if value is not None]
        if agg.distinct:
            uniq: list[Any] = []
            seen: dict[tuple, None] = {}
            for value in values:
                value_key = _value_key(value)
                if value_key in seen:
                    continue
                seen[value_key] = None
                uniq.append(value)
            values = uniq
        if func == "count":
            return len(values)
        if not values:
            return None
        if func == "sum":
            numbers = [_as_number(value) for value in values]
            total = sum(numbers)
            if all(isinstance(number, int) for number in numbers):
                return int(total)
            return float(total)
        if func == "avg":
            numbers = [_as_number(value) for value in values]
            return float(sum(numbers)) / len(numbers)
        best = values[0]
        for value in values[1:]:
            order = _compare(value, best)
            if order is None:
                continue
            if (func == "min" and order < 0) or (func == "max" and order > 0):
                best = value
        return best

    # -- conditions ----------------------------------------------------------

    def _condition(
        self, cond: Condition, ctx: _Ctx, query: Query, scope: list[Table]
    ) -> Optional[bool]:
        """Three-valued condition evaluation (True / False / None)."""
        if isinstance(cond, CompoundCondition):
            results = [
                self._condition(sub, ctx, query, scope) for sub in cond.conditions
            ]
            if cond.op.upper() == "AND":
                if any(result is False for result in results):
                    return False
                if any(result is None for result in results):
                    return None
                return True
            if any(result is True for result in results):
                return True
            if any(result is None for result in results):
                return None
            return False
        if isinstance(cond, BinaryCondition):
            left = self._expr(cond.left, ctx, query, scope)
            if isinstance(cond.right, Query):
                right = self._scalar_subquery(cond.right)
            else:
                right = self._expr(cond.right, ctx, query, scope)
                right = self._coerce_pair(cond.left, cond.right, right, query, scope)
                left = self._coerce_reverse(cond.left, cond.right, left, query, scope)
            order = _compare(left, right)
            if order is None:
                return None
            op = cond.op
            if op == "=":
                return order == 0
            if op in ("!=", "<>"):
                return order != 0
            if op == "<":
                return order < 0
            if op == "<=":
                return order <= 0
            if op == ">":
                return order > 0
            if op == ">=":
                return order >= 0
            raise ExecutionError(f"unsupported operator: {op}")
        if isinstance(cond, InCondition):
            value = self._expr(cond.expr, ctx, query, scope)
            if cond.subquery is not None:
                members = [row[0] for row in self._subquery_rows(cond.subquery)]
            else:
                members = [
                    self._coerce_pair(cond.expr, literal, literal.value, query, scope)
                    for literal in cond.values
                ]
            if value is None:
                return None
            matched = any(_compare(value, member) == 0 for member in members)
            if matched:
                return not cond.negated
            if any(member is None for member in members):
                return None
            return cond.negated
        if isinstance(cond, BetweenCondition):
            value = self._expr(cond.expr, ctx, query, scope)
            low = self._coerce_pair(cond.expr, cond.low, cond.low.value, query, scope)
            high = self._coerce_pair(cond.expr, cond.high, cond.high.value, query, scope)
            low_order = _compare(value, low)
            high_order = _compare(value, high)
            if low_order is None or high_order is None:
                return None
            return low_order >= 0 and high_order <= 0
        if isinstance(cond, LikeCondition):
            value = _as_text(self._expr(cond.expr, ctx, query, scope))
            if value is None or cond.pattern.value is None:
                return None
            pattern = _as_text(cond.pattern.value) or ""
            flags = 0 if self.backend.capabilities.like_case_sensitive else re.IGNORECASE
            matched = re.fullmatch(_like_to_regex(pattern), value, flags) is not None
            return matched != cond.negated
        if isinstance(cond, NullCondition):
            value = self._expr(cond.expr, ctx, query, scope)
            return (value is None) != cond.negated
        raise ExecutionError(f"unsupported condition: {cond!r}")

    def _coerce_pair(
        self,
        left: Expression,
        right: Expression,
        right_value: Any,
        query: Query,
        scope: list[Table],
    ) -> Any:
        """Apply the left column's affinity to a bare right-hand literal."""
        if isinstance(left, ColumnRef) and left.column != "*" and isinstance(right, Literal):
            return _coerce_to_affinity(
                right_value, self._declared_type(left, query, scope)
            )
        return right_value

    def _coerce_reverse(
        self,
        left: Expression,
        right: Expression,
        left_value: Any,
        query: Query,
        scope: list[Table],
    ) -> Any:
        """Apply the right column's affinity to a bare left-hand literal."""
        if isinstance(left, Literal) and isinstance(right, ColumnRef) and right.column != "*":
            return _coerce_to_affinity(
                left_value, self._declared_type(right, query, scope)
            )
        return left_value

    # -- subqueries ----------------------------------------------------------

    def _subquery_rows(self, query: Query) -> list[Row]:
        memo_key = id(query)
        if memo_key not in self._subquery_memo:
            rows = _Evaluator(self.backend, self.deadline).run(query)
            if rows and len(rows[0]) != 1:
                raise ExecutionError(
                    f"sub-select returns {len(rows[0])} columns - expected 1"
                )
            self._subquery_memo[memo_key] = rows
        return self._subquery_memo[memo_key]

    def _scalar_subquery(self, query: Query) -> Any:
        rows = self._subquery_rows(query)
        return rows[0][0] if rows else None

    # -- projection / ordering ----------------------------------------------

    def _project(self, query: Query, ctx: _Ctx, scope: list[Table]) -> Row:
        values: list[Any] = []
        for item in query.select_items:
            expr = item.expr
            if isinstance(expr, ColumnRef) and expr.column == "*":
                values.extend(self._expand_star(expr, ctx, scope))
                continue
            values.append(self._expr(expr, ctx, query, scope))
        return tuple(values)

    def _expand_star(self, ref: ColumnRef, ctx: _Ctx, scope: list[Table]) -> list[Any]:
        tables = scope
        if ref.table:
            table_key = identifier_key(ref.table)
            tables = [
                table for table in scope if identifier_key(table.name) == table_key
            ]
            if not tables:
                raise ExecutionError(f"no such table: {ref.table}")
        out: list[Any] = []
        for table in tables:
            table_key = identifier_key(table.name)
            for column in table.columns:
                out.append(ctx.env.get(f"{table_key}.{identifier_key(column.name)}"))
        return out

    def _order_simple(
        self, query: Query, scope: list[Table], projected: list[tuple[_Ctx, Row]]
    ) -> list[tuple[_Ctx, Row]]:
        ordered = list(projected)
        for item in reversed(query.order_by):
            expr = item.expr
            if isinstance(expr, Literal) and isinstance(expr.value, int):
                position = expr.value - 1

                def key(pair: tuple[_Ctx, Row], position: int = position) -> tuple:
                    row = pair[1]
                    if not 0 <= position < len(row):
                        raise ExecutionError(
                            f"ORDER BY term out of range: {position + 1}"
                        )
                    return _sort_key(row[position])

            else:

                def key(pair: tuple[_Ctx, Row], expr: Expression = expr) -> tuple:
                    return _sort_key(self._expr(expr, pair[0], query, scope))

            ordered.sort(key=key, reverse=item.descending)
        return ordered

    def _order_compound(
        self, first: Query, last: Query, rows: list[Row]
    ) -> list[Row]:
        ordered = list(rows)
        for item in reversed(last.order_by):
            position = self._output_position(first, item.expr)
            ordered.sort(
                key=lambda row, position=position: _sort_key(row[position]),
                reverse=item.descending,
            )
        return ordered

    def _output_position(self, first: Query, expr: Expression) -> int:
        """Map a compound ORDER BY expression to an output column index."""
        if isinstance(expr, Literal) and isinstance(expr.value, int):
            return expr.value - 1
        for position, item in enumerate(first.select_items):
            if item.expr == expr:
                return position
            if (
                isinstance(expr, ColumnRef)
                and not expr.table
                and expr.column != "*"
            ):
                if item.alias and identifier_key(item.alias) == identifier_key(expr.column):
                    return position
                if (
                    isinstance(item.expr, ColumnRef)
                    and identifier_key(item.expr.column) == identifier_key(expr.column)
                ):
                    return position
        raise ExecutionError(
            "ORDER BY term does not match any column in the result set"
        )


def _query_has_aggregate(query: Query) -> bool:
    def is_aggregate(expr: Expression) -> bool:
        return (
            isinstance(expr, Aggregation) and expr.func.lower() in _AGGREGATE_FUNCS
        )

    if any(is_aggregate(item.expr) for item in query.select_items):
        return True
    if any(is_aggregate(item.expr) for item in query.order_by):
        return True

    def condition_has_aggregate(cond: Optional[Condition]) -> bool:
        if cond is None:
            return False
        if isinstance(cond, CompoundCondition):
            return any(condition_has_aggregate(sub) for sub in cond.conditions)
        if isinstance(cond, BinaryCondition):
            return is_aggregate(cond.left) or (
                not isinstance(cond.right, Query) and is_aggregate(cond.right)
            )
        if isinstance(cond, (InCondition, BetweenCondition, LikeCondition, NullCondition)):
            return is_aggregate(cond.expr)
        return False

    return condition_has_aggregate(query.having)


def _scalar_func(func: str, value: Any) -> Any:
    if value is None:
        return None
    if func == "abs":
        number = _as_number(value)
        return abs(number)
    if func == "round":
        number = float(_as_number(value))
        rounded = int(number + 0.5) if number >= 0 else -int(-number + 0.5)
        return float(rounded)
    if func == "length":
        text = _as_text(value)
        return len(text) if text is not None else None
    if func == "upper":
        text = _as_text(value)
        return text.upper() if text is not None else None
    if func == "lower":
        text = _as_text(value)
        return text.lower() if text is not None else None
    raise ExecutionError(f"unsupported function: {func}")


def _apply_set_op(op: str, left: list[Row], right: list[Row]) -> list[Row]:
    right_keys = {_row_key(row): None for row in right}
    out: list[Row] = []
    seen: dict[tuple, None] = {}

    def emit(row: Row) -> None:
        key = _row_key(row)
        if key in seen:
            return
        seen[key] = None
        out.append(row)

    if op == "UNION":
        for row in left:
            emit(row)
        for row in right:
            emit(row)
    elif op == "INTERSECT":
        for row in left:
            if _row_key(row) in right_keys:
                emit(row)
    elif op == "EXCEPT":
        for row in left:
            if _row_key(row) not in right_keys:
                emit(row)
    else:
        raise ExecutionError(f"unsupported compound operator: {op or '<none>'}")
    return out
