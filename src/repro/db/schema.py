"""Schema model: tables, columns, keys, and comments.

SQLite has no native column comments, so comments live here, alongside
the structural metadata, exactly as the paper assumes databases "usually
provide informative comments for ambiguous schema" (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaError
from repro.sqlgen.ast import identifier_key

#: Column types the synthetic databases use (SQLite affinity names).
VALID_TYPES = frozenset({"INTEGER", "REAL", "TEXT", "DATE"})


@dataclass(frozen=True)
class Column:
    """One column with its type, optional comment, and PK flag."""

    name: str
    type: str = "TEXT"
    comment: str = ""
    is_primary: bool = False

    def __post_init__(self) -> None:
        if self.type.upper() not in VALID_TYPES:
            raise SchemaError(f"unsupported column type {self.type!r} for {self.name!r}")

    @property
    def storage_type(self) -> str:
        """Backend-neutral storage type (DATE stored as TEXT).

        All registered execution backends store DATE values as ISO text,
        so declared-type-driven behaviour (affinity coercion, value
        sampling) stays identical across dialects.
        """
        return "TEXT" if self.type.upper() == "DATE" else self.type.upper()

    @property
    def sqlite_type(self) -> str:
        """Historical alias for :attr:`storage_type`."""
        return self.storage_type


@dataclass(frozen=True)
class Table:
    """One table with ordered columns and an optional comment."""

    name: str
    columns: tuple[Column, ...]
    comment: str = ""

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError(f"table {self.name!r} has no columns")
        seen: set[str] = set()
        for column in self.columns:
            lowered = column.name.lower()
            if lowered in seen:
                raise SchemaError(f"duplicate column {column.name!r} in {self.name!r}")
            seen.add(lowered)

    def column(self, name: str) -> Column:
        """Look up a column by case-insensitive name."""
        for column in self.columns:
            if identifier_key(column.name) == identifier_key(name):
                return column
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        key = identifier_key(name)
        return any(identifier_key(column.name) == key for column in self.columns)

    @property
    def primary_key(self) -> Column | None:
        for column in self.columns:
            if column.is_primary:
                return column
        return None


@dataclass(frozen=True)
class ForeignKey:
    """``src_table.src_column`` references ``dst_table.dst_column``."""

    src_table: str
    src_column: str
    dst_table: str
    dst_column: str

    def render(self) -> str:
        return (
            f"{self.src_table}.{self.src_column} = "
            f"{self.dst_table}.{self.dst_column}"
        )


@dataclass(frozen=True)
class Schema:
    """A complete database schema."""

    name: str
    tables: tuple[Table, ...]
    foreign_keys: tuple[ForeignKey, ...] = ()
    domain: str = ""

    def __post_init__(self) -> None:
        if not self.tables:
            raise SchemaError(f"schema {self.name!r} has no tables")
        names = [table.name.lower() for table in self.tables]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate table names in schema {self.name!r}")
        for fkey in self.foreign_keys:
            src = self.table(fkey.src_table)
            dst = self.table(fkey.dst_table)
            if not src.has_column(fkey.src_column):
                raise SchemaError(f"foreign key source missing: {fkey.render()}")
            if not dst.has_column(fkey.dst_column):
                raise SchemaError(f"foreign key target missing: {fkey.render()}")

    def table(self, name: str) -> Table:
        """Look up a table by case-insensitive name."""
        for table in self.tables:
            if identifier_key(table.name) == identifier_key(name):
                return table
        raise SchemaError(f"no table {name!r} in schema {self.name!r}")

    def has_table(self, name: str) -> bool:
        key = identifier_key(name)
        return any(identifier_key(table.name) == key for table in self.tables)

    def column_keys(self) -> list[str]:
        """All ``table.column`` keys in schema order (lower-cased)."""
        keys: list[str] = []
        for table in self.tables:
            for column in table.columns:
                keys.append(f"{table.name.lower()}.{column.name.lower()}")
        return keys

    def foreign_keys_of(self, table_name: str) -> list[ForeignKey]:
        """Foreign keys touching ``table_name`` on either side."""
        lowered = table_name.lower()
        return [
            fkey
            for fkey in self.foreign_keys
            if lowered in (fkey.src_table.lower(), fkey.dst_table.lower())
        ]

    def join_edge(self, left_table: str, right_table: str) -> ForeignKey | None:
        """The FK connecting two tables, if any (either direction)."""
        left = left_table.lower()
        right = right_table.lower()
        for fkey in self.foreign_keys:
            pair = (fkey.src_table.lower(), fkey.dst_table.lower())
            if pair in ((left, right), (right, left)):
                return fkey
        return None

    def rename(self, name: str) -> "Schema":
        """Copy of this schema under a different name."""
        return Schema(
            name=name,
            tables=self.tables,
            foreign_keys=self.foreign_keys,
            domain=self.domain,
        )
