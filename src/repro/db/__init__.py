"""Database substrate: schemas, SQLite-backed databases, value sampling."""

from repro.db.schema import Column, ForeignKey, Schema, Table
from repro.db.database import Database
from repro.db.values import ValueGenerator

__all__ = [
    "Column",
    "Database",
    "ForeignKey",
    "Schema",
    "Table",
    "ValueGenerator",
]
