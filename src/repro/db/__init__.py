"""Database substrate: schemas, execution backends, value sampling."""

from repro.db.schema import Column, ForeignKey, Schema, Table
from repro.db.backends import (
    BackendCapabilities,
    ColumnarBackend,
    Database,
    ExecutionBackend,
    available_backends,
    backend_dialect,
    backend_for_dialect,
    create_backend,
)
from repro.db.values import ValueGenerator

__all__ = [
    "BackendCapabilities",
    "Column",
    "ColumnarBackend",
    "Database",
    "ExecutionBackend",
    "ForeignKey",
    "Schema",
    "Table",
    "ValueGenerator",
    "available_backends",
    "backend_dialect",
    "backend_for_dialect",
    "create_backend",
]
