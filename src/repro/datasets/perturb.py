"""Shared perturbation machinery for robustness benchmarks.

Implements the text / schema / content transforms behind Spider-Syn,
Spider-Realistic, Spider-DK, and the 17 Dr.Spider perturbation sets.
"""

from __future__ import annotations

import random
import re

from repro.datasets.base import Text2SQLExample

#: Schema-word synonyms (Spider-Syn / Dr.Spider column-synonym style).
SCHEMA_SYNONYMS: dict[str, str] = {
    "name": "full name",
    "city": "town",
    "country": "nation",
    "salary": "pay",
    "price": "cost",
    "rating": "score",
    "title": "heading",
    "genre": "style",
    "major": "field of study",
    "status": "state",
    "budget": "funds",
    "attendance": "turnout",
    "capacity": "size",
    "distance": "length",
    "grade": "mark",
    "stock": "inventory",
    "segment": "tier",
    "brand": "maker",
    "cuisine": "food style",
    "position": "role",
    "specialty": "field",
    "fee": "charge",
    "gross": "earnings",
    "pages": "page count",
    "language": "tongue",
    "venue": "location",
    "sales": "revenue",
    "quantity": "amount",
    "credits": "credit hours",
    "department": "division",
}

#: Question-keyword synonyms (Dr.Spider keyword-synonym).
KEYWORD_SYNONYMS: dict[str, str] = {
    "list": "enumerate",
    "show": "display",
    "find": "locate",
    "count": "tally",
    "give": "provide",
    "how many": "what is the count of",
    "what is": "tell me",
    "which": "what",
    "sorted": "arranged",
    "highest": "greatest",
    "lowest": "smallest",
    "more than": "exceeding",
    "less than": "below",
    "average": "mean",
    "total": "overall",
    "different": "unique",
    "distinct": "unique",
}

#: Carrier phrases inserted before questions (Dr.Spider keyword-carrier).
CARRIER_PHRASES = [
    "Could you tell me",
    "I would like to know",
    "Please let me know",
    "Can you figure out",
]

#: Domain-knowledge value paraphrases (Spider-DK).
VALUE_KNOWLEDGE: dict[str, str] = {
    "F": "female",
    "M": "male",
    "Y": "yes",
    "N": "no",
    "approved": "successful",
    "rejected": "unsuccessful",
    "active": "currently running",
    "inactive": "no longer running",
    "gold": "top tier",
    "premium": "paid tier",
}

#: Value surface variants (Dr.Spider value-synonym / content-equivalence).
#: Content-equivalent re-expressions of stored values: the database says
#: "granted" where the user still says "approved".
VALUE_VARIANTS: dict[str, str] = {
    "United States": "USA",
    "Czech Republic": "Czechia",
    "South Korea": "Korea",
    "F": "Female",
    "M": "Male",
    "Y": "Yes",
    "N": "No",
    "approved": "granted",
    "rejected": "declined",
    "active": "live",
    "inactive": "dormant",
    "pending": "awaiting",
    "open": "ongoing",
    "closed": "finished",
    "standard": "regular",
    "premium": "plus",
    "basic": "entry",
    "gold": "first class",
    "silver": "second class",
    "bronze": "third class",
}

# Cities re-expressed in their long official form ("Jesenik" is stored
# as "City of Jesenik"), which pushes the LCS match degree below the
# retriever's confidence threshold — the sparse-retrieval failure mode
# the paper reports for DBcontent-equivalence.
from repro.db.values import CITIES as _CITIES

VALUE_VARIANTS.update({city: f"City of {city}" for city in _CITIES})


def _replace_words(text: str, mapping: dict[str, str], rng: random.Random,
                   probability: float = 1.0) -> str:
    """Whole-word, case-preserving replacement of mapped phrases.

    All phrases are replaced in a single pass (longest alternatives
    first inside the pattern), so a replacement's output is never
    re-matched — "how many" -> "what is the count of" must not cascade
    into "...the tally of".
    """
    if not mapping:
        return text
    active = {
        source: target for source, target in mapping.items()
        if rng.random() <= probability
    }
    if not active:
        return text
    # Longest keys first so multi-word phrases win over their prefixes.
    alternation = "|".join(
        re.escape(source) for source in sorted(active, key=len, reverse=True)
    )
    pattern = re.compile(rf"\b(?:{alternation})\b", re.IGNORECASE)
    lowered = {source.lower(): target for source, target in active.items()}

    def _swap(match: re.Match) -> str:
        replacement = lowered[match.group(0).lower()]
        if match.group(0)[0].isupper():
            return replacement[0].upper() + replacement[1:]
        return replacement

    return pattern.sub(_swap, text)


def synonym_question(example: Text2SQLExample, rng: random.Random) -> Text2SQLExample:
    """Spider-Syn: schema words in the question become synonyms."""
    question = _replace_words(example.question, SCHEMA_SYNONYMS, rng)
    return Text2SQLExample(question, example.sql, example.db_id,
                           example.external_knowledge)


def keyword_synonym_question(
    example: Text2SQLExample, rng: random.Random
) -> Text2SQLExample:
    """Dr.Spider keyword-synonym: question keywords are paraphrased."""
    question = _replace_words(example.question, KEYWORD_SYNONYMS, rng)
    return Text2SQLExample(question, example.sql, example.db_id,
                           example.external_knowledge)


def carrier_question(example: Text2SQLExample, rng: random.Random) -> Text2SQLExample:
    """Dr.Spider keyword-carrier: wrap the question in a carrier phrase."""
    carrier = rng.choice(CARRIER_PHRASES)
    body = example.question
    body = body[0].lower() + body[1:] if body else body
    question = f"{carrier} {body.rstrip('.?')}?"
    return Text2SQLExample(question, example.sql, example.db_id,
                           example.external_knowledge)


def realistic_question(example: Text2SQLExample, rng: random.Random) -> Text2SQLExample:
    """Spider-Realistic: drop explicit column mentions.

    "List the name of singers whose ..." -> "List the singers whose ..."
    """
    question = re.sub(
        r"\b(the|their)\s+[a-z][a-z ]{1,24}?\s+of\s+(the\s+)?",
        lambda match: "the ",
        example.question,
        count=1,
        flags=re.IGNORECASE,
    )
    question = re.sub(r"\s+", " ", question).strip()
    return Text2SQLExample(question, example.sql, example.db_id,
                           example.external_knowledge)


def domain_knowledge_question(
    example: Text2SQLExample, rng: random.Random
) -> Text2SQLExample:
    """Spider-DK: replace explicit values with domain-knowledge phrasings."""
    question = _replace_words(example.question, VALUE_KNOWLEDGE, rng)
    return Text2SQLExample(question, example.sql, example.db_id,
                           example.external_knowledge)


def value_synonym_question(
    example: Text2SQLExample, rng: random.Random
) -> Text2SQLExample:
    """Dr.Spider value-synonym: value mentions change surface form."""
    question = _replace_words(example.question, VALUE_VARIANTS, rng)
    # Additionally lower-case one capitalized value-like word.
    words = question.split()
    candidates = [
        index for index, word in enumerate(words[1:], start=1)
        if word[:1].isupper()
    ]
    if candidates:
        index = rng.choice(candidates)
        words[index] = words[index].lower()
    return Text2SQLExample(" ".join(words), example.sql, example.db_id,
                           example.external_knowledge)


def column_carrier_question(
    example: Text2SQLExample, rng: random.Random
) -> Text2SQLExample:
    """Dr.Spider column-carrier: pad column mentions with carrier words."""
    question = re.sub(
        r"\bthe ([a-z][a-z ]{1,20}?) of\b",
        r"the value of the \1 of",
        example.question,
        count=1,
    )
    return Text2SQLExample(question, example.sql, example.db_id,
                           example.external_knowledge)


def column_value_question(
    example: Text2SQLExample, rng: random.Random
) -> Text2SQLExample:
    """Dr.Spider column-value: drop the column name before a value."""
    question = re.sub(
        r"\b(whose|with|where the|with a)\s+[a-z][a-z ]{1,20}?\s+(is|equals|of)\s+",
        r"\1 ",
        example.question,
        count=1,
        flags=re.IGNORECASE,
    )
    return Text2SQLExample(question, example.sql, example.db_id,
                           example.external_knowledge)


#: Column phrase -> indirect attribute phrasing (Dr.Spider column-attribute).
ATTRIBUTE_MAP: dict[str, str] = {
    "salary": "how well paid they are",
    "price": "how expensive it is",
    "rating": "how highly rated it is",
    "attendance": "how well attended it was",
    "birth year": "how long ago they were born",
    "gpa": "how strong their results are",
    "capacity": "how big it is",
    "distance": "how far it goes",
}


def column_attribute_question(
    example: Text2SQLExample, rng: random.Random
) -> Text2SQLExample:
    """Dr.Spider column-attribute: columns referenced via attributes."""
    question = _replace_words(example.question, ATTRIBUTE_MAP, rng)
    return Text2SQLExample(question, example.sql, example.db_id,
                           example.external_knowledge)


def multitype_question(example: Text2SQLExample, rng: random.Random) -> Text2SQLExample:
    """Dr.Spider multitype: compose two perturbations."""
    first = synonym_question(example, rng)
    return keyword_synonym_question(first, rng)


def others_question(example: Text2SQLExample, rng: random.Random) -> Text2SQLExample:
    """Dr.Spider 'others': mild paraphrase (light keyword swap)."""
    question = _replace_words(example.question, KEYWORD_SYNONYMS, rng, probability=0.3)
    return Text2SQLExample(question, example.sql, example.db_id,
                           example.external_knowledge)
