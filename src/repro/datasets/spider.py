"""The Spider-like benchmark: clean cross-domain text-to-SQL.

Mirrors Spider's defining properties at reduced scale: many domains,
clean schema names, small databases, and a dev split over databases
*unseen* during training (cross-domain generalization).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.base import Text2SQLDataset, Text2SQLExample
from repro.datasets.blueprints import BLUEPRINTS
from repro.datasets.generator import (
    GeneratedDatabase,
    GenerationOptions,
    instantiate_blueprint,
)
from repro.datasets.templates import sample_question_sql
from repro.errors import DatasetError


@dataclass(frozen=True)
class SpiderConfig:
    """Scale knobs of the Spider-like benchmark."""

    n_train_databases: int = 6
    n_dev_databases: int = 3
    train_per_database: int = 30
    dev_per_database: int = 16
    rows_per_table: int = 40
    seed: int = 0


def _generate_examples(
    gdb: GeneratedDatabase, count: int, rng: random.Random, with_ek: bool
) -> list[Text2SQLExample]:
    examples: list[Text2SQLExample] = []
    attempts = 0
    while len(examples) < count and attempts < count * 10:
        attempts += 1
        pair = sample_question_sql(gdb, rng)
        if pair is None:
            continue
        examples.append(
            Text2SQLExample(
                question=pair.question,
                sql=pair.sql,
                db_id=gdb.db_id,
                external_knowledge=pair.external_knowledge if with_ek else "",
            )
        )
    if len(examples) < count:
        raise DatasetError(
            f"could only generate {len(examples)}/{count} examples for {gdb.db_id}"
        )
    return examples


def build_generated_databases(
    n_databases: int,
    options_for: "callable",
    seed: int,
    prefix: str,
) -> list[GeneratedDatabase]:
    """Instantiate ``n_databases`` round-robin over the blueprints."""
    out: list[GeneratedDatabase] = []
    for index in range(n_databases):
        blueprint = BLUEPRINTS[index % len(BLUEPRINTS)]
        db_id = f"{prefix}_{blueprint.name}_{index}"
        out.append(
            instantiate_blueprint(blueprint, db_id, options_for(index))
        )
    return out


def build_spider(config: SpiderConfig | None = None) -> Text2SQLDataset:
    """Build the Spider-like benchmark (train and dev over disjoint DBs)."""
    config = config or SpiderConfig()
    total = config.n_train_databases + config.n_dev_databases
    generated = build_generated_databases(
        total,
        lambda index: GenerationOptions(
            rows_per_table=config.rows_per_table, seed=config.seed + index
        ),
        seed=config.seed,
        prefix="spider",
    )
    rng = random.Random(f"spider:{config.seed}")
    train: list[Text2SQLExample] = []
    dev: list[Text2SQLExample] = []
    for index, gdb in enumerate(generated):
        if index < config.n_train_databases:
            train.extend(
                _generate_examples(gdb, config.train_per_database, rng, with_ek=False)
            )
        else:
            dev.extend(
                _generate_examples(gdb, config.dev_per_database, rng, with_ek=False)
            )
    dataset = Text2SQLDataset(
        name="spider",
        databases={gdb.db_id: gdb.database for gdb in generated},
        train=train,
        dev=dev,
        generated={gdb.db_id: gdb for gdb in generated},
    )
    dataset.validate()
    return dataset
