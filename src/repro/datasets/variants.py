"""Spider variants: Spider-Syn, Spider-Realistic, Spider-DK (§9.1.1).

Each variant shares Spider's databases but perturbs the dev questions
to mimic real-world phrasing shifts; models are trained on the original
Spider training set and evaluated on the perturbed dev sets.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.datasets.base import Text2SQLDataset, Text2SQLExample
from repro.datasets.perturb import (
    domain_knowledge_question,
    realistic_question,
    synonym_question,
)
from repro.datasets.spider import SpiderConfig, build_spider
from repro.errors import DatasetError

_PERTURBERS: dict[str, Callable[[Text2SQLExample, random.Random], Text2SQLExample]] = {
    "spider-syn": synonym_question,
    "spider-realistic": realistic_question,
    "spider-dk": domain_knowledge_question,
}

#: Names of the supported Spider variants.
SPIDER_VARIANTS = tuple(_PERTURBERS)


def build_spider_variant(
    name: str,
    spider: Text2SQLDataset | None = None,
    seed: int = 0,
    config: SpiderConfig | None = None,
) -> Text2SQLDataset:
    """Build one Spider variant from an (optionally shared) Spider build.

    The returned dataset reuses Spider's databases and training split;
    only the dev questions are perturbed.
    """
    if name not in _PERTURBERS:
        raise DatasetError(
            f"unknown variant {name!r}; expected one of {sorted(_PERTURBERS)}"
        )
    spider = spider or build_spider(config)
    rng = random.Random(f"{name}:{seed}")
    perturb = _PERTURBERS[name]
    dev = [perturb(example, rng) for example in spider.dev]
    return Text2SQLDataset(
        name=name,
        databases=spider.databases,
        train=spider.train,
        dev=dev,
        generated=spider.generated,
    )
