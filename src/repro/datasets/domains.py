"""Real-world domain datasets: Bank-Financials and Aminer-Simplified (§9.6).

Bank-Financials mirrors the paper's finance database (Figure 2): few
tables but very wide ones with ambiguous column names.  Aminer-
Simplified mirrors the academic-graph database: more tables with
intricate join relationships.  Each dataset ships a small set of
"manually annotated" seed pairs (the 30 annotations the paper starts
from) and a held-out test set; large training sets are produced by the
bi-directional augmentation pipeline in :mod:`repro.augment`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.base import Text2SQLDataset
from repro.datasets.blueprints import DomainBlueprint, FKSpec, _col, _entity
from repro.datasets.generator import GenerationOptions, instantiate_blueprint
from repro.datasets.spider import _generate_examples

BANK_FINANCIALS_BLUEPRINT = DomainBlueprint(
    name="bank_financials",
    domain="finance",
    tables=(
        _entity(
            "client",
            _col("name", "TEXT", "person_name", "name"),
            _col("gender", "TEXT", "gender", "gender", comment="M or F"),
            _col("district", "TEXT", "city", "district"),
            _col("segment", "TEXT", "category", "client segment"),
            _col("join_date", "DATE", "date", "join date"),
            plural="clients",
            comment="bank clients",
        ),
        _entity(
            "account",
            _col("client_id", "INTEGER", "fk:client"),
            _col("balance", "REAL", "amount", "balance"),
            _col("open_date", "DATE", "date", "open date"),
            _col("currency", "TEXT", "category", "currency"),
            _col("branch_city", "TEXT", "city", "branch city"),
            plural="accounts",
            comment="client accounts",
        ),
        _entity(
            "loan",
            _col("account_id", "INTEGER", "fk:account"),
            _col("amount", "REAL", "amount", "loan amount"),
            _col("status", "TEXT", "status", "status"),
            _col("issue_year", "INTEGER", "year", "issue year"),
            plural="loans",
            comment="loans issued per account",
        ),
        _entity(
            "card",
            _col("account_id", "INTEGER", "fk:account"),
            _col("card_type", "TEXT", "category", "card type"),
            _col("issue_date", "DATE", "date", "issue date"),
            _col("credit_limit", "REAL", "amount", "credit limit"),
            plural="cards",
            comment="cards issued per account",
        ),
    ),
    foreign_keys=(
        FKSpec("account", "client_id", "client", "client_id"),
        FKSpec("loan", "account_id", "account", "account_id"),
        FKSpec("card", "account_id", "account", "account_id"),
    ),
)

AMINER_BLUEPRINT = DomainBlueprint(
    name="aminer_simplified",
    domain="academic",
    tables=(
        _entity(
            "author",
            _col("name", "TEXT", "person_name", "name"),
            _col("affiliation_city", "TEXT", "city", "affiliation city"),
            _col("h_index", "INTEGER", "small_count", "h index"),
            plural="authors",
            comment="researchers in the academic graph",
        ),
        _entity(
            "venue",
            _col("name", "TEXT", "title", "name"),
            _col("field", "TEXT", "category", "research field"),
            _col("rank_tier", "TEXT", "category", "rank tier"),
            plural="venues",
            comment="conferences and journals",
        ),
        _entity(
            "paper",
            _col("venue_id", "INTEGER", "fk:venue"),
            _col("title", "TEXT", "title", "title"),
            _col("publish_year", "INTEGER", "year", "publication year"),
            _col("citations", "INTEGER", "count", "citation count"),
            plural="papers",
            comment="published papers",
        ),
        _entity(
            "writes",
            _col("author_id", "INTEGER", "fk:author"),
            _col("paper_id", "INTEGER", "fk:paper"),
            _col("author_order", "INTEGER", "small_count", "author order"),
            plural="authorship records",
            comment="author-paper relationships",
        ),
    ),
    foreign_keys=(
        FKSpec("paper", "venue_id", "venue", "venue_id"),
        FKSpec("writes", "author_id", "author", "author_id"),
        FKSpec("writes", "paper_id", "paper", "paper_id"),
    ),
)


@dataclass(frozen=True)
class DomainConfig:
    """Scale knobs of one real-world domain dataset."""

    seed_pairs: int = 15  # "manually annotated" seed set per database
    test_examples: int = 40
    rows_per_table: int = 80
    extra_columns: int = 6  # real-world tables are wide
    seed: int = 0


def _build_domain(
    blueprint: DomainBlueprint, name: str, config: DomainConfig
) -> Text2SQLDataset:
    gdb = instantiate_blueprint(
        blueprint,
        db_id=name,
        options=GenerationOptions(
            rows_per_table=config.rows_per_table,
            ambiguous_naming=True,
            ambiguous_fraction=0.4,
            extra_columns=config.extra_columns,
            dirty_values=True,
            seed=config.seed,
        ),
    )
    rng = random.Random(f"{name}:{config.seed}")
    seed_pairs = _generate_examples(gdb, config.seed_pairs, rng, with_ek=False)
    test = _generate_examples(gdb, config.test_examples, rng, with_ek=False)
    dataset = Text2SQLDataset(
        name=name,
        databases={gdb.db_id: gdb.database},
        train=seed_pairs,  # only the small annotated seed set
        dev=test,
        generated={gdb.db_id: gdb},
    )
    dataset.validate()
    return dataset


def build_bank_financials(config: DomainConfig | None = None) -> Text2SQLDataset:
    """The finance-domain dataset (Figure 2 / Table 10)."""
    return _build_domain(
        BANK_FINANCIALS_BLUEPRINT, "bank_financials", config or DomainConfig(seed=11)
    )


def build_aminer_simplified(config: DomainConfig | None = None) -> Text2SQLDataset:
    """The academic-domain dataset (Table 10)."""
    return _build_domain(
        AMINER_BLUEPRINT, "aminer_simplified", config or DomainConfig(seed=13)
    )
