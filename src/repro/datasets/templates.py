"""Paired question/SQL templates over generated databases.

Every template builds a SQL AST against a :class:`GeneratedDatabase`
and a natural-language question that a user could plausibly ask for it.
Questions refer to columns by their *readable phrase* (the blueprint
meaning), not the stored column name — so when a benchmark renames
columns to cryptic abbreviations (BIRD-style), questions stay natural
and the linking problem becomes genuinely hard.  For such references an
external-knowledge note ("phrase refers to table.column") is emitted,
mirroring BIRD's EK annotations.

The bank doubles as the SQL-template library for the SQL-to-question
augmentation direction (§7): :func:`template_ids` exposes the family
identifiers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.generator import GeneratedDatabase
from repro.db.schema import Table
from repro.sqlgen.ast import (
    Aggregation,
    BetweenCondition,
    BinaryCondition,
    ColumnRef,
    CompoundCondition,
    InCondition,
    JoinEdge,
    LikeCondition,
    Literal,
    OrderItem,
    Query,
    SelectItem,
)
from repro.sqlgen.serializer import serialize

_NAMEISH = ("person_name", "title", "word", "city", "country")
_TEXTUAL = ("person_name", "title", "word", "city", "country", "category",
            "status", "gender", "flag")
_NUMERIC = ("amount", "count", "small_count", "score", "year")

_CARRIERS = ["", "Please ", "Could you ", "I would like you to "]


@dataclass(frozen=True)
class QuestionSQL:
    """A generated (question, SQL) pair with optional external knowledge."""

    question: str
    sql: str
    template_id: str
    external_knowledge: str = ""


class _Context:
    """Helper bundling the database and the rng for one sample."""

    def __init__(self, gdb: GeneratedDatabase, rng: random.Random):
        self.gdb = gdb
        self.rng = rng
        self.ek_parts: list[str] = []

    # -- selection helpers ---------------------------------------------------

    def tables_with(self, semantics: tuple[str, ...]) -> list[Table]:
        out = []
        for table in self.gdb.schema.tables:
            if self.gdb.columns_with_semantic(table.name, semantics):
                out.append(table)
        return out

    def pick_table_with(self, semantics: tuple[str, ...]) -> Table | None:
        candidates = self.tables_with(semantics)
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def pick_column(self, table: Table, semantics: tuple[str, ...]) -> str | None:
        candidates = self.gdb.columns_with_semantic(table.name, semantics)
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def phrase(self, table: Table, column: str) -> str:
        """Readable phrase for a column, recording EK for ambiguous names."""
        text = self.gdb.readable_phrase(table.name, column)
        if self.gdb.is_ambiguous(table.name, column):
            self.ek_parts.append(f"'{text}' refers to {table.name}.{column}")
        return text

    def value_of(self, table: Table, column: str) -> str | None:
        values = self.gdb.database.distinct_values(table.name, column, limit=200)
        values = [v for v in values if isinstance(v, str) and v.strip()]
        if not values:
            return None
        return self.rng.choice(values)

    def numeric_threshold(self, table: Table, column: str) -> float | int | None:
        values = self.gdb.database.distinct_values(table.name, column, limit=500)
        numbers = sorted(
            v for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)
        )
        if len(numbers) < 3:
            return None
        pivot = numbers[len(numbers) // 2]
        if isinstance(pivot, float):
            return round(pivot, 2)
        return pivot

    def noun(self, table: Table) -> str:
        return self.gdb.table_noun(table.name)

    def singular(self, table: Table) -> str:
        return table.name.replace("_", " ")

    def carrier(self) -> str:
        return self.rng.choice(_CARRIERS)

    def external_knowledge(self) -> str:
        return "; ".join(dict.fromkeys(self.ek_parts))


def _col(table: Table, column: str) -> ColumnRef:
    return ColumnRef(table=table.name, column=column)


def _surface(value) -> str:
    """How a question mentions a stored value (cleaned surface form)."""
    if isinstance(value, str):
        return value.strip()
    return str(value)


# ---------------------------------------------------------------------------
# Template implementations.  Each returns QuestionSQL or None when the
# database lacks the required structure.
# ---------------------------------------------------------------------------


def _t_count_all(ctx: _Context) -> QuestionSQL | None:
    table = ctx.rng.choice(list(ctx.gdb.schema.tables))
    question = ctx.rng.choice(
        [
            f"How many {ctx.noun(table)} are there?",
            f"Count the total number of {ctx.noun(table)}.",
            f"What is the number of {ctx.noun(table)}?",
        ]
    )
    query = Query(
        select_items=(SelectItem(Aggregation("count", ColumnRef("", "*"))),),
        from_table=table.name,
    )
    return QuestionSQL(question, serialize(query), "count_all")


def _t_select_where_text(ctx: _Context) -> QuestionSQL | None:
    table = ctx.pick_table_with(_NAMEISH)
    if table is None:
        return None
    select_col = ctx.pick_column(table, _NAMEISH)
    filter_col = ctx.pick_column(table, _TEXTUAL)
    if select_col is None or filter_col is None or select_col == filter_col:
        return None
    value = ctx.value_of(table, filter_col)
    if value is None:
        return None
    select_phrase = ctx.phrase(table, select_col)
    filter_phrase = ctx.phrase(table, filter_col)
    question = ctx.carrier() + ctx.rng.choice(
        [
            f"list the {select_phrase} of {ctx.noun(table)} whose {filter_phrase} is {_surface(value)}.",
            f"show the {select_phrase} of every {ctx.singular(table)} with {filter_phrase} {_surface(value)}.",
            f"what is the {select_phrase} of the {ctx.singular(table)} whose {filter_phrase} equals {_surface(value)}?",
        ]
    )
    query = Query(
        select_items=(SelectItem(_col(table, select_col)),),
        from_table=table.name,
        where=BinaryCondition(_col(table, filter_col), "=", Literal(value)),
    )
    return QuestionSQL(
        question[0].upper() + question[1:], serialize(query), "select_where_text",
        ctx.external_knowledge(),
    )


def _t_select_where_numeric(ctx: _Context) -> QuestionSQL | None:
    table = ctx.pick_table_with(_NAMEISH)
    if table is None:
        return None
    select_col = ctx.pick_column(table, _NAMEISH)
    num_col = ctx.pick_column(table, _NUMERIC)
    if select_col is None or num_col is None:
        return None
    threshold = ctx.numeric_threshold(table, num_col)
    if threshold is None:
        return None
    op, word = ctx.rng.choice([(">", "more than"), ("<", "less than"), (">=", "at least")])
    select_phrase = ctx.phrase(table, select_col)
    num_phrase = ctx.phrase(table, num_col)
    question = ctx.rng.choice(
        [
            f"List the {select_phrase} of {ctx.noun(table)} with {num_phrase} {word} {threshold}.",
            f"Which {ctx.noun(table)} have a {num_phrase} {word} {threshold}? Give their {select_phrase}.",
            f"Find the {select_phrase} of all {ctx.noun(table)} whose {num_phrase} is {word} {threshold}.",
        ]
    )
    query = Query(
        select_items=(SelectItem(_col(table, select_col)),),
        from_table=table.name,
        where=BinaryCondition(_col(table, num_col), op, Literal(threshold)),
    )
    return QuestionSQL(question, serialize(query), "select_where_numeric",
                       ctx.external_knowledge())


def _t_count_where(ctx: _Context) -> QuestionSQL | None:
    table = ctx.pick_table_with(_TEXTUAL)
    if table is None:
        return None
    filter_col = ctx.pick_column(table, _TEXTUAL)
    if filter_col is None:
        return None
    value = ctx.value_of(table, filter_col)
    if value is None:
        return None
    filter_phrase = ctx.phrase(table, filter_col)
    question = ctx.rng.choice(
        [
            f"How many {ctx.noun(table)} have {filter_phrase} {_surface(value)}?",
            f"Count the {ctx.noun(table)} whose {filter_phrase} is {_surface(value)}.",
            f"What is the number of {ctx.noun(table)} with a {filter_phrase} of {_surface(value)}?",
        ]
    )
    query = Query(
        select_items=(SelectItem(Aggregation("count", ColumnRef("", "*"))),),
        from_table=table.name,
        where=BinaryCondition(_col(table, filter_col), "=", Literal(value)),
    )
    return QuestionSQL(question, serialize(query), "count_where",
                       ctx.external_knowledge())


def _t_aggregate(ctx: _Context) -> QuestionSQL | None:
    table = ctx.pick_table_with(_NUMERIC)
    if table is None:
        return None
    num_col = ctx.pick_column(table, _NUMERIC)
    if num_col is None:
        return None
    func, word = ctx.rng.choice(
        [("avg", "average"), ("max", "maximum"), ("min", "minimum"), ("sum", "total")]
    )
    num_phrase = ctx.phrase(table, num_col)
    question = ctx.rng.choice(
        [
            f"What is the {word} {num_phrase} of all {ctx.noun(table)}?",
            f"Give the {word} {num_phrase} across {ctx.noun(table)}.",
            f"Compute the {word} {num_phrase} over every {ctx.singular(table)}.",
        ]
    )
    query = Query(
        select_items=(SelectItem(Aggregation(func, _col(table, num_col))),),
        from_table=table.name,
    )
    return QuestionSQL(question, serialize(query), "aggregate",
                       ctx.external_knowledge())


def _t_top_k(ctx: _Context) -> QuestionSQL | None:
    table = ctx.pick_table_with(_NAMEISH)
    if table is None:
        return None
    select_col = ctx.pick_column(table, _NAMEISH)
    num_col = ctx.pick_column(table, _NUMERIC)
    if select_col is None or num_col is None:
        return None
    descending = ctx.rng.random() < 0.7
    k = ctx.rng.choice([1, 1, 3, 5])
    direction = "highest" if descending else "lowest"
    select_phrase = ctx.phrase(table, select_col)
    num_phrase = ctx.phrase(table, num_col)
    if k == 1:
        question = ctx.rng.choice(
            [
                f"What is the {select_phrase} of the {ctx.singular(table)} with the {direction} {num_phrase}?",
                f"Find the {select_phrase} of the {ctx.singular(table)} that has the {direction} {num_phrase}.",
            ]
        )
    else:
        phrasings = [
            f"List the {select_phrase} of the {k} {ctx.noun(table)} with the {direction} {num_phrase}.",
        ]
        if descending:
            # "top k by X" implies descending; only valid for that branch.
            phrasings.append(
                f"Show the top {k} {ctx.noun(table)} by {num_phrase}: give their {select_phrase}."
            )
        question = ctx.rng.choice(phrasings)
    query = Query(
        select_items=(SelectItem(_col(table, select_col)),),
        from_table=table.name,
        order_by=(OrderItem(_col(table, num_col), descending=descending),),
        limit=k,
    )
    return QuestionSQL(question, serialize(query), "top_k", ctx.external_knowledge())


def _t_group_count(ctx: _Context) -> QuestionSQL | None:
    table = ctx.pick_table_with(("category", "status", "gender", "city", "country"))
    if table is None:
        return None
    group_col = ctx.pick_column(
        table, ("category", "status", "gender", "city", "country")
    )
    if group_col is None:
        return None
    group_phrase = ctx.phrase(table, group_col)
    question = ctx.rng.choice(
        [
            f"How many {ctx.noun(table)} are there for each {group_phrase}?",
            f"Count the number of {ctx.noun(table)} per {group_phrase}.",
            f"For each {group_phrase}, how many {ctx.noun(table)} are there?",
        ]
    )
    query = Query(
        select_items=(
            SelectItem(_col(table, group_col)),
            SelectItem(Aggregation("count", ColumnRef("", "*"))),
        ),
        from_table=table.name,
        group_by=(_col(table, group_col),),
    )
    return QuestionSQL(question, serialize(query), "group_count",
                       ctx.external_knowledge())


def _t_group_having(ctx: _Context) -> QuestionSQL | None:
    table = ctx.pick_table_with(("category", "status", "city", "country"))
    if table is None:
        return None
    group_col = ctx.pick_column(table, ("category", "status", "city", "country"))
    if group_col is None:
        return None
    threshold = ctx.rng.randint(2, 5)
    group_phrase = ctx.phrase(table, group_col)
    question = ctx.rng.choice(
        [
            f"Which {group_phrase} values appear in more than {threshold} {ctx.noun(table)}?",
            f"List every {group_phrase} shared by at least {threshold + 1} {ctx.noun(table)}.",
        ]
    )
    query = Query(
        select_items=(SelectItem(_col(table, group_col)),),
        from_table=table.name,
        group_by=(_col(table, group_col),),
        having=BinaryCondition(
            Aggregation("count", ColumnRef("", "*")), ">", Literal(threshold)
        ),
    )
    return QuestionSQL(question, serialize(query), "group_having",
                       ctx.external_knowledge())


def _pick_fk(ctx: _Context):
    """A random FK edge, canonicalized to the first edge between its pair.

    When two tables are linked by several foreign keys (e.g. home/away
    team), the question cannot distinguish them, so the benchmark always
    uses the canonical (first-declared) edge.
    """
    if not ctx.gdb.schema.foreign_keys:
        return None
    sampled = ctx.rng.choice(list(ctx.gdb.schema.foreign_keys))
    return ctx.gdb.schema.join_edge(sampled.src_table, sampled.dst_table) or sampled


def _t_join_select(ctx: _Context) -> QuestionSQL | None:
    fkey = _pick_fk(ctx)
    if fkey is None:
        return None
    entity = ctx.gdb.schema.table(fkey.dst_table)
    relation = ctx.gdb.schema.table(fkey.src_table)
    select_col = ctx.pick_column(entity, _NAMEISH)
    filter_col = ctx.pick_column(relation, _TEXTUAL)
    if select_col is None or filter_col is None:
        return None
    value = ctx.value_of(relation, filter_col)
    if value is None:
        return None
    select_phrase = ctx.phrase(entity, select_col)
    filter_phrase = ctx.phrase(relation, filter_col)
    question = ctx.rng.choice(
        [
            f"List the {select_phrase} of {ctx.noun(entity)} that have a {ctx.singular(relation)} with {filter_phrase} {_surface(value)}.",
            f"Which {ctx.noun(entity)} are linked to a {ctx.singular(relation)} whose {filter_phrase} is {_surface(value)}? Show their {select_phrase}.",
        ]
    )
    query = Query(
        select_items=(SelectItem(_col(entity, select_col)),),
        from_table=entity.name,
        joins=(
            JoinEdge(
                table=relation.name,
                left=ColumnRef(entity.name, fkey.dst_column),
                right=ColumnRef(relation.name, fkey.src_column),
            ),
        ),
        where=BinaryCondition(_col(relation, filter_col), "=", Literal(value)),
    )
    return QuestionSQL(question, serialize(query), "join_select",
                       ctx.external_knowledge())


def _t_join_count(ctx: _Context) -> QuestionSQL | None:
    fkey = _pick_fk(ctx)
    if fkey is None:
        return None
    entity = ctx.gdb.schema.table(fkey.dst_table)
    relation = ctx.gdb.schema.table(fkey.src_table)
    name_col = ctx.pick_column(entity, _NAMEISH)
    if name_col is None:
        return None
    name_phrase = ctx.phrase(entity, name_col)
    question = ctx.rng.choice(
        [
            f"For each {ctx.singular(entity)}, how many {ctx.noun(relation)} does it have? Show the {name_phrase} and the count.",
            f"Count the {ctx.noun(relation)} of every {ctx.singular(entity)}, listing its {name_phrase}.",
        ]
    )
    query = Query(
        select_items=(
            SelectItem(_col(entity, name_col)),
            SelectItem(Aggregation("count", ColumnRef("", "*"))),
        ),
        from_table=entity.name,
        joins=(
            JoinEdge(
                table=relation.name,
                left=ColumnRef(entity.name, fkey.dst_column),
                right=ColumnRef(relation.name, fkey.src_column),
            ),
        ),
        group_by=(_col(entity, name_col),),
    )
    return QuestionSQL(question, serialize(query), "join_count",
                       ctx.external_knowledge())


def _t_distinct(ctx: _Context) -> QuestionSQL | None:
    table = ctx.pick_table_with(("category", "status", "city", "country"))
    if table is None:
        return None
    col = ctx.pick_column(table, ("category", "status", "city", "country"))
    if col is None:
        return None
    phrase = ctx.phrase(table, col)
    question = ctx.rng.choice(
        [
            f"What are the distinct {phrase} values among {ctx.noun(table)}?",
            f"List all different {phrase} values of {ctx.noun(table)}.",
        ]
    )
    query = Query(
        select_items=(SelectItem(_col(table, col)),),
        from_table=table.name,
        distinct=True,
    )
    return QuestionSQL(question, serialize(query), "distinct",
                       ctx.external_knowledge())


def _t_between(ctx: _Context) -> QuestionSQL | None:
    table = ctx.pick_table_with(_NAMEISH)
    if table is None:
        return None
    select_col = ctx.pick_column(table, _NAMEISH)
    num_col = ctx.pick_column(table, ("year",))
    if select_col is None or num_col is None:
        return None
    low = ctx.rng.randint(1950, 2000)
    high = low + ctx.rng.randint(5, 20)
    select_phrase = ctx.phrase(table, select_col)
    num_phrase = ctx.phrase(table, num_col)
    question = ctx.rng.choice(
        [
            f"Show the {select_phrase} of {ctx.noun(table)} whose {num_phrase} is between {low} and {high}.",
            f"Which {ctx.noun(table)} have a {num_phrase} from {low} to {high}? List their {select_phrase}.",
        ]
    )
    query = Query(
        select_items=(SelectItem(_col(table, select_col)),),
        from_table=table.name,
        where=BetweenCondition(_col(table, num_col), Literal(low), Literal(high)),
    )
    return QuestionSQL(question, serialize(query), "between",
                       ctx.external_knowledge())


def _t_in_list(ctx: _Context) -> QuestionSQL | None:
    table = ctx.pick_table_with(_NAMEISH)
    if table is None:
        return None
    select_col = ctx.pick_column(table, _NAMEISH)
    filter_col = ctx.pick_column(table, ("city", "country", "category"))
    if select_col is None or filter_col is None or select_col == filter_col:
        return None
    values = ctx.gdb.database.distinct_values(table.name, filter_col, limit=50)
    values = [v for v in values if isinstance(v, str)]
    if len(values) < 2:
        return None
    first, second = ctx.rng.sample(values, 2)
    select_phrase = ctx.phrase(table, select_col)
    filter_phrase = ctx.phrase(table, filter_col)
    question = ctx.rng.choice(
        [
            f"List the {select_phrase} of {ctx.noun(table)} whose {filter_phrase} is either {_surface(first)} or {_surface(second)}.",
            f"Show the {select_phrase} of {ctx.noun(table)} from {_surface(first)} or {_surface(second)}.",
        ]
    )
    query = Query(
        select_items=(SelectItem(_col(table, select_col)),),
        from_table=table.name,
        where=InCondition(
            _col(table, filter_col), values=(Literal(first), Literal(second))
        ),
    )
    return QuestionSQL(question, serialize(query), "in_list",
                       ctx.external_knowledge())


def _t_order_list(ctx: _Context) -> QuestionSQL | None:
    table = ctx.pick_table_with(_NAMEISH)
    if table is None:
        return None
    select_col = ctx.pick_column(table, _NAMEISH)
    order_col = ctx.pick_column(table, _NUMERIC)
    if select_col is None or order_col is None:
        return None
    select_phrase = ctx.phrase(table, select_col)
    order_phrase = ctx.phrase(table, order_col)
    question = ctx.rng.choice(
        [
            f"List the {select_phrase} of all {ctx.noun(table)} sorted by {order_phrase} in ascending order.",
            f"Show every {ctx.singular(table)}'s {select_phrase} ordered by {order_phrase} from smallest to largest.",
        ]
    )
    query = Query(
        select_items=(SelectItem(_col(table, select_col)),),
        from_table=table.name,
        order_by=(OrderItem(_col(table, order_col), descending=False),),
    )
    return QuestionSQL(question, serialize(query), "order_list",
                       ctx.external_knowledge())


def _t_count_distinct(ctx: _Context) -> QuestionSQL | None:
    table = ctx.pick_table_with(("category", "city", "country", "status"))
    if table is None:
        return None
    col = ctx.pick_column(table, ("category", "city", "country", "status"))
    if col is None:
        return None
    phrase = ctx.phrase(table, col)
    question = ctx.rng.choice(
        [
            f"How many different {phrase} values do the {ctx.noun(table)} have?",
            f"Count the distinct {phrase} values among {ctx.noun(table)}.",
        ]
    )
    query = Query(
        select_items=(
            SelectItem(Aggregation("count", _col(table, col), distinct=True)),
        ),
        from_table=table.name,
    )
    return QuestionSQL(question, serialize(query), "count_distinct",
                       ctx.external_knowledge())


def _t_and_conditions(ctx: _Context) -> QuestionSQL | None:
    table = ctx.pick_table_with(_NAMEISH)
    if table is None:
        return None
    select_col = ctx.pick_column(table, _NAMEISH)
    text_col = ctx.pick_column(table, _TEXTUAL)
    num_col = ctx.pick_column(table, _NUMERIC)
    if None in (select_col, text_col, num_col) or select_col == text_col:
        return None
    value = ctx.value_of(table, text_col)
    threshold = ctx.numeric_threshold(table, num_col)
    if value is None or threshold is None:
        return None
    select_phrase = ctx.phrase(table, select_col)
    text_phrase = ctx.phrase(table, text_col)
    num_phrase = ctx.phrase(table, num_col)
    question = (
        f"Find the {select_phrase} of {ctx.noun(table)} whose {text_phrase} is "
        f"{_surface(value)} and whose {num_phrase} is greater than {threshold}."
    )
    query = Query(
        select_items=(SelectItem(_col(table, select_col)),),
        from_table=table.name,
        where=CompoundCondition(
            op="AND",
            conditions=(
                BinaryCondition(_col(table, text_col), "=", Literal(value)),
                BinaryCondition(_col(table, num_col), ">", Literal(threshold)),
            ),
        ),
    )
    return QuestionSQL(question, serialize(query), "and_conditions",
                       ctx.external_knowledge())


def _t_or_conditions(ctx: _Context) -> QuestionSQL | None:
    table = ctx.pick_table_with(_NAMEISH)
    if table is None:
        return None
    select_col = ctx.pick_column(table, _NAMEISH)
    num_col = ctx.pick_column(table, ("year",))
    if select_col is None or num_col is None:
        return None
    first = ctx.rng.randint(1950, 2000)
    second = first + 1
    select_phrase = ctx.phrase(table, select_col)
    num_phrase = ctx.phrase(table, num_col)
    question = ctx.rng.choice(
        [
            f"Show the {select_phrase} of {ctx.noun(table)} whose {num_phrase} is {first} or {second}.",
            f"List the {select_phrase} of every {ctx.singular(table)} with a {num_phrase} of {first} or {second}.",
        ]
    )
    query = Query(
        select_items=(SelectItem(_col(table, select_col)),),
        from_table=table.name,
        where=CompoundCondition(
            op="OR",
            conditions=(
                BinaryCondition(_col(table, num_col), "=", Literal(first)),
                BinaryCondition(_col(table, num_col), "=", Literal(second)),
            ),
        ),
    )
    return QuestionSQL(question, serialize(query), "or_conditions",
                       ctx.external_knowledge())


def _t_subquery_gt_avg(ctx: _Context) -> QuestionSQL | None:
    table = ctx.pick_table_with(_NAMEISH)
    if table is None:
        return None
    select_col = ctx.pick_column(table, _NAMEISH)
    num_col = ctx.pick_column(table, ("amount", "count", "score"))
    if select_col is None or num_col is None:
        return None
    select_phrase = ctx.phrase(table, select_col)
    num_phrase = ctx.phrase(table, num_col)
    question = ctx.rng.choice(
        [
            f"List the {select_phrase} of {ctx.noun(table)} whose {num_phrase} is above the average.",
            f"Which {ctx.noun(table)} have a {num_phrase} higher than the average {num_phrase}? Show their {select_phrase}.",
        ]
    )
    inner = Query(
        select_items=(SelectItem(Aggregation("avg", _col(table, num_col))),),
        from_table=table.name,
    )
    query = Query(
        select_items=(SelectItem(_col(table, select_col)),),
        from_table=table.name,
        where=BinaryCondition(_col(table, num_col), ">", inner),
    )
    return QuestionSQL(question, serialize(query), "subquery_gt_avg",
                       ctx.external_knowledge())


def _t_like_prefix(ctx: _Context) -> QuestionSQL | None:
    table = ctx.pick_table_with(("person_name", "title"))
    if table is None:
        return None
    col = ctx.pick_column(table, ("person_name", "title"))
    if col is None:
        return None
    value = ctx.value_of(table, col)
    if value is None or not value.strip():
        return None
    prefix = value.strip()[0].upper()
    phrase = ctx.phrase(table, col)
    question = ctx.rng.choice(
        [
            f"List the {phrase} of {ctx.noun(table)} whose {phrase} starts with the letter {prefix}.",
            f"Which {ctx.noun(table)} have a {phrase} beginning with {prefix}?",
        ]
    )
    query = Query(
        select_items=(SelectItem(_col(table, col)),),
        from_table=table.name,
        where=LikeCondition(_col(table, col), Literal(f"{prefix}%")),
    )
    return QuestionSQL(question, serialize(query), "like_prefix",
                       ctx.external_knowledge())


#: Template id -> builder.  Order defines sampling weights (uniform).
TEMPLATES = {
    "count_all": _t_count_all,
    "select_where_text": _t_select_where_text,
    "select_where_numeric": _t_select_where_numeric,
    "count_where": _t_count_where,
    "aggregate": _t_aggregate,
    "top_k": _t_top_k,
    "group_count": _t_group_count,
    "group_having": _t_group_having,
    "join_select": _t_join_select,
    "join_count": _t_join_count,
    "distinct": _t_distinct,
    "between": _t_between,
    "in_list": _t_in_list,
    "order_list": _t_order_list,
    "count_distinct": _t_count_distinct,
    "and_conditions": _t_and_conditions,
    "or_conditions": _t_or_conditions,
    "subquery_gt_avg": _t_subquery_gt_avg,
    "like_prefix": _t_like_prefix,
}


def template_ids() -> list[str]:
    """All template family identifiers."""
    return list(TEMPLATES)


def sample_question_sql(
    gdb: GeneratedDatabase,
    rng: random.Random,
    template_id: str | None = None,
    max_attempts: int = 20,
) -> QuestionSQL | None:
    """Draw one (question, SQL) pair from ``gdb``.

    Retries across templates until one applies; returns ``None`` only if
    the database supports none of them (shouldn't happen for blueprint
    databases).
    """
    ids = [template_id] if template_id else list(TEMPLATES)
    for _ in range(max_attempts):
        chosen = rng.choice(ids)
        ctx = _Context(gdb, rng)
        result = TEMPLATES[chosen](ctx)
        if result is not None and gdb.database.is_executable(result.sql):
            return result
    return None
