"""Instantiate domain blueprints into populated SQLite databases.

Options cover the benchmark stress axes:

- ``ambiguous_naming`` — rename descriptive columns to cryptic
  abbreviations ("a2"-style, as in BIRD) while keeping the real meaning
  in the column comment;
- ``extra_columns`` — pad tables with distractor columns (wide tables);
- ``dirty_values`` — perturb the stored text values' surface form;
- ``rows_per_table`` — content scale (BIRD's databases are ~250x
  larger than Spider's).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.db.database import Database
from repro.db.schema import Column, ForeignKey, Schema, Table
from repro.db.values import ValueGenerator, WORDS
from repro.datasets.blueprints import ColumnSpec, DomainBlueprint, TableSpec
from repro.errors import DatasetError
from repro.sqlgen.ast import identifier_key


@dataclass(frozen=True)
class GenerationOptions:
    """Knobs controlling how a blueprint becomes a database."""

    rows_per_table: int = 40
    ambiguous_naming: bool = False
    ambiguous_fraction: float = 0.5
    #: Fraction of renamed (cryptic) columns that keep an informative
    #: comment; the rest are undocumented, as in real dirty databases.
    comment_coverage: float = 1.0
    extra_columns: int = 0
    dirty_values: bool = False
    seed: int = 0


@dataclass
class GeneratedDatabase:
    """A populated database plus the semantic map questions rely on."""

    db_id: str
    database: Database
    blueprint: DomainBlueprint
    #: (table, actual column name) -> the originating spec.
    column_specs: dict[tuple[str, str], ColumnSpec] = field(default_factory=dict)
    #: actual column names that were renamed to cryptic abbreviations.
    ambiguous_columns: set[tuple[str, str]] = field(default_factory=set)

    @property
    def schema(self) -> Schema:
        return self.database.schema

    def spec_of(self, table: str, column: str) -> ColumnSpec:
        return self.column_specs[(table.lower(), column.lower())]

    def table_noun(self, table: str) -> str:
        for spec in self.blueprint.tables:
            if identifier_key(spec.name) == identifier_key(table):
                return spec.noun()
        return table.replace("_", " ") + "s"

    def readable_phrase(self, table: str, column: str) -> str:
        """The phrase questions use for a column (its real meaning)."""
        return self.spec_of(table, column).readable()

    def is_ambiguous(self, table: str, column: str) -> bool:
        return (table.lower(), column.lower()) in self.ambiguous_columns

    def columns_with_semantic(
        self, table: str, semantics: tuple[str, ...]
    ) -> list[str]:
        """Actual column names of ``table`` whose semantic is in ``semantics``."""
        out: list[str] = []
        for (tbl, col), spec in self.column_specs.items():
            if tbl == identifier_key(table) and spec.semantic in semantics:
                out.append(col)
        return sorted(out)


def _value_for(semantic: str, gen: ValueGenerator, pk_ranges: dict[str, int]):
    """Draw one value from the pool named by ``semantic``."""
    if semantic.startswith("fk:"):
        target = semantic.split(":", 1)[1]
        upper = pk_ranges.get(target, 1)
        return gen.integer(1, max(1, upper))
    producers = {
        "person_name": gen.person_name,
        "first_name": gen.first_name,
        "city": gen.city,
        "country": gen.country,
        "category": gen.category,
        "status": gen.category,
        "gender": gen.gender,
        "year": gen.year,
        "amount": gen.amount,
        "count": lambda: gen.integer(0, 5000),
        "small_count": lambda: gen.integer(0, 12),
        "score": lambda: round(gen.amount(0.0, 10.0), 2),
        "date": gen.date,
        "title": gen.title,
        "word": gen.word,
        "noise": gen.word,
        "code": gen.code,
        "email": gen.email,
        "flag": gen.boolean_flag,
        "text": gen.phrase,
    }
    try:
        return producers[semantic]()
    except KeyError:
        raise DatasetError(f"unknown column semantic {semantic!r}") from None


def _dirty(value, rng: random.Random):
    if not isinstance(value, str) or rng.random() > 0.25:
        return value
    style = rng.randrange(3)
    if style == 0:
        return value.upper()
    if style == 1:
        return f" {value}"
    return value.lower()


def _abbreviate(name: str, index: int) -> str:
    """Cryptic abbreviation of a column name, BIRD-style ("a2", "rotl")."""
    initials = "".join(part[0] for part in name.split("_") if part)
    return f"{initials or name[0]}{index}"


def instantiate_blueprint(
    blueprint: DomainBlueprint,
    db_id: str,
    options: GenerationOptions | None = None,
) -> GeneratedDatabase:
    """Materialize ``blueprint`` into a populated database."""
    options = options or GenerationOptions()
    rng = random.Random(f"gen:{options.seed}:{db_id}")
    # zlib.crc32 is stable across processes (unlike built-in hash()).
    gen = ValueGenerator(seed=zlib.crc32(f"{options.seed}:{db_id}".encode()))

    # Decide naming and extra distractor columns per table.
    column_specs: dict[tuple[str, str], ColumnSpec] = {}
    ambiguous: set[tuple[str, str]] = set()
    tables: list[Table] = []
    table_specs: list[tuple[TableSpec, list[tuple[str, ColumnSpec]]]] = []

    for table_spec in blueprint.tables:
        actual_columns: list[tuple[str, ColumnSpec]] = []
        for index, col_spec in enumerate(table_spec.columns):
            actual_name = col_spec.name
            is_key = col_spec.semantic == "pk" or col_spec.semantic.startswith("fk:")
            if (
                options.ambiguous_naming
                and not is_key
                and rng.random() < options.ambiguous_fraction
            ):
                actual_name = _abbreviate(col_spec.name, index)
                ambiguous.add((table_spec.name.lower(), actual_name.lower()))
            actual_columns.append((actual_name, col_spec))
        for extra_index in range(options.extra_columns):
            word_a = rng.choice(WORDS)
            word_b = rng.choice(["ref", "flag", "note", "aux", "tag"])
            extra_name = f"{word_a}_{word_b}{extra_index}"
            extra_spec = ColumnSpec(
                name=extra_name, type="TEXT", semantic="noise",
                phrase=extra_name.replace("_", " "),
            )
            actual_columns.append((extra_name, extra_spec))
        columns = []
        for actual_name, col_spec in actual_columns:
            comment = col_spec.comment
            if (table_spec.name.lower(), actual_name.lower()) in ambiguous:
                documented = rng.random() < options.comment_coverage
                comment = col_spec.readable() if documented else ""
            columns.append(
                Column(
                    name=actual_name,
                    type=col_spec.type,
                    comment=comment,
                    is_primary=col_spec.semantic == "pk",
                )
            )
            column_specs[(table_spec.name.lower(), actual_name.lower())] = col_spec
        tables.append(
            Table(name=table_spec.name, columns=tuple(columns), comment=table_spec.comment)
        )
        table_specs.append((table_spec, actual_columns))

    foreign_keys = tuple(
        ForeignKey(fk.src_table, fk.src_column, fk.dst_table, fk.dst_column)
        for fk in blueprint.foreign_keys
    )
    schema = Schema(
        name=db_id, tables=tuple(tables), foreign_keys=foreign_keys,
        domain=blueprint.domain,
    )

    # Populate rows; FK columns reference the 1..N primary-key range.
    pk_ranges = {spec.name: options.rows_per_table for spec, _ in table_specs}
    rows: dict[str, list[tuple]] = {}
    for (table_spec, actual_columns), table in zip(table_specs, tables):
        table_rows: list[tuple] = []
        for row_index in range(1, options.rows_per_table + 1):
            row: list = []
            for (actual_name, col_spec), column in zip(actual_columns, table.columns):
                if col_spec.semantic == "pk":
                    row.append(row_index)
                    continue
                value = _value_for(col_spec.semantic, gen, pk_ranges)
                if options.dirty_values:
                    value = _dirty(value, rng)
                row.append(value)
            table_rows.append(tuple(row))
        rows[table.name] = table_rows

    database = Database.from_schema(schema, rows)
    return GeneratedDatabase(
        db_id=db_id,
        database=database,
        blueprint=blueprint,
        column_specs=column_specs,
        ambiguous_columns=ambiguous,
    )
