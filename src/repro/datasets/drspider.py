"""Dr.Spider: 17 perturbation test sets in three categories (§9.1.1).

- **DB** perturbations rebuild the databases (schema renamed to
  synonyms or abbreviations, or stored content re-expressed) and
  rewrite the gold SQL accordingly, leaving questions untouched;
- **NLQ** perturbations rewrite the dev questions;
- **SQL** perturbations are fresh test sets concentrated on specific
  SQL phenomena (comparisons, sort orders, numbers absent from the DB,
  text vs numeric predicates).
"""

from __future__ import annotations

import random
from typing import Callable

from repro.datasets.base import Text2SQLDataset, Text2SQLExample
from repro.datasets.generator import GeneratedDatabase
from repro.datasets.perturb import (
    SCHEMA_SYNONYMS,
    VALUE_VARIANTS,
    carrier_question,
    column_attribute_question,
    column_carrier_question,
    column_value_question,
    keyword_synonym_question,
    multitype_question,
    others_question,
    synonym_question,
    value_synonym_question,
)
from repro.datasets.spider import SpiderConfig, build_spider
from repro.datasets.templates import sample_question_sql
from repro.db.database import Database
from repro.db.schema import Column, ForeignKey, Schema, Table
from repro.errors import DatasetError
from repro.sqlgen.parser import parse_sql
from repro.sqlgen.serializer import serialize
from repro.sqlgen.transform import map_literals, rename_query

#: Table-name synonyms for the schema-synonym perturbation.
TABLE_SYNONYMS: dict[str, str] = {
    "singer": "vocalist",
    "customer": "client",
    "employee": "staff_member",
    "doctor": "physician",
    "student": "pupil",
    "team": "club",
    "movie": "film",
    "book": "publication",
    "restaurant": "eatery",
    "property": "listing",
}

DR_SPIDER_PERTURBATIONS: dict[str, tuple[str, ...]] = {
    "DB": ("schema-synonym", "schema-abbreviation", "DBcontent-equivalence"),
    "NLQ": (
        "keyword-synonym", "keyword-carrier", "column-synonym",
        "column-carrier", "column-attribute", "column-value",
        "value-synonym", "multitype", "others",
    ),
    "SQL": ("comparison", "sort-order", "nonDB-number", "DB-text", "DB-number"),
}

_NLQ_PERTURBERS: dict[str, Callable] = {
    "keyword-synonym": keyword_synonym_question,
    "keyword-carrier": carrier_question,
    "column-synonym": synonym_question,
    "column-carrier": column_carrier_question,
    "column-attribute": column_attribute_question,
    "column-value": column_value_question,
    "value-synonym": value_synonym_question,
    "multitype": multitype_question,
    "others": others_question,
}

_SQL_SIDE_TEMPLATES: dict[str, tuple[str, ...]] = {
    "comparison": ("select_where_numeric", "and_conditions"),
    "sort-order": ("top_k", "order_list"),
    "nonDB-number": ("count_all", "count_where", "group_having"),
    "DB-text": ("select_where_text", "join_select", "in_list"),
    "DB-number": ("between", "or_conditions", "select_where_numeric"),
}


def all_perturbation_names() -> list[str]:
    return [name for names in DR_SPIDER_PERTURBATIONS.values() for name in names]


def category_of(perturbation: str) -> str:
    for category, names in DR_SPIDER_PERTURBATIONS.items():
        if perturbation in names:
            return category
    raise DatasetError(f"unknown Dr.Spider perturbation {perturbation!r}")


# ---------------------------------------------------------------------------
# DB-side helpers
# ---------------------------------------------------------------------------


def _rename_database(
    database: Database,
    table_map: dict[str, str],
    column_map: dict[tuple[str, str], str],
    comment_from_old_name: bool,
) -> Database:
    """Rebuild ``database`` under renamed tables/columns, same content."""
    old_schema = database.schema
    tables = []
    for table in old_schema.tables:
        new_columns = []
        for column in table.columns:
            new_name = column_map.get(
                (table.name.lower(), column.name.lower()), column.name
            )
            comment = column.comment
            if comment_from_old_name and new_name != column.name:
                comment = column.name.replace("_", " ")
            new_columns.append(
                Column(
                    name=new_name, type=column.type, comment=comment,
                    is_primary=column.is_primary,
                )
            )
        tables.append(
            Table(
                name=table_map.get(table.name.lower(), table.name),
                columns=tuple(new_columns),
                comment=table.comment,
            )
        )
    foreign_keys = tuple(
        ForeignKey(
            src_table=table_map.get(fk.src_table.lower(), fk.src_table),
            src_column=column_map.get(
                (fk.src_table.lower(), fk.src_column.lower()), fk.src_column
            ),
            dst_table=table_map.get(fk.dst_table.lower(), fk.dst_table),
            dst_column=column_map.get(
                (fk.dst_table.lower(), fk.dst_column.lower()), fk.dst_column
            ),
        )
        for fk in old_schema.foreign_keys
    )
    schema = Schema(
        name=old_schema.name, tables=tuple(tables), foreign_keys=foreign_keys,
        domain=old_schema.domain,
    )
    rows = database.all_rows()
    renamed_rows = {
        table_map.get(name.lower(), name): content for name, content in rows.items()
    }
    return Database.from_schema(schema, renamed_rows)


def _synonym_name(name: str) -> str:
    replacement = SCHEMA_SYNONYMS.get(name.replace("_", " "))
    if replacement is None:
        # Try the last component ("home_city" -> "home_town").
        parts = name.split("_")
        tail = SCHEMA_SYNONYMS.get(parts[-1])
        if tail is None:
            return name
        return "_".join([*parts[:-1], tail.replace(" ", "_")])
    return replacement.replace(" ", "_")


def _abbreviate_name(name: str, index: int) -> str:
    initials = "".join(part[0] for part in name.split("_") if part)
    return f"{initials or name[0]}{index}"


def _build_db_perturbation(
    perturbation: str, spider: Text2SQLDataset, seed: int
) -> Text2SQLDataset:
    databases: dict[str, Database] = {}
    rename_tables: dict[str, dict[str, str]] = {}
    rename_columns: dict[str, dict[tuple[str, str], str]] = {}
    value_maps: dict[str, dict[str, str]] = {}

    for db_id, database in spider.databases.items():
        if perturbation == "DBcontent-equivalence":
            value_map = VALUE_VARIANTS
            rows = database.all_rows()
            mapped_rows = {
                table: [
                    tuple(
                        value_map.get(cell, cell) if isinstance(cell, str) else cell
                        for cell in row
                    )
                    for row in content
                ]
                for table, content in rows.items()
            }
            databases[db_id] = database.clone_with_rows(mapped_rows)
            value_maps[db_id] = value_map
            continue
        table_map: dict[str, str] = {}
        column_map: dict[tuple[str, str], str] = {}
        for table in database.schema.tables:
            if perturbation == "schema-synonym":
                new_table = TABLE_SYNONYMS.get(table.name.lower(), table.name)
                if new_table != table.name:
                    table_map[table.name.lower()] = new_table
            for index, column in enumerate(table.columns):
                is_key = column.is_primary or column.name.lower().endswith("_id")
                if is_key:
                    continue
                if perturbation == "schema-synonym":
                    new_name = _synonym_name(column.name)
                else:  # schema-abbreviation
                    new_name = _abbreviate_name(column.name, index)
                if new_name != column.name:
                    column_map[(table.name.lower(), column.name.lower())] = new_name
        databases[db_id] = _rename_database(
            database, table_map, column_map,
            comment_from_old_name=(perturbation == "schema-abbreviation"),
        )
        rename_tables[db_id] = table_map
        rename_columns[db_id] = column_map

    def rewrite(example: Text2SQLExample) -> Text2SQLExample:
        query = parse_sql(example.sql)
        if perturbation == "DBcontent-equivalence":
            query = map_literals(query, value_maps[example.db_id])
        else:
            query = rename_query(
                query,
                rename_tables.get(example.db_id, {}),
                rename_columns.get(example.db_id, {}),
            )
        return Text2SQLExample(
            question=example.question,
            sql=serialize(query),
            db_id=example.db_id,
            external_knowledge=example.external_knowledge,
        )

    dev = [rewrite(example) for example in spider.dev]
    if perturbation == "DBcontent-equivalence":
        # Dr.Spider's content-equivalence set consists of samples whose
        # answer depends on re-expressed values; keep the affected
        # examples and top up with fresh value-centric ones.
        affected = [
            new for old, new in zip(spider.dev, dev) if old.sql != new.sql
        ]
        dev = affected + _fresh_value_examples(
            spider, value_maps, rewrite_count=max(0, 20 - len(affected)), seed=seed
        )
    # Training happens on the *unperturbed* Spider benchmark (the
    # evaluation protocol of §9.1.1); the perturbed dataset only carries
    # the rewritten dev split over the rebuilt databases.
    return Text2SQLDataset(
        name=f"dr-spider-{perturbation}",
        databases=databases,
        train=[],
        dev=dev,
    )


def _fresh_value_examples(
    spider: Text2SQLDataset,
    value_maps: dict[str, dict[str, str]],
    rewrite_count: int,
    seed: int,
) -> list[Text2SQLExample]:
    """Generate extra dev examples whose gold SQL hits a mapped value."""
    rng = random.Random(f"drspider:content:{seed}")
    templates = ("select_where_text", "in_list", "count_where", "join_select")
    dev_db_ids = sorted({example.db_id for example in spider.dev})
    out: list[Text2SQLExample] = []
    attempts = 0
    while len(out) < rewrite_count and attempts < rewrite_count * 40:
        attempts += 1
        db_id = rng.choice(dev_db_ids)
        gdb = spider.generated.get(db_id)
        if gdb is None:
            break
        pair = sample_question_sql(gdb, rng, template_id=rng.choice(templates))
        if pair is None:
            continue
        value_map = value_maps.get(db_id, {})
        query = map_literals(parse_sql(pair.sql), value_map)
        rewritten = serialize(query)
        if rewritten == pair.sql:
            continue  # no mapped value involved; not a content-equivalence probe
        out.append(Text2SQLExample(question=pair.question, sql=rewritten, db_id=db_id))
    return out


# ---------------------------------------------------------------------------
# public builder
# ---------------------------------------------------------------------------


def build_dr_spider(
    perturbation: str,
    spider: Text2SQLDataset | None = None,
    seed: int = 0,
    config: SpiderConfig | None = None,
    sql_side_examples_per_db: int = 12,
) -> Text2SQLDataset:
    """Build one of the 17 Dr.Spider perturbation test sets."""
    category = category_of(perturbation)
    spider = spider or build_spider(config)
    rng = random.Random(f"drspider:{perturbation}:{seed}")

    if category == "NLQ":
        perturb = _NLQ_PERTURBERS[perturbation]
        dev = [perturb(example, rng) for example in spider.dev]
        return Text2SQLDataset(
            name=f"dr-spider-{perturbation}",
            databases=spider.databases,
            train=spider.train,
            dev=dev,
            generated=spider.generated,
        )

    if category == "DB":
        return _build_db_perturbation(perturbation, spider, seed)

    # SQL-side: fresh dev examples concentrated on specific templates,
    # drawn from the dev databases only.
    template_pool = _SQL_SIDE_TEMPLATES[perturbation]
    dev_db_ids = {example.db_id for example in spider.dev}
    dev: list[Text2SQLExample] = []
    for db_id in sorted(dev_db_ids):
        gdb: GeneratedDatabase = spider.generated[db_id]
        produced = 0
        attempts = 0
        while produced < sql_side_examples_per_db and attempts < 200:
            attempts += 1
            pair = sample_question_sql(gdb, rng, template_id=rng.choice(template_pool))
            if pair is None:
                continue
            dev.append(
                Text2SQLExample(question=pair.question, sql=pair.sql, db_id=db_id)
            )
            produced += 1
    return Text2SQLDataset(
        name=f"dr-spider-{perturbation}",
        databases=spider.databases,
        train=spider.train,
        dev=dev,
        generated=spider.generated,
    )
