"""The BIRD-like benchmark: ambiguous schemas, wide tables, dirty values.

BIRD's defining stresses relative to Spider (§9.1.1):

- **ambiguous column names** — descriptive names are replaced by
  cryptic abbreviations whose meaning lives only in the column comment;
- **wide tables** — distractor columns pad every table;
- **large, dirty content** — far more rows, with noisy surface forms;
- **external knowledge** — optional per-example notes that map question
  phrases to the cryptic columns ("'birth year' refers to p3"),
  evaluated both with and without.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.base import Text2SQLDataset
from repro.datasets.generator import GenerationOptions
from repro.datasets.spider import _generate_examples, build_generated_databases


@dataclass(frozen=True)
class BirdConfig:
    """Scale knobs of the BIRD-like benchmark."""

    n_train_databases: int = 5
    n_dev_databases: int = 3
    train_per_database: int = 30
    dev_per_database: int = 16
    rows_per_table: int = 120
    extra_columns: int = 5
    ambiguous_fraction: float = 0.6
    comment_coverage: float = 0.5
    seed: int = 7


def build_bird(config: BirdConfig | None = None) -> Text2SQLDataset:
    """Build the BIRD-like benchmark (examples carry external knowledge)."""
    config = config or BirdConfig()
    total = config.n_train_databases + config.n_dev_databases
    generated = build_generated_databases(
        total,
        lambda index: GenerationOptions(
            rows_per_table=config.rows_per_table,
            ambiguous_naming=True,
            ambiguous_fraction=config.ambiguous_fraction,
            comment_coverage=config.comment_coverage,
            extra_columns=config.extra_columns,
            dirty_values=True,
            seed=config.seed + index,
        ),
        seed=config.seed,
        prefix="bird",
    )
    rng = random.Random(f"bird:{config.seed}")
    train = []
    dev = []
    for index, gdb in enumerate(generated):
        target = train if index < config.n_train_databases else dev
        count = (
            config.train_per_database
            if index < config.n_train_databases
            else config.dev_per_database
        )
        target.extend(_generate_examples(gdb, count, rng, with_ek=True))
    dataset = Text2SQLDataset(
        name="bird",
        databases={gdb.db_id: gdb.database for gdb in generated},
        train=train,
        dev=dev,
        generated={gdb.db_id: gdb for gdb in generated},
    )
    dataset.validate()
    return dataset
