"""Domain blueprints: the raw material of synthetic benchmarks.

A blueprint declares a domain's tables, typed columns with *semantics*
(which value pool fills them) and readable *phrases* (how questions
refer to them), and foreign keys.  Spider covers 138 domains with 200
databases; here a dozen blueprints instantiated with column dropout and
renaming provide the analogous cross-domain variety.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ColumnSpec:
    """One column: storage type, value semantics, question phrase."""

    name: str
    type: str
    semantic: str
    phrase: str = ""
    comment: str = ""

    def readable(self) -> str:
        return self.phrase or self.name.replace("_", " ")


@dataclass(frozen=True)
class TableSpec:
    """One table with its columns and the plural noun questions use."""

    name: str
    columns: tuple[ColumnSpec, ...]
    plural: str = ""
    comment: str = ""

    def noun(self) -> str:
        return self.plural or self.name.replace("_", " ") + "s"


@dataclass(frozen=True)
class FKSpec:
    src_table: str
    src_column: str
    dst_table: str
    dst_column: str


@dataclass(frozen=True)
class DomainBlueprint:
    """A complete domain schema description."""

    name: str
    domain: str
    tables: tuple[TableSpec, ...]
    foreign_keys: tuple[FKSpec, ...] = ()


def _col(name: str, type_: str, semantic: str, phrase: str = "", comment: str = "") -> ColumnSpec:
    return ColumnSpec(name=name, type=type_, semantic=semantic, phrase=phrase, comment=comment)


def _entity(name: str, *columns: ColumnSpec, plural: str = "", comment: str = "") -> TableSpec:
    pk = _col(f"{name}_id", "INTEGER", "pk", phrase=f"{name} id")
    return TableSpec(name=name, columns=(pk, *columns), plural=plural, comment=comment)


BLUEPRINTS: tuple[DomainBlueprint, ...] = (
    DomainBlueprint(
        name="concert_hall",
        domain="music",
        tables=(
            _entity(
                "singer",
                _col("name", "TEXT", "person_name", "name"),
                _col("country", "TEXT", "country", "country"),
                _col("birth_year", "INTEGER", "year", "birth year"),
                _col("genre", "TEXT", "category", "genre"),
            ),
            _entity(
                "album",
                _col("singer_id", "INTEGER", "fk:singer"),
                _col("title", "TEXT", "title", "title"),
                _col("release_year", "INTEGER", "year", "release year"),
                _col("sales", "REAL", "amount", "sales"),
            ),
            _entity(
                "concert",
                _col("singer_id", "INTEGER", "fk:singer"),
                _col("venue", "TEXT", "city", "venue city"),
                _col("attendance", "INTEGER", "count", "attendance"),
                _col("concert_date", "DATE", "date", "concert date"),
            ),
        ),
        foreign_keys=(
            FKSpec("album", "singer_id", "singer", "singer_id"),
            FKSpec("concert", "singer_id", "singer", "singer_id"),
        ),
    ),
    DomainBlueprint(
        name="college",
        domain="education",
        tables=(
            _entity(
                "student",
                _col("name", "TEXT", "person_name", "name"),
                _col("major", "TEXT", "category", "major"),
                _col("gpa", "REAL", "score", "gpa"),
                _col("enroll_year", "INTEGER", "year", "enrollment year"),
                _col("home_city", "TEXT", "city", "home city"),
            ),
            _entity(
                "course",
                _col("title", "TEXT", "title", "title"),
                _col("credits", "INTEGER", "small_count", "credits"),
                _col("department", "TEXT", "category", "department"),
            ),
            _entity(
                "enrollment",
                _col("student_id", "INTEGER", "fk:student"),
                _col("course_id", "INTEGER", "fk:course"),
                _col("grade", "REAL", "score", "grade"),
            ),
        ),
        foreign_keys=(
            FKSpec("enrollment", "student_id", "student", "student_id"),
            FKSpec("enrollment", "course_id", "course", "course_id"),
        ),
    ),
    DomainBlueprint(
        name="airline",
        domain="travel",
        tables=(
            _entity(
                "airport",
                _col("name", "TEXT", "title", "name"),
                _col("city", "TEXT", "city", "city"),
                _col("country", "TEXT", "country", "country"),
                _col("runways", "INTEGER", "small_count", "number of runways"),
            ),
            _entity(
                "flight",
                _col("origin_id", "INTEGER", "fk:airport"),
                _col("destination_id", "INTEGER", "fk:airport"),
                _col("distance", "REAL", "amount", "distance"),
                _col("departure_date", "DATE", "date", "departure date"),
                _col("status", "TEXT", "status", "status"),
            ),
        ),
        foreign_keys=(
            FKSpec("flight", "origin_id", "airport", "airport_id"),
            FKSpec("flight", "destination_id", "airport", "airport_id"),
        ),
    ),
    DomainBlueprint(
        name="retail",
        domain="commerce",
        tables=(
            _entity(
                "customer",
                _col("name", "TEXT", "person_name", "name"),
                _col("city", "TEXT", "city", "city"),
                _col("segment", "TEXT", "category", "segment"),
                _col("signup_date", "DATE", "date", "signup date"),
            ),
            _entity(
                "product",
                _col("title", "TEXT", "title", "name"),
                _col("price", "REAL", "amount", "price"),
                _col("stock", "INTEGER", "count", "stock"),
                _col("brand", "TEXT", "word", "brand"),
            ),
            _entity(
                "purchase",
                _col("customer_id", "INTEGER", "fk:customer"),
                _col("product_id", "INTEGER", "fk:product"),
                _col("quantity", "INTEGER", "small_count", "quantity"),
                _col("purchase_date", "DATE", "date", "purchase date"),
            ),
        ),
        foreign_keys=(
            FKSpec("purchase", "customer_id", "customer", "customer_id"),
            FKSpec("purchase", "product_id", "product", "product_id"),
        ),
    ),
    DomainBlueprint(
        name="hospital",
        domain="health",
        tables=(
            _entity(
                "doctor",
                _col("name", "TEXT", "person_name", "name"),
                _col("specialty", "TEXT", "category", "specialty"),
                _col("salary", "REAL", "amount", "salary"),
                _col("hire_year", "INTEGER", "year", "hire year"),
            ),
            _entity(
                "patient",
                _col("name", "TEXT", "person_name", "name"),
                _col("gender", "TEXT", "gender", "gender", comment="M or F"),
                _col("city", "TEXT", "city", "city"),
                _col("birth_year", "INTEGER", "year", "birth year"),
            ),
            _entity(
                "appointment",
                _col("doctor_id", "INTEGER", "fk:doctor"),
                _col("patient_id", "INTEGER", "fk:patient"),
                _col("visit_date", "DATE", "date", "visit date"),
                _col("fee", "REAL", "amount", "fee"),
            ),
        ),
        foreign_keys=(
            FKSpec("appointment", "doctor_id", "doctor", "doctor_id"),
            FKSpec("appointment", "patient_id", "patient", "patient_id"),
        ),
    ),
    DomainBlueprint(
        name="library",
        domain="culture",
        tables=(
            _entity(
                "author",
                _col("name", "TEXT", "person_name", "name"),
                _col("country", "TEXT", "country", "country"),
                _col("birth_year", "INTEGER", "year", "birth year"),
            ),
            _entity(
                "book",
                _col("author_id", "INTEGER", "fk:author"),
                _col("title", "TEXT", "title", "title"),
                _col("pages", "INTEGER", "count", "number of pages"),
                _col("publish_year", "INTEGER", "year", "publication year"),
                _col("language", "TEXT", "category", "language"),
            ),
            _entity(
                "loan",
                _col("book_id", "INTEGER", "fk:book"),
                _col("borrower", "TEXT", "person_name", "borrower name"),
                _col("loan_date", "DATE", "date", "loan date"),
                _col("returned", "TEXT", "flag", "returned flag", comment="Y or N"),
            ),
        ),
        foreign_keys=(
            FKSpec("book", "author_id", "author", "author_id"),
            FKSpec("loan", "book_id", "book", "book_id"),
        ),
    ),
    DomainBlueprint(
        name="sports_league",
        domain="sports",
        tables=(
            _entity(
                "team",
                _col("name", "TEXT", "title", "name"),
                _col("city", "TEXT", "city", "city"),
                _col("founded_year", "INTEGER", "year", "founding year"),
            ),
            _entity(
                "player",
                _col("team_id", "INTEGER", "fk:team"),
                _col("name", "TEXT", "person_name", "name"),
                _col("position", "TEXT", "category", "position"),
                _col("goals", "INTEGER", "count", "goals scored"),
                _col("salary", "REAL", "amount", "salary"),
            ),
            _entity(
                "match_game",
                _col("home_team_id", "INTEGER", "fk:team"),
                _col("away_team_id", "INTEGER", "fk:team"),
                _col("home_score", "INTEGER", "small_count", "home score"),
                _col("away_score", "INTEGER", "small_count", "away score"),
                _col("match_date", "DATE", "date", "match date"),
            ),
        ),
        foreign_keys=(
            FKSpec("player", "team_id", "team", "team_id"),
            FKSpec("match_game", "home_team_id", "team", "team_id"),
            FKSpec("match_game", "away_team_id", "team", "team_id"),
        ),
    ),
    DomainBlueprint(
        name="company_hr",
        domain="business",
        tables=(
            _entity(
                "department",
                _col("name", "TEXT", "word", "name"),
                _col("budget", "REAL", "amount", "budget"),
                _col("location", "TEXT", "city", "location"),
            ),
            _entity(
                "employee",
                _col("department_id", "INTEGER", "fk:department"),
                _col("name", "TEXT", "person_name", "name"),
                _col("salary", "REAL", "amount", "salary"),
                _col("hire_date", "DATE", "date", "hire date"),
                _col("title", "TEXT", "category", "job title"),
            ),
            _entity(
                "project",
                _col("department_id", "INTEGER", "fk:department"),
                _col("name", "TEXT", "title", "name"),
                _col("cost", "REAL", "amount", "cost"),
                _col("status", "TEXT", "status", "status"),
            ),
        ),
        foreign_keys=(
            FKSpec("employee", "department_id", "department", "department_id"),
            FKSpec("project", "department_id", "department", "department_id"),
        ),
    ),
    DomainBlueprint(
        name="restaurant_guide",
        domain="food",
        tables=(
            _entity(
                "restaurant",
                _col("name", "TEXT", "title", "name"),
                _col("city", "TEXT", "city", "city"),
                _col("cuisine", "TEXT", "category", "cuisine"),
                _col("rating", "REAL", "score", "rating"),
            ),
            _entity(
                "dish",
                _col("restaurant_id", "INTEGER", "fk:restaurant"),
                _col("name", "TEXT", "title", "name"),
                _col("price", "REAL", "amount", "price"),
                _col("calories", "INTEGER", "count", "calories"),
            ),
            _entity(
                "review",
                _col("restaurant_id", "INTEGER", "fk:restaurant"),
                _col("reviewer", "TEXT", "person_name", "reviewer name"),
                _col("stars", "INTEGER", "small_count", "stars"),
                _col("review_date", "DATE", "date", "review date"),
            ),
        ),
        foreign_keys=(
            FKSpec("dish", "restaurant_id", "restaurant", "restaurant_id"),
            FKSpec("review", "restaurant_id", "restaurant", "restaurant_id"),
        ),
    ),
    DomainBlueprint(
        name="cinema_chain",
        domain="entertainment",
        tables=(
            _entity(
                "movie",
                _col("title", "TEXT", "title", "title"),
                _col("director", "TEXT", "person_name", "director name"),
                _col("release_year", "INTEGER", "year", "release year"),
                _col("gross", "REAL", "amount", "gross earnings"),
            ),
            _entity(
                "cinema",
                _col("name", "TEXT", "title", "name"),
                _col("city", "TEXT", "city", "city"),
                _col("capacity", "INTEGER", "count", "seating capacity"),
            ),
            _entity(
                "screening",
                _col("movie_id", "INTEGER", "fk:movie"),
                _col("cinema_id", "INTEGER", "fk:cinema"),
                _col("tickets_sold", "INTEGER", "count", "tickets sold"),
                _col("show_date", "DATE", "date", "show date"),
            ),
        ),
        foreign_keys=(
            FKSpec("screening", "movie_id", "movie", "movie_id"),
            FKSpec("screening", "cinema_id", "cinema", "cinema_id"),
        ),
    ),
    DomainBlueprint(
        name="real_estate",
        domain="property",
        tables=(
            _entity(
                "agent",
                _col("name", "TEXT", "person_name", "name"),
                _col("agency", "TEXT", "word", "agency"),
                _col("commission", "REAL", "score", "commission rate"),
            ),
            _entity(
                "property",
                _col("agent_id", "INTEGER", "fk:agent"),
                _col("address_city", "TEXT", "city", "city"),
                _col("price", "REAL", "amount", "price"),
                _col("bedrooms", "INTEGER", "small_count", "number of bedrooms"),
                _col("listed_date", "DATE", "date", "listing date"),
                _col("status", "TEXT", "status", "status"),
            ),
        ),
        foreign_keys=(FKSpec("property", "agent_id", "agent", "agent_id"),),
    ),
)


def blueprint_by_name(name: str) -> DomainBlueprint:
    for blueprint in BLUEPRINTS:
        if blueprint.name == name:
            return blueprint
    raise KeyError(f"no blueprint named {name!r}")
