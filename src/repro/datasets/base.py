"""Common dataset types."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.database import Database
from repro.errors import DatasetError


@dataclass(frozen=True)
class Text2SQLExample:
    """One (question, SQL) pair over a named database."""

    question: str
    sql: str
    db_id: str
    external_knowledge: str = ""

    def question_with_knowledge(self) -> str:
        """Question enriched with external knowledge, BIRD-style (§9.1.1)."""
        if not self.external_knowledge:
            return self.question
        return f"{self.question} ({self.external_knowledge})"


@dataclass
class Text2SQLDataset:
    """A benchmark: databases plus train/dev example splits.

    ``generated`` optionally keeps the semantic generation artifacts
    (:class:`repro.datasets.generator.GeneratedDatabase`) so variant
    builders can perturb questions knowing which phrases refer to which
    columns.
    """

    name: str
    databases: dict[str, Database]
    train: list[Text2SQLExample] = field(default_factory=list)
    dev: list[Text2SQLExample] = field(default_factory=list)
    generated: dict = field(default_factory=dict, repr=False)

    def database_of(self, example: Text2SQLExample) -> Database:
        try:
            return self.databases[example.db_id]
        except KeyError:
            raise DatasetError(
                f"example references unknown database {example.db_id!r}"
            ) from None

    def validate(self) -> None:
        """Check every gold query actually executes on its database.

        Raises :class:`DatasetError` listing the first broken example.
        """
        for split_name, split in (("train", self.train), ("dev", self.dev)):
            for index, example in enumerate(split):
                database = self.database_of(example)
                if not database.is_executable(example.sql):
                    raise DatasetError(
                        f"{self.name}.{split_name}[{index}] gold SQL does not "
                        f"execute: {example.sql!r}"
                    )

    def lint(self, splits: tuple[str, ...] = ("train", "dev")):
        """Semantic-analysis audit of every gold query.

        Returns a :class:`repro.analysis.report.LintReport`.  Unlike
        :meth:`validate`, which executes each gold query, this is a
        purely static check — it catches queries that *would* execute
        but reference the schema incoherently (the drift mode renames
        and template edits introduce).
        """
        from repro.analysis.report import lint_dataset

        return lint_dataset(self, splits=splits)

    def summary(self) -> str:
        return (
            f"{self.name}: {len(self.databases)} databases, "
            f"{len(self.train)} train / {len(self.dev)} dev examples"
        )
