"""Synthetic text-to-SQL benchmarks mirroring the paper's evaluation suite.

Builders:

- :func:`build_spider` — clean cross-domain benchmark (Spider-like);
- :func:`build_bird` — ambiguous schemas, wide tables, dirty values,
  optional external knowledge (BIRD-like);
- :func:`build_spider_variant` — Spider-Syn / -Realistic / -DK shifts;
- :func:`build_dr_spider` — the 17 Dr.Spider perturbation test sets;
- :func:`build_bank_financials` / :func:`build_aminer_simplified` —
  the two real-world domain datasets of §9.6.
"""

from repro.datasets.base import Text2SQLDataset, Text2SQLExample
from repro.datasets.spider import build_spider
from repro.datasets.bird import build_bird
from repro.datasets.variants import SPIDER_VARIANTS, build_spider_variant
from repro.datasets.drspider import DR_SPIDER_PERTURBATIONS, build_dr_spider
from repro.datasets.domains import build_aminer_simplified, build_bank_financials

__all__ = [
    "DR_SPIDER_PERTURBATIONS",
    "SPIDER_VARIANTS",
    "Text2SQLDataset",
    "Text2SQLExample",
    "build_aminer_simplified",
    "build_bank_financials",
    "build_bird",
    "build_dr_spider",
    "build_spider",
    "build_spider_variant",
]
