"""SQL toolkit: lexer, AST, parser, serializer, skeletons, templates.

Everything the system needs to manipulate SQL as data — tokenizing
queries, parsing them into a typed AST, pretty-printing, normalizing for
comparison, and extracting skeletons/templates for the retrieval-based
parser and the SQL-to-question augmentation pipeline.
"""

from repro.sqlgen.lexer import SQLToken, TokenKind, tokenize_sql
from repro.sqlgen.ast import (
    Aggregation,
    BinaryCondition,
    ColumnRef,
    CompoundCondition,
    InCondition,
    JoinEdge,
    Literal,
    OrderItem,
    Query,
    SelectItem,
)
from repro.sqlgen.parser import parse_sql
from repro.sqlgen.serializer import serialize
from repro.sqlgen.normalizer import normalize_sql
from repro.sqlgen.skeleton import extract_skeleton, skeleton_of_query
from repro.sqlgen.spans import Span, identifier_span

__all__ = [
    "Aggregation",
    "BinaryCondition",
    "ColumnRef",
    "CompoundCondition",
    "InCondition",
    "JoinEdge",
    "Literal",
    "OrderItem",
    "Query",
    "SQLToken",
    "SelectItem",
    "Span",
    "TokenKind",
    "identifier_span",
    "extract_skeleton",
    "normalize_sql",
    "parse_sql",
    "serialize",
    "skeleton_of_query",
    "tokenize_sql",
]
