"""Base dialect emitter: parameterized rendering of the sqlgen AST.

A :class:`DialectEmitter` turns a :class:`~repro.sqlgen.ast.Query` into
SQL text for one concrete dialect.  The base class implements the full
grammar walk once; subclasses (or :meth:`DialectEmitter.from_capabilities`)
only set the knobs that differ between engines:

* ``identifier_quote`` — quote character wrapped around identifiers
  (``""`` emits bare identifiers, the SQLite canonical form).
* ``limit_style`` — how row limits are spelled: ``"limit"`` (``LIMIT n``),
  ``"fetch_first"`` (``FETCH FIRST n ROWS ONLY``) or ``"top"``
  (``SELECT TOP n ...``).
* ``inequality`` — the not-equal operator spelling (``!=`` vs ``<>``).

Each emitter also owns the *inverse* direction: :meth:`normalize_source`
rewrites dialect-specific surface syntax back into the canonical grammar
the sqlgen parser accepts, so ``parse_dialect_sql`` can round-trip text
written in any registered dialect.  Rewrites are token-based (via the
sqlgen lexer) so string literals containing keyword-lookalikes survive.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sqlgen.ast import (
    Aggregation,
    BetweenCondition,
    BinaryCondition,
    ColumnRef,
    CompoundCondition,
    Condition,
    Expression,
    InCondition,
    LikeCondition,
    Literal,
    NullCondition,
    Query,
)
from repro.sqlgen.lexer import SQLToken, TokenKind, tokenize_sql

#: Valid ``limit_style`` spellings, in registry order.
LIMIT_STYLES = ("limit", "fetch_first", "top")


class DialectEmitter:
    """Render the SQL AST to text for one dialect.

    The default knob values reproduce the historical canonical SQLite
    serializer byte-for-byte; see :class:`repro.sqlgen.dialects.sqlite.
    SQLiteEmitter`.
    """

    #: Registry name of the dialect this emitter produces.
    name: str = "sqlite"
    #: Quote character for identifiers ("" = emit bare identifiers).
    identifier_quote: str = ""
    #: One of :data:`LIMIT_STYLES`.
    limit_style: str = "limit"
    #: Spelling of the not-equal comparison operator.
    inequality: str = "!="

    # -- identifier / expression rendering ---------------------------------

    def quote(self, identifier: str) -> str:
        """Quote a single identifier per the dialect's convention."""
        if not self.identifier_quote or identifier == "*":
            return identifier
        quote = self.identifier_quote
        return f"{quote}{identifier}{quote}"

    def render_column(self, ref: ColumnRef) -> str:
        if ref.column == "*":
            return "*" if not ref.table else f"{self.quote(ref.table)}.*"
        if not ref.table:
            return self.quote(ref.column)
        return f"{self.quote(ref.table)}.{self.quote(ref.column)}"

    def render_expression(self, expr: Expression) -> str:
        if isinstance(expr, ColumnRef):
            return self.render_column(expr)
        if isinstance(expr, Aggregation):
            inner = self.render_column(expr.arg)
            if expr.distinct:
                inner = f"DISTINCT {inner}"
            return f"{expr.func.upper()}({inner})"
        if isinstance(expr, Literal):
            return expr.render()
        raise TypeError(f"not an expression node: {expr!r}")

    def render_operator(self, op: str) -> str:
        """Map the AST's canonical comparison spelling to the dialect's."""
        return self.inequality if op == "!=" else op

    # -- query rendering ----------------------------------------------------

    def serialize(self, query: Query) -> str:
        """Serialize ``query`` to a single-line SQL string."""
        parts = [self._serialize_simple(query)]
        current = query
        while current.compound_query is not None:
            parts.append(current.compound_op.upper())
            parts.append(self._serialize_simple(current.compound_query))
            current = current.compound_query
        return " ".join(parts)

    def _serialize_simple(self, query: Query) -> str:
        pieces: list[str] = ["SELECT"]
        if query.distinct:
            pieces.append("DISTINCT")
        if query.limit is not None and self.limit_style == "top":
            pieces.append(f"TOP {query.limit}")
        select_parts = []
        for item in query.select_items:
            text = self.render_expression(item.expr)
            if item.alias:
                text = f"{text} AS {self.quote(item.alias)}"
            select_parts.append(text)
        pieces.append(", ".join(select_parts))
        pieces.append("FROM")
        pieces.append(self.quote(query.from_table))
        for edge in query.joins:
            pieces.append(
                f"JOIN {self.quote(edge.table)} ON "
                f"{self.render_column(edge.left)} = {self.render_column(edge.right)}"
            )
        if query.where is not None:
            pieces.append("WHERE")
            pieces.append(self.serialize_condition(query.where))
        if query.group_by:
            pieces.append("GROUP BY")
            pieces.append(", ".join(self.render_column(col) for col in query.group_by))
        if query.having is not None:
            pieces.append("HAVING")
            pieces.append(self.serialize_condition(query.having))
        if query.order_by:
            pieces.append("ORDER BY")
            order_parts = []
            for item in query.order_by:
                direction = " DESC" if item.descending else " ASC"
                order_parts.append(self.render_expression(item.expr) + direction)
            pieces.append(", ".join(order_parts))
        if query.limit is not None:
            if self.limit_style == "limit":
                pieces.append(f"LIMIT {query.limit}")
            elif self.limit_style == "fetch_first":
                pieces.append(f"FETCH FIRST {query.limit} ROWS ONLY")
            elif self.limit_style != "top":
                raise ValueError(f"unknown limit_style: {self.limit_style!r}")
        return " ".join(pieces)

    def serialize_condition(self, cond: Condition, parenthesize: bool = False) -> str:
        """Serialize a condition tree."""
        if isinstance(cond, BinaryCondition):
            if isinstance(cond.right, Query):
                right = f"( {self.serialize(cond.right)} )"
            else:
                right = self.render_expression(cond.right)
            text = (
                f"{self.render_expression(cond.left)} "
                f"{self.render_operator(cond.op)} {right}"
            )
        elif isinstance(cond, InCondition):
            keyword = "NOT IN" if cond.negated else "IN"
            if cond.subquery is not None:
                inner = self.serialize(cond.subquery)
            else:
                inner = ", ".join(value.render() for value in cond.values)
            text = f"{self.render_expression(cond.expr)} {keyword} ( {inner} )"
        elif isinstance(cond, BetweenCondition):
            text = (
                f"{self.render_expression(cond.expr)} BETWEEN "
                f"{cond.low.render()} AND {cond.high.render()}"
            )
        elif isinstance(cond, LikeCondition):
            keyword = "NOT LIKE" if cond.negated else "LIKE"
            text = f"{self.render_expression(cond.expr)} {keyword} {cond.pattern.render()}"
        elif isinstance(cond, NullCondition):
            keyword = "IS NOT NULL" if cond.negated else "IS NULL"
            text = f"{self.render_expression(cond.expr)} {keyword}"
        elif isinstance(cond, CompoundCondition):
            joiner = f" {cond.op.upper()} "
            text = joiner.join(
                self.serialize_condition(
                    sub, parenthesize=isinstance(sub, CompoundCondition)
                )
                for sub in cond.conditions
            )
            if parenthesize:
                text = f"( {text} )"
            return text
        else:
            raise TypeError(f"not a condition node: {cond!r}")
        return text

    # -- parsing direction --------------------------------------------------

    def normalize_source(self, sql: str) -> str:
        """Rewrite dialect surface syntax into the canonical grammar.

        The base grammar already absorbs most dialect variation at the
        lexer/parser level (quoted identifiers are unwrapped, ``<>`` is
        normalized to ``!=``); only the row-limit clause needs an active
        rewrite here.
        """
        if self.limit_style == "fetch_first":
            return _rewrite_fetch_first(sql)
        if self.limit_style == "top":
            return _rewrite_top(sql)
        return sql

    # -- capability-driven construction -------------------------------------

    @classmethod
    def from_capabilities(cls, capabilities: object) -> "DialectEmitter":
        """Build an emitter from a backend's capability flags.

        ``capabilities`` is duck-typed (any object with ``dialect``,
        ``identifier_quote``, ``limit_style`` and ``inequality``
        attributes) so :mod:`repro.sqlgen` never imports the database
        layer.
        """
        emitter = cls()
        emitter.name = getattr(capabilities, "dialect", cls.name)
        emitter.identifier_quote = getattr(
            capabilities, "identifier_quote", cls.identifier_quote
        )
        emitter.limit_style = getattr(capabilities, "limit_style", cls.limit_style)
        emitter.inequality = getattr(capabilities, "inequality", cls.inequality)
        if emitter.limit_style not in LIMIT_STYLES:
            raise ValueError(f"unknown limit_style: {emitter.limit_style!r}")
        return emitter


# ---------------------------------------------------------------------------
# Token-based source rewrites
# ---------------------------------------------------------------------------

_COMPOUND_OPS = frozenset({"union", "intersect", "except"})


def _tokens_to_text(tokens: Iterable[SQLToken]) -> str:
    """Re-render a token stream as parseable (not pretty) SQL text."""
    return " ".join(tok.value for tok in tokens if tok.kind is not TokenKind.EOF)


def _rewrite_fetch_first(sql: str) -> str:
    """Rewrite ``FETCH FIRST n ROWS ONLY`` clauses to ``LIMIT n``."""
    tokens = tokenize_sql(sql)
    out: list[SQLToken] = []
    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if (
            tok.kind is TokenKind.IDENTIFIER
            and tok.lower() == "fetch"
            and i + 4 < len(tokens)
            and tokens[i + 1].lower() == "first"
            and tokens[i + 2].kind is TokenKind.NUMBER
            and tokens[i + 3].lower() in ("row", "rows")
            and tokens[i + 4].lower() == "only"
        ):
            out.append(SQLToken(TokenKind.KEYWORD, "LIMIT", tok.position))
            out.append(tokens[i + 2])
            i += 5
            continue
        out.append(tok)
        i += 1
    return _tokens_to_text(out)


def _rewrite_top(sql: str) -> str:
    """Rewrite ``SELECT TOP n ...`` heads to trailing ``LIMIT n`` clauses.

    The limit floats to the end of the enclosing simple-query segment
    (before the next compound operator at the same nesting depth, or a
    closing paren / end of input for subqueries).
    """
    tokens = tokenize_sql(sql)
    out: list[SQLToken] = []
    # Stack of pending limits, one slot per open paren depth.
    pending: list[Optional[SQLToken]] = [None]

    def flush(position: int) -> None:
        limit = pending[-1]
        if limit is not None:
            out.append(SQLToken(TokenKind.KEYWORD, "LIMIT", position))
            out.append(limit)
            pending[-1] = None

    i = 0
    while i < len(tokens):
        tok = tokens[i]
        if tok.kind is TokenKind.EOF:
            flush(tok.position)
            i += 1
            continue
        if tok.kind is TokenKind.PUNCT and tok.value == "(":
            pending.append(None)
            out.append(tok)
            i += 1
            continue
        if tok.kind is TokenKind.PUNCT and tok.value == ")":
            flush(tok.position)
            if len(pending) > 1:
                pending.pop()
            out.append(tok)
            i += 1
            continue
        if tok.kind is TokenKind.KEYWORD and tok.lower() in _COMPOUND_OPS:
            flush(tok.position)
            out.append(tok)
            i += 1
            continue
        if (
            tok.kind is TokenKind.IDENTIFIER
            and tok.lower() == "top"
            and out
            and out[-1].kind is TokenKind.KEYWORD
            and out[-1].lower() in ("select", "distinct")
            and i + 1 < len(tokens)
            and tokens[i + 1].kind is TokenKind.NUMBER
        ):
            pending[-1] = tokens[i + 1]
            i += 2
            continue
        out.append(tok)
        i += 1
    return _tokens_to_text(out)
