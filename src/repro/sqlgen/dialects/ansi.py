"""ANSI-flavoured dialect emitter.

The dialect spoken by the in-memory columnar backend
(:class:`repro.db.backends.columnar.ColumnarBackend`): double-quoted
identifiers, ``FETCH FIRST n ROWS ONLY`` row limits and ``<>``
inequality.  ``normalize_source`` (inherited, driven by
``limit_style="fetch_first"``) folds the fetch clause back to ``LIMIT``
so ANSI text round-trips through the sqlgen parser.
"""

from __future__ import annotations

from repro.sqlgen.dialects.base import DialectEmitter


class ANSIEmitter(DialectEmitter):
    """Emit ANSI-style text: quoted identifiers, FETCH FIRST, ``<>``."""

    name = "ansi"
    identifier_quote = '"'
    limit_style = "fetch_first"
    inequality = "<>"


#: Shared stateless instance.
ANSI_EMITTER = ANSIEmitter()
