"""T-SQL-flavoured dialect emitter.

Exercises the third row-limit spelling (``SELECT TOP n ...``) so the
dialect layer is demonstrably capability-driven rather than a
two-branch special case.  No execution backend speaks this dialect yet;
it exists for emission/transpile coverage and as the template for a
future SQL Server-class backend.
"""

from __future__ import annotations

from repro.sqlgen.dialects.base import DialectEmitter


class TSQLEmitter(DialectEmitter):
    """Emit T-SQL-style text: ``TOP n`` limits, ``<>`` inequality."""

    name = "tsql"
    identifier_quote = ""
    limit_style = "top"
    inequality = "<>"


#: Shared stateless instance.
TSQL_EMITTER = TSQLEmitter()
