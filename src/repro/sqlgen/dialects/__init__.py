"""Dialect dispatch for SQL emission and parsing.

The sqlgen AST is dialect-neutral; this package maps it to and from the
concrete SQL text each execution backend understands.  ``"sqlite"`` is
the reference dialect — its emission is byte-identical to the historical
serializer and remains the canonical form used for golden files, lint
spans and equivalence keys.

Public surface:

* :func:`emitter_for` — registry lookup by dialect name.
* :func:`serialize_dialect` — render a Query in a named dialect.
* :func:`parse_dialect_sql` — parse dialect text (normalizing surface
  syntax such as ``FETCH FIRST``/``TOP`` back to the core grammar).
* :func:`transpile` — re-emit SQL text from one dialect in another.
* :func:`register_dialect` — extension point for new emitters.
"""

from __future__ import annotations

from repro.sqlgen.ast import Query
from repro.sqlgen.dialects.ansi import ANSI_EMITTER, ANSIEmitter
from repro.sqlgen.dialects.base import LIMIT_STYLES, DialectEmitter
from repro.sqlgen.dialects.sqlite import SQLITE_EMITTER, SQLiteEmitter
from repro.sqlgen.dialects.tsql import TSQL_EMITTER, TSQLEmitter
from repro.sqlgen.parser import parse_sql

#: Registered dialect emitters, keyed by dialect name (insertion order
#: is the presentation order used by reports and CLI listings).
DIALECTS: dict[str, DialectEmitter] = {
    SQLITE_EMITTER.name: SQLITE_EMITTER,
    ANSI_EMITTER.name: ANSI_EMITTER,
    TSQL_EMITTER.name: TSQL_EMITTER,
}


def register_dialect(emitter: DialectEmitter) -> DialectEmitter:
    """Register ``emitter`` under its ``name``; returns it for chaining."""
    DIALECTS[emitter.name] = emitter
    return emitter


def available_dialects() -> tuple[str, ...]:
    """Registered dialect names in presentation order."""
    return tuple(DIALECTS)


def emitter_for(dialect: str) -> DialectEmitter:
    """Look up the emitter for ``dialect`` (raises KeyError if unknown)."""
    try:
        return DIALECTS[dialect]
    except KeyError:
        known = ", ".join(sorted(DIALECTS))
        raise KeyError(f"unknown dialect {dialect!r} (known: {known})") from None


def serialize_dialect(query: Query, dialect: str = "sqlite") -> str:
    """Serialize ``query`` in the named dialect."""
    return emitter_for(dialect).serialize(query)


def parse_dialect_sql(sql: str, dialect: str = "sqlite") -> Query:
    """Parse SQL text written in the named dialect into the neutral AST."""
    emitter = emitter_for(dialect)
    return parse_sql(emitter.normalize_source(sql))


def transpile(sql: str, to_dialect: str, from_dialect: str = "sqlite") -> str:
    """Re-emit ``sql`` (written in ``from_dialect``) as ``to_dialect`` text."""
    return serialize_dialect(parse_dialect_sql(sql, from_dialect), to_dialect)


__all__ = [
    "DIALECTS",
    "LIMIT_STYLES",
    "ANSIEmitter",
    "DialectEmitter",
    "SQLiteEmitter",
    "TSQLEmitter",
    "available_dialects",
    "emitter_for",
    "parse_dialect_sql",
    "register_dialect",
    "serialize_dialect",
    "transpile",
]
