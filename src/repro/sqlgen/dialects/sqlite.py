"""Canonical SQLite dialect emitter.

This is the reference dialect: bare identifiers, ``LIMIT n`` row limits
and ``!=`` inequality — byte-identical to the historical
``repro.sqlgen.serializer`` output, which every golden file, lint span
and equivalence canonical key in the repository is pinned against.
"""

from __future__ import annotations

from repro.sqlgen.dialects.base import DialectEmitter


class SQLiteEmitter(DialectEmitter):
    """Emit canonical SQLite text (the repository's reference dialect)."""

    name = "sqlite"
    identifier_quote = ""
    limit_style = "limit"
    inequality = "!="


#: Shared stateless instance used by the serializer facade.
SQLITE_EMITTER = SQLiteEmitter()
