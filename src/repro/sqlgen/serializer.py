"""Render the SQL AST back to canonical SQLite text."""

from __future__ import annotations

from repro.sqlgen.ast import (
    BetweenCondition,
    BinaryCondition,
    CompoundCondition,
    Condition,
    InCondition,
    LikeCondition,
    NullCondition,
    Query,
    render_expression,
)


def serialize(query: Query) -> str:
    """Serialize ``query`` to a single-line canonical SQL string."""
    parts = [_serialize_simple(query)]
    current = query
    while current.compound_query is not None:
        parts.append(current.compound_op.upper())
        parts.append(_serialize_simple(current.compound_query))
        current = current.compound_query
    return " ".join(parts)


def _serialize_simple(query: Query) -> str:
    pieces: list[str] = ["SELECT"]
    if query.distinct:
        pieces.append("DISTINCT")
    select_parts = []
    for item in query.select_items:
        text = render_expression(item.expr)
        if item.alias:
            text = f"{text} AS {item.alias}"
        select_parts.append(text)
    pieces.append(", ".join(select_parts))
    pieces.append("FROM")
    pieces.append(query.from_table)
    for edge in query.joins:
        pieces.append(
            f"JOIN {edge.table} ON {edge.left} = {edge.right}"
        )
    if query.where is not None:
        pieces.append("WHERE")
        pieces.append(serialize_condition(query.where))
    if query.group_by:
        pieces.append("GROUP BY")
        pieces.append(", ".join(str(col) for col in query.group_by))
    if query.having is not None:
        pieces.append("HAVING")
        pieces.append(serialize_condition(query.having))
    if query.order_by:
        pieces.append("ORDER BY")
        order_parts = []
        for item in query.order_by:
            direction = " DESC" if item.descending else " ASC"
            order_parts.append(render_expression(item.expr) + direction)
        pieces.append(", ".join(order_parts))
    if query.limit is not None:
        pieces.append(f"LIMIT {query.limit}")
    return " ".join(pieces)


def serialize_condition(cond: Condition, parenthesize: bool = False) -> str:
    """Serialize a condition tree."""
    if isinstance(cond, BinaryCondition):
        if isinstance(cond.right, Query):
            right = f"( {serialize(cond.right)} )"
        else:
            right = render_expression(cond.right)
        text = f"{render_expression(cond.left)} {cond.op} {right}"
    elif isinstance(cond, InCondition):
        keyword = "NOT IN" if cond.negated else "IN"
        if cond.subquery is not None:
            inner = serialize(cond.subquery)
        else:
            inner = ", ".join(value.render() for value in cond.values)
        text = f"{render_expression(cond.expr)} {keyword} ( {inner} )"
    elif isinstance(cond, BetweenCondition):
        text = (
            f"{render_expression(cond.expr)} BETWEEN "
            f"{cond.low.render()} AND {cond.high.render()}"
        )
    elif isinstance(cond, LikeCondition):
        keyword = "NOT LIKE" if cond.negated else "LIKE"
        text = f"{render_expression(cond.expr)} {keyword} {cond.pattern.render()}"
    elif isinstance(cond, NullCondition):
        keyword = "IS NOT NULL" if cond.negated else "IS NULL"
        text = f"{render_expression(cond.expr)} {keyword}"
    elif isinstance(cond, CompoundCondition):
        joiner = f" {cond.op.upper()} "
        text = joiner.join(
            serialize_condition(sub, parenthesize=isinstance(sub, CompoundCondition))
            for sub in cond.conditions
        )
        if parenthesize:
            text = f"( {text} )"
        return text
    else:
        raise TypeError(f"not a condition node: {cond!r}")
    return text
