"""Serializer facade: canonical text is the SQLite dialect's emission.

Historically this module *was* the SQLite serializer.  Rendering now
lives in :mod:`repro.sqlgen.dialects`, which dispatches over per-dialect
emitters; ``serialize``/``serialize_condition`` stay as thin aliases for
the SQLite emitter so every existing call site — golden files, lint
spans, equivalence canonical keys — remains byte-identical.  Code that
targets a specific execution backend should use
:func:`repro.sqlgen.dialects.serialize_dialect` instead.
"""

from __future__ import annotations

from repro.sqlgen.ast import Condition, Query
from repro.sqlgen.dialects.sqlite import SQLITE_EMITTER


def serialize(query: Query) -> str:
    """Serialize ``query`` to a single-line canonical (SQLite) SQL string."""
    return SQLITE_EMITTER.serialize(query)


def serialize_condition(cond: Condition, parenthesize: bool = False) -> str:
    """Serialize a condition tree in the canonical (SQLite) dialect."""
    return SQLITE_EMITTER.serialize_condition(cond, parenthesize=parenthesize)
