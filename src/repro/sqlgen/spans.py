"""Source spans for SQL identifiers.

The AST (:mod:`repro.sqlgen.ast`) is position-free — nodes are frozen
value objects shared by the generator, the serializer and the skeleton
miner, so threading offsets through them would tax every producer.
Instead, diagnostics that want to point at source text re-lex the
original SQL (lexing is linear and the strings are short) and locate
the n-th occurrence of the offending identifier here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLSyntaxError
from repro.sqlgen.lexer import SQLToken, TokenKind, tokenize_sql


@dataclass(frozen=True)
class Span:
    """Half-open ``[start, end)`` character range in the source SQL."""

    start: int
    end: int

    def slice(self, sql: str) -> str:
        return sql[self.start:self.end]


def identifier_span(sql: str, identifier: str, occurrence: int = 0) -> Span | None:
    """Span of the n-th occurrence of ``identifier`` in ``sql``.

    ``identifier`` may be a bare name (``balance``), a dotted reference
    (``account.balance``), or a function name; matching is
    case-insensitive on the token stream, so string literals that happen
    to contain the name never match.  Returns ``None`` when the SQL does
    not lex or the identifier is absent (e.g. it came from a
    hand-constructed AST rather than this SQL text).
    """
    try:
        tokens = tokenize_sql(sql)
    except SQLSyntaxError:
        return None
    wanted = identifier.lower()
    seen = 0
    parts = wanted.split(".")
    for index, token in enumerate(tokens):
        if token.kind not in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
            continue
        if len(parts) == 2:
            matched = _dotted_match(tokens, index, parts)
            if matched is None:
                continue
            if seen == occurrence:
                return Span(token.position, matched)
            seen += 1
        elif token.lower() == wanted:
            if seen == occurrence:
                return Span(token.position, token.position + len(token.value))
            seen += 1
    return None


def _dotted_match(tokens: list[SQLToken], index: int, parts: list[str]) -> int | None:
    """End offset when ``tokens[index:index+3]`` spell ``table.column``."""
    if index + 2 >= len(tokens):
        return None
    table, dot, column = tokens[index], tokens[index + 1], tokens[index + 2]
    if table.lower() != parts[0]:
        return None
    if dot.kind is not TokenKind.PUNCT or dot.value != ".":
        return None
    if column.kind is TokenKind.STAR and parts[1] == "*":
        return column.position + 1
    if column.kind is TokenKind.IDENTIFIER and column.lower() == parts[1]:
        return column.position + len(column.value)
    return None
