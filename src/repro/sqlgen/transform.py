"""Structural SQL transforms: renaming schema references, mapping literals.

Used by the robustness benchmarks (Dr.Spider's database-side
perturbations rename schema elements or change stored value surface
forms, which requires rewriting the gold SQL consistently).
"""

from __future__ import annotations

from typing import Callable

from repro.sqlgen.ast import (
    Aggregation,
    BetweenCondition,
    BinaryCondition,
    ColumnRef,
    CompoundCondition,
    Condition,
    Expression,
    InCondition,
    JoinEdge,
    LikeCondition,
    Literal,
    NullCondition,
    OrderItem,
    Query,
    SelectItem,
)

ColumnFn = Callable[[ColumnRef], ColumnRef]
LiteralFn = Callable[[Literal], Literal]
TableFn = Callable[[str], str]


def transform_query(
    query: Query,
    fix_table: TableFn = lambda name: name,
    fix_column: ColumnFn = lambda col: col,
    fix_literal: LiteralFn = lambda lit: lit,
) -> Query:
    """Structure-preserving rewrite of every table/column/literal node."""

    def fix_expr(expr: Expression) -> Expression:
        if isinstance(expr, ColumnRef):
            return fix_column(expr)
        if isinstance(expr, Aggregation):
            return Aggregation(
                func=expr.func, arg=fix_column(expr.arg), distinct=expr.distinct
            )
        if isinstance(expr, Literal):
            return fix_literal(expr)
        raise TypeError(f"not an expression node: {expr!r}")

    def fix_cond(cond: Condition) -> Condition:
        if isinstance(cond, BinaryCondition):
            if isinstance(cond.right, Query):
                right: object = transform_query(
                    cond.right, fix_table, fix_column, fix_literal
                )
            else:
                right = fix_expr(cond.right)
            return BinaryCondition(left=fix_expr(cond.left), op=cond.op, right=right)
        if isinstance(cond, InCondition):
            return InCondition(
                expr=fix_expr(cond.expr),
                values=tuple(fix_literal(v) for v in cond.values),
                subquery=(
                    transform_query(cond.subquery, fix_table, fix_column, fix_literal)
                    if cond.subquery is not None
                    else None
                ),
                negated=cond.negated,
            )
        if isinstance(cond, BetweenCondition):
            return BetweenCondition(
                expr=fix_expr(cond.expr),
                low=fix_literal(cond.low),
                high=fix_literal(cond.high),
            )
        if isinstance(cond, LikeCondition):
            return LikeCondition(
                expr=fix_expr(cond.expr),
                pattern=fix_literal(cond.pattern),
                negated=cond.negated,
            )
        if isinstance(cond, NullCondition):
            return NullCondition(expr=fix_expr(cond.expr), negated=cond.negated)
        if isinstance(cond, CompoundCondition):
            return CompoundCondition(
                op=cond.op, conditions=tuple(fix_cond(sub) for sub in cond.conditions)
            )
        raise TypeError(f"not a condition node: {cond!r}")

    return Query(
        select_items=tuple(
            SelectItem(expr=fix_expr(item.expr), alias=item.alias)
            for item in query.select_items
        ),
        from_table=fix_table(query.from_table),
        joins=tuple(
            JoinEdge(
                table=fix_table(edge.table),
                left=fix_column(edge.left),
                right=fix_column(edge.right),
            )
            for edge in query.joins
        ),
        where=fix_cond(query.where) if query.where is not None else None,
        group_by=tuple(fix_column(col) for col in query.group_by),
        having=fix_cond(query.having) if query.having is not None else None,
        order_by=tuple(
            OrderItem(expr=fix_expr(item.expr), descending=item.descending)
            for item in query.order_by
        ),
        limit=query.limit,
        distinct=query.distinct,
        compound_op=query.compound_op,
        compound_query=(
            transform_query(query.compound_query, fix_table, fix_column, fix_literal)
            if query.compound_query is not None
            else None
        ),
    )


def rename_query(
    query: Query,
    table_map: dict[str, str],
    column_map: dict[tuple[str, str], str],
) -> Query:
    """Rename table and column references per the given maps.

    ``table_map`` maps lower-cased old table names to new names;
    ``column_map`` maps lower-cased (table, column) to new column names.
    """

    def fix_table(name: str) -> str:
        return table_map.get(name.lower(), name)

    def fix_column(col: ColumnRef) -> ColumnRef:
        new_column = column_map.get((col.table.lower(), col.column.lower()), col.column)
        return ColumnRef(table=fix_table(col.table), column=new_column)

    return transform_query(query, fix_table=fix_table, fix_column=fix_column)


def qualify_columns(query: Query) -> Query:
    """Qualify bare column references with the query's FROM table.

    Only single-table queries (no joins) can be qualified safely;
    multi-table queries are returned unchanged except for their
    already-qualified references.
    """
    if query.joins:
        return query
    table = query.from_table

    def fix_column(col: ColumnRef) -> ColumnRef:
        if not col.table and col.column != "*":
            return ColumnRef(table=table, column=col.column)
        return col

    return transform_query(query, fix_column=fix_column)


def map_literals(query: Query, value_map: dict[str, str]) -> Query:
    """Replace string literal values per ``value_map`` (exact match)."""

    def fix_literal(lit: Literal) -> Literal:
        if isinstance(lit.value, str) and lit.value in value_map:
            return Literal(value_map[lit.value])
        return lit

    return transform_query(query, fix_literal=fix_literal)
