"""Recursive-descent parser from SQL text to :mod:`repro.sqlgen.ast`."""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sqlgen.ast import (
    Aggregation,
    BetweenCondition,
    BinaryCondition,
    ColumnRef,
    CompoundCondition,
    Condition,
    Expression,
    InCondition,
    JoinEdge,
    LikeCondition,
    Literal,
    NullCondition,
    OrderItem,
    Query,
    SelectItem,
)
from repro.sqlgen.lexer import FUNCTIONS, SQLToken, TokenKind, tokenize_sql

_COMPARISONS = frozenset({"=", "<", ">", "<=", ">=", "!=", "<>"})


def parse_sql(sql: str) -> Query:
    """Parse ``sql`` into a :class:`Query`.

    Raises :class:`SQLSyntaxError` for SQL outside the supported subset.
    """
    parser = _Parser(tokenize_sql(sql), sql)
    query = parser.parse_query()
    parser.expect_end()
    return query


class _Parser:
    def __init__(self, tokens: list[SQLToken], sql: str):
        self._tokens = tokens
        self._sql = sql
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, ahead: int = 0) -> SQLToken:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> SQLToken:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> SQLSyntaxError:
        token = self._peek()
        return SQLSyntaxError(
            f"{message} (found {token.value!r} at {token.position})",
            sql=self._sql,
            position=token.position,
        )

    def _match_keyword(self, *words: str) -> bool:
        token = self._peek()
        if token.kind is TokenKind.KEYWORD and token.lower() in words:
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._match_keyword(word):
            raise self._error(f"expected keyword {word.upper()}")

    def _match_punct(self, value: str) -> bool:
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> None:
        if not self._match_punct(value):
            raise self._error(f"expected {value!r}")

    def expect_end(self) -> None:
        self._match_punct(";")
        if self._peek().kind is not TokenKind.EOF:
            raise self._error("unexpected trailing tokens")

    # -- grammar ------------------------------------------------------------

    def parse_query(self) -> Query:
        query = self._parse_simple_query()
        token = self._peek()
        if token.kind is TokenKind.KEYWORD and token.lower() in (
            "union", "intersect", "except",
        ):
            op = self._advance().upper()
            self._match_keyword("all")
            rest = self.parse_query()
            return _with_compound(query, op, rest)
        return query

    def _parse_simple_query(self) -> Query:
        self._expect_keyword("select")
        distinct = self._match_keyword("distinct")
        select_items = self._parse_select_items()
        self._expect_keyword("from")
        from_table, aliases = self._parse_table_ref({})
        joins: list[JoinEdge] = []
        while True:
            if self._match_keyword("join"):
                pass
            elif self._match_keyword("inner"):
                self._expect_keyword("join")
            elif self._match_keyword("left"):
                self._match_keyword("outer")
                self._expect_keyword("join")
            else:
                break
            table, aliases = self._parse_table_ref(aliases)
            self._expect_keyword("on")
            left = self._parse_column_ref()
            token = self._peek()
            if token.kind is not TokenKind.OPERATOR or token.value != "=":
                raise self._error("expected = in JOIN ON condition")
            self._advance()
            right = self._parse_column_ref()
            joins.append(JoinEdge(table=table, left=left, right=right))

        where = self._parse_condition() if self._match_keyword("where") else None
        group_by: tuple[ColumnRef, ...] = ()
        having: Condition | None = None
        if self._match_keyword("group"):
            self._expect_keyword("by")
            cols = [self._parse_column_ref()]
            while self._match_punct(","):
                cols.append(self._parse_column_ref())
            group_by = tuple(cols)
            if self._match_keyword("having"):
                having = self._parse_condition()
        order_by: tuple[OrderItem, ...] = ()
        if self._match_keyword("order"):
            self._expect_keyword("by")
            items = [self._parse_order_item()]
            while self._match_punct(","):
                items.append(self._parse_order_item())
            order_by = tuple(items)
        limit: int | None = None
        if self._match_keyword("limit"):
            token = self._advance()
            if token.kind is not TokenKind.NUMBER:
                raise self._error("expected number after LIMIT")
            limit = int(float(token.value))

        query = Query(
            select_items=tuple(select_items),
            from_table=from_table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )
        if aliases:
            query = _resolve_aliases(query, aliases)
        return query

    def _parse_table_ref(self, aliases: dict[str, str]) -> tuple[str, dict[str, str]]:
        token = self._advance()
        if token.kind is not TokenKind.IDENTIFIER:
            raise self._error("expected table name")
        table = token.value
        new_aliases = dict(aliases)
        if self._match_keyword("as"):
            alias_token = self._advance()
            if alias_token.kind is not TokenKind.IDENTIFIER:
                raise self._error("expected alias after AS")
            new_aliases[alias_token.lower()] = table
        else:
            nxt = self._peek()
            is_bare_alias = (
                nxt.kind is TokenKind.IDENTIFIER
                and nxt.lower() not in FUNCTIONS
            )
            if is_bare_alias:
                self._advance()
                new_aliases[nxt.lower()] = table
        return table, new_aliases

    def _parse_select_items(self) -> list[SelectItem]:
        items = [self._parse_select_item()]
        while self._match_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        expr = self._parse_expression()
        alias = ""
        if self._match_keyword("as"):
            token = self._advance()
            if token.kind is not TokenKind.IDENTIFIER:
                raise self._error("expected alias after AS")
            alias = token.value
        return SelectItem(expr=expr, alias=alias)

    def _parse_expression(self) -> Expression:
        token = self._peek()
        if token.kind is TokenKind.STAR:
            self._advance()
            return ColumnRef(table="", column="*")
        if token.kind is TokenKind.IDENTIFIER and token.lower() in FUNCTIONS:
            nxt = self._peek(1)
            if nxt.kind is TokenKind.PUNCT and nxt.value == "(":
                return self._parse_aggregation()
        if token.kind is TokenKind.IDENTIFIER:
            return self._parse_column_ref()
        return self._parse_literal()

    def _parse_aggregation(self) -> Aggregation:
        func = self._advance().lower()
        self._expect_punct("(")
        distinct = self._match_keyword("distinct")
        token = self._peek()
        if token.kind is TokenKind.STAR:
            self._advance()
            arg = ColumnRef(table="", column="*")
        else:
            arg = self._parse_column_ref()
        self._expect_punct(")")
        return Aggregation(func=func, arg=arg, distinct=distinct)

    def _parse_column_ref(self) -> ColumnRef:
        token = self._advance()
        if token.kind is not TokenKind.IDENTIFIER:
            raise self._error("expected column reference")
        first = token.value
        if self._match_punct("."):
            nxt = self._advance()
            if nxt.kind is TokenKind.STAR:
                return ColumnRef(table=first, column="*")
            if nxt.kind is not TokenKind.IDENTIFIER:
                raise self._error("expected column name after '.'")
            return ColumnRef(table=first, column=nxt.value)
        return ColumnRef(table="", column=first)

    def _parse_literal(self) -> Literal:
        token = self._advance()
        if token.kind is TokenKind.STRING:
            return Literal(token.value[1:-1].replace("''", "'"))
        if token.kind is TokenKind.NUMBER:
            return _number_literal(token.value)
        if token.kind is TokenKind.OPERATOR and token.value == "-":
            number = self._advance()
            if number.kind is not TokenKind.NUMBER:
                raise self._error("expected number after unary minus")
            literal = _number_literal(number.value)
            return Literal(-literal.value)  # type: ignore[operator]
        if token.kind is TokenKind.KEYWORD and token.lower() == "null":
            return Literal(None)
        raise SQLSyntaxError(
            f"expected literal (found {token.value!r} at {token.position})",
            sql=self._sql,
            position=token.position,
        )

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expression()
        descending = False
        if self._match_keyword("desc"):
            descending = True
        else:
            self._match_keyword("asc")
        return OrderItem(expr=expr, descending=descending)

    # -- conditions ---------------------------------------------------------

    def _parse_condition(self) -> Condition:
        return self._parse_or()

    def _parse_or(self) -> Condition:
        parts = [self._parse_and()]
        while self._match_keyword("or"):
            parts.append(self._parse_and())
        if len(parts) == 1:
            return parts[0]
        return CompoundCondition(op="OR", conditions=tuple(parts))

    def _parse_and(self) -> Condition:
        parts = [self._parse_predicate()]
        while self._match_keyword("and"):
            parts.append(self._parse_predicate())
        if len(parts) == 1:
            return parts[0]
        return CompoundCondition(op="AND", conditions=tuple(parts))

    def _parse_predicate(self) -> Condition:
        if self._match_punct("("):
            inner = self._parse_condition()
            self._expect_punct(")")
            return inner
        expr = self._parse_expression()
        negated = self._match_keyword("not")
        token = self._peek()
        if token.kind is TokenKind.OPERATOR and token.value in _COMPARISONS:
            op = self._advance().value
            if op == "<>":
                op = "!="
            right = self._parse_comparison_rhs()
            return BinaryCondition(left=expr, op=op, right=right)
        if self._match_keyword("in"):
            self._expect_punct("(")
            if self._peek().kind is TokenKind.KEYWORD and self._peek().lower() == "select":
                subquery = self.parse_query()
                self._expect_punct(")")
                return InCondition(expr=expr, subquery=subquery, negated=negated)
            values = [self._parse_literal()]
            while self._match_punct(","):
                values.append(self._parse_literal())
            self._expect_punct(")")
            return InCondition(expr=expr, values=tuple(values), negated=negated)
        if self._match_keyword("between"):
            low = self._parse_literal()
            self._expect_keyword("and")
            high = self._parse_literal()
            return BetweenCondition(expr=expr, low=low, high=high)
        if self._match_keyword("like"):
            pattern = self._parse_literal()
            return LikeCondition(expr=expr, pattern=pattern, negated=negated)
        if self._match_keyword("is"):
            is_not = self._match_keyword("not")
            self._expect_keyword("null")
            return NullCondition(expr=expr, negated=is_not)
        raise self._error("expected a predicate operator")

    def _parse_comparison_rhs(self) -> Expression | Query:
        if self._match_punct("("):
            if self._peek().kind is TokenKind.KEYWORD and self._peek().lower() == "select":
                subquery = self.parse_query()
                self._expect_punct(")")
                return subquery
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        return self._parse_expression()


def _number_literal(text: str) -> Literal:
    if "." in text:
        return Literal(float(text))
    return Literal(int(text))


def _with_compound(query: Query, op: str, rest: Query) -> Query:
    return Query(
        select_items=query.select_items,
        from_table=query.from_table,
        joins=query.joins,
        where=query.where,
        group_by=query.group_by,
        having=query.having,
        order_by=query.order_by,
        limit=query.limit,
        distinct=query.distinct,
        compound_op=op,
        compound_query=rest,
    )


def _resolve_aliases(query: Query, aliases: dict[str, str]) -> Query:
    """Rewrite alias-qualified column refs to real table names."""

    def fix_col(col: ColumnRef) -> ColumnRef:
        resolved = aliases.get(col.table.lower())
        if resolved is not None:
            return ColumnRef(table=resolved, column=col.column)
        return col

    def fix_expr(expr: Expression) -> Expression:
        if isinstance(expr, ColumnRef):
            return fix_col(expr)
        if isinstance(expr, Aggregation):
            return Aggregation(func=expr.func, arg=fix_col(expr.arg), distinct=expr.distinct)
        return expr

    def fix_cond(cond: Condition) -> Condition:
        if isinstance(cond, BinaryCondition):
            right = cond.right
            if isinstance(right, (ColumnRef, Literal, Aggregation)):
                right = fix_expr(right)
            return BinaryCondition(left=fix_expr(cond.left), op=cond.op, right=right)
        if isinstance(cond, InCondition):
            return InCondition(
                expr=fix_expr(cond.expr),
                values=cond.values,
                subquery=cond.subquery,
                negated=cond.negated,
            )
        if isinstance(cond, BetweenCondition):
            return BetweenCondition(expr=fix_expr(cond.expr), low=cond.low, high=cond.high)
        if isinstance(cond, LikeCondition):
            return LikeCondition(
                expr=fix_expr(cond.expr), pattern=cond.pattern, negated=cond.negated
            )
        if isinstance(cond, NullCondition):
            return NullCondition(expr=fix_expr(cond.expr), negated=cond.negated)
        if isinstance(cond, CompoundCondition):
            return CompoundCondition(
                op=cond.op, conditions=tuple(fix_cond(sub) for sub in cond.conditions)
            )
        raise TypeError(f"not a condition node: {cond!r}")

    return Query(
        select_items=tuple(
            SelectItem(expr=fix_expr(item.expr), alias=item.alias)
            for item in query.select_items
        ),
        from_table=query.from_table,
        joins=tuple(
            JoinEdge(table=edge.table, left=fix_col(edge.left), right=fix_col(edge.right))
            for edge in query.joins
        ),
        where=fix_cond(query.where) if query.where is not None else None,
        group_by=tuple(fix_col(col) for col in query.group_by),
        having=fix_cond(query.having) if query.having is not None else None,
        order_by=tuple(
            OrderItem(expr=fix_expr(item.expr), descending=item.descending)
            for item in query.order_by
        ),
        limit=query.limit,
        distinct=query.distinct,
        compound_op=query.compound_op,
        compound_query=query.compound_query,
    )
