"""SQL normalization for structural comparison.

Two queries that differ only in whitespace, keyword casing, quoting
style, or alias naming normalize to the same string, which makes exact
string comparison meaningful in tests and in the parser's candidate
deduplication.
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sqlgen.parser import parse_sql
from repro.sqlgen.serializer import serialize


def normalize_sql(sql: str) -> str:
    """Return the canonical serialization of ``sql``.

    Falls back to whitespace/case normalization when the query lies
    outside the parser's supported subset, so the function is total.
    """
    try:
        return serialize(parse_sql(sql)).lower()
    except SQLSyntaxError:
        return " ".join(sql.split()).rstrip(";").lower()


def same_structure(left: str, right: str) -> bool:
    """True when the two SQL strings normalize identically."""
    return normalize_sql(left) == normalize_sql(right)
