"""Typed AST for the SQL subset used throughout the project.

The subset mirrors what Spider/BIRD-style benchmarks exercise:
single-table and multi-join SELECT queries with aggregation, filtering,
grouping, ordering, limits, IN/NOT IN (lists and subqueries), BETWEEN,
LIKE, NULL tests and UNION/INTERSECT/EXCEPT compounds.
"""

from __future__ import annotations

from decimal import Decimal
from dataclasses import dataclass
from typing import Iterator, Optional, Union


def identifier_key(name: str) -> str:
    """Case-insensitive identity of a single SQL identifier.

    The one sanctioned spelling of identifier comparison: everything
    outside :mod:`repro.sqlgen` / :mod:`repro.analysis` must route
    identifier equality through this helper or :meth:`ColumnRef.key`
    (enforced by ARCH003 in ``scripts/arch_lint.py``).
    """
    return name.lower()


def normalize_number(value: Union[int, float]) -> str:
    """Render a number the way SQLite's text affinity would.

    Integral floats collapse to their integer spelling (``3.0`` → ``3``,
    ``-0.0`` → ``0``) and non-integral floats expand to plain decimal
    notation (``1e-05`` → ``0.00001``) because the sqlgen lexer — like
    the literal grammar this project emits — has no exponent form.
    """
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return str(int(value))
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"non-finite literal cannot be rendered: {value!r}")
        if value.is_integer():
            return str(int(value))
        return format(Decimal(repr(value)), "f")
    return str(value)


@dataclass(frozen=True)
class ColumnRef:
    """A reference to ``table.column``; ``table`` may be empty."""

    table: str
    column: str

    def key(self) -> str:
        """Lower-cased ``table.column`` identity."""
        return f"{identifier_key(self.table)}.{identifier_key(self.column)}"

    def __str__(self) -> str:
        if self.column == "*":
            return "*" if not self.table else f"{self.table}.*"
        if not self.table:
            return self.column
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class Literal:
    """A string / numeric / NULL literal."""

    value: Union[str, int, float, None]

    def render(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return normalize_number(self.value)


@dataclass(frozen=True)
class Aggregation:
    """``FUNC([DISTINCT] arg)`` — arg is a column ref or ``*``."""

    func: str
    arg: ColumnRef
    distinct: bool = False

    def render(self) -> str:
        inner = str(self.arg)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.func.upper()}({inner})"


Expression = Union[ColumnRef, Literal, Aggregation]


def render_expression(expr: Expression) -> str:
    """Render any expression node to SQL text."""
    if isinstance(expr, ColumnRef):
        return str(expr)
    if isinstance(expr, (Literal, Aggregation)):
        return expr.render()
    raise TypeError(f"not an expression node: {expr!r}")


@dataclass(frozen=True)
class SelectItem:
    """One projection in the SELECT list."""

    expr: Expression
    alias: str = ""


@dataclass(frozen=True)
class JoinEdge:
    """``JOIN <right table> ON left = right`` equality edge."""

    table: str
    left: ColumnRef
    right: ColumnRef


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key with direction."""

    expr: Expression
    descending: bool = False


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BinaryCondition:
    """``expr OP value`` where OP is a comparison operator.

    ``right`` may also be a :class:`Query` (scalar subquery comparison).
    """

    left: Expression
    op: str
    right: Union[Expression, "Query"]


@dataclass(frozen=True)
class InCondition:
    """``expr [NOT] IN (values | subquery)``."""

    expr: Expression
    values: tuple[Literal, ...] = ()
    subquery: Optional["Query"] = None
    negated: bool = False


@dataclass(frozen=True)
class BetweenCondition:
    """``expr BETWEEN low AND high``."""

    expr: Expression
    low: Literal
    high: Literal


@dataclass(frozen=True)
class LikeCondition:
    """``expr [NOT] LIKE pattern``."""

    expr: Expression
    pattern: Literal
    negated: bool = False


@dataclass(frozen=True)
class NullCondition:
    """``expr IS [NOT] NULL``."""

    expr: Expression
    negated: bool = False


@dataclass(frozen=True)
class CompoundCondition:
    """AND / OR over two or more sub-conditions."""

    op: str  # "AND" | "OR"
    conditions: tuple["Condition", ...]


Condition = Union[
    BinaryCondition,
    InCondition,
    BetweenCondition,
    LikeCondition,
    NullCondition,
    CompoundCondition,
]


# ---------------------------------------------------------------------------
# Query
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Query:
    """A SELECT query, possibly compounded with a set operation."""

    select_items: tuple[SelectItem, ...]
    from_table: str
    joins: tuple[JoinEdge, ...] = ()
    where: Optional[Condition] = None
    group_by: tuple[ColumnRef, ...] = ()
    having: Optional[Condition] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False
    compound_op: str = ""  # "", "UNION", "INTERSECT", "EXCEPT"
    compound_query: Optional["Query"] = None

    # -- structural helpers -------------------------------------------------

    def tables_used(self) -> set[str]:
        """All table names referenced by this query tree (lower-cased)."""
        tables = {self.from_table.lower()}
        tables.update(edge.table.lower() for edge in self.joins)
        for sub in self._subqueries():
            tables.update(sub.tables_used())
        if self.compound_query is not None:
            tables.update(self.compound_query.tables_used())
        return tables

    def columns_used(self) -> set[str]:
        """All ``table.column`` keys referenced anywhere in the tree."""
        columns: set[str] = set()

        def visit_expr(expr: Expression) -> None:
            if isinstance(expr, ColumnRef) and expr.column != "*":
                columns.add(expr.key())
            elif isinstance(expr, Aggregation) and expr.arg.column != "*":
                columns.add(expr.arg.key())

        for item in self.select_items:
            visit_expr(item.expr)
        for edge in self.joins:
            columns.add(edge.left.key())
            columns.add(edge.right.key())
        for cond in self._conditions():
            columns.update(_condition_columns(cond))
        for col in self.group_by:
            columns.add(col.key())
        for item in self.order_by:
            visit_expr(item.expr)
        for sub in self._subqueries():
            columns.update(sub.columns_used())
        if self.compound_query is not None:
            columns.update(self.compound_query.columns_used())
        return columns

    def literals_used(self) -> list[Literal]:
        """All literals in WHERE/HAVING predicates, in document order."""
        literals: list[Literal] = []
        for cond in self._conditions():
            literals.extend(_condition_literals(cond))
        for sub in self._subqueries():
            literals.extend(sub.literals_used())
        if self.compound_query is not None:
            literals.extend(self.compound_query.literals_used())
        return literals

    def local_tables(self) -> tuple[str, ...]:
        """Tables visible in this query level's own FROM/JOIN scope.

        Document order, original casing, no recursion into subqueries or
        compound arms — this is the name-resolution scope a semantic
        analyzer uses for the query's own column references.
        """
        return (self.from_table, *(edge.table for edge in self.joins))

    def subqueries(self) -> Iterator["Query"]:
        """Immediate subqueries of this level (IN / comparison RHS)."""
        yield from self._subqueries()

    def compound_chain(self) -> Iterator["Query"]:
        """This query followed by each compound arm, left to right."""
        current: Query | None = self
        while current is not None:
            yield current
            current = current.compound_query

    def _conditions(self) -> Iterator[Condition]:
        if self.where is not None:
            yield self.where
        if self.having is not None:
            yield self.having

    def _subqueries(self) -> Iterator["Query"]:
        for cond in self._conditions():
            yield from _condition_subqueries(cond)


def _condition_columns(cond: Condition) -> set[str]:
    columns: set[str] = set()

    def add_expr(expr: Expression) -> None:
        if isinstance(expr, ColumnRef) and expr.column != "*":
            columns.add(expr.key())
        elif isinstance(expr, Aggregation) and expr.arg.column != "*":
            columns.add(expr.arg.key())

    if isinstance(cond, BinaryCondition):
        add_expr(cond.left)
        if isinstance(cond.right, (ColumnRef, Literal, Aggregation)):
            add_expr(cond.right)
    elif isinstance(cond, (InCondition, LikeCondition, NullCondition, BetweenCondition)):
        add_expr(cond.expr)
    elif isinstance(cond, CompoundCondition):
        for sub in cond.conditions:
            columns.update(_condition_columns(sub))
    return columns


def _condition_literals(cond: Condition) -> list[Literal]:
    if isinstance(cond, BinaryCondition):
        return [cond.right] if isinstance(cond.right, Literal) else []
    if isinstance(cond, InCondition):
        return list(cond.values)
    if isinstance(cond, BetweenCondition):
        return [cond.low, cond.high]
    if isinstance(cond, LikeCondition):
        return [cond.pattern]
    if isinstance(cond, NullCondition):
        return []
    if isinstance(cond, CompoundCondition):
        out: list[Literal] = []
        for sub in cond.conditions:
            out.extend(_condition_literals(sub))
        return out
    raise TypeError(f"not a condition node: {cond!r}")


def _condition_subqueries(cond: Condition) -> Iterator[Query]:
    if isinstance(cond, BinaryCondition) and isinstance(cond.right, Query):
        yield cond.right
    elif isinstance(cond, InCondition) and cond.subquery is not None:
        yield cond.subquery
    elif isinstance(cond, CompoundCondition):
        for sub in cond.conditions:
            yield from _condition_subqueries(sub)
