"""SQL skeleton extraction.

A *skeleton* abstracts a SQL query to its structure: schema identifiers
become ``_`` and literals become ``value`` while keywords, aggregation
functions, and operators are kept.  Skeletons are the unit the
retrieval-based parser indexes at SFT time (RESDSQL-style "skeleton
parsing") and the unit the SQL-to-question augmentation templates are
keyed on.
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sqlgen.ast import (
    Aggregation,
    BetweenCondition,
    BinaryCondition,
    ColumnRef,
    CompoundCondition,
    Condition,
    Expression,
    InCondition,
    LikeCondition,
    Literal,
    NullCondition,
    Query,
)
from repro.sqlgen.parser import parse_sql

TABLE_SLOT = "_"
COLUMN_SLOT = "_"
VALUE_SLOT = "value"


def extract_skeleton(sql: str) -> str:
    """Skeleton of a SQL string; raises :class:`SQLSyntaxError` if unparseable."""
    return skeleton_of_query(parse_sql(sql))


def try_extract_skeleton(sql: str) -> str | None:
    """Skeleton of ``sql`` or ``None`` when the query cannot be parsed."""
    try:
        return extract_skeleton(sql)
    except SQLSyntaxError:
        return None


def skeleton_of_query(query: Query) -> str:
    """Skeleton of a parsed query."""
    parts = [_skeleton_simple(query)]
    current = query
    while current.compound_query is not None:
        parts.append(current.compound_op.upper())
        parts.append(_skeleton_simple(current.compound_query))
        current = current.compound_query
    return " ".join(parts)


def _skeleton_simple(query: Query) -> str:
    pieces = ["SELECT"]
    if query.distinct:
        pieces.append("DISTINCT")
    pieces.append(", ".join(_skeleton_expr(item.expr) for item in query.select_items))
    pieces.append(f"FROM {TABLE_SLOT}")
    for _ in query.joins:
        pieces.append(f"JOIN {TABLE_SLOT} ON {COLUMN_SLOT} = {COLUMN_SLOT}")
    if query.where is not None:
        pieces.append("WHERE")
        pieces.append(_skeleton_condition(query.where))
    if query.group_by:
        pieces.append("GROUP BY")
        pieces.append(", ".join(COLUMN_SLOT for _ in query.group_by))
    if query.having is not None:
        pieces.append("HAVING")
        pieces.append(_skeleton_condition(query.having))
    if query.order_by:
        pieces.append("ORDER BY")
        pieces.append(
            ", ".join(
                _skeleton_expr(item.expr) + (" DESC" if item.descending else " ASC")
                for item in query.order_by
            )
        )
    if query.limit is not None:
        pieces.append("LIMIT value")
    return " ".join(pieces)


def _skeleton_expr(expr: Expression) -> str:
    if isinstance(expr, ColumnRef):
        return "*" if expr.column == "*" else COLUMN_SLOT
    if isinstance(expr, Aggregation):
        inner = "*" if expr.arg.column == "*" else COLUMN_SLOT
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.func.upper()}({inner})"
    if isinstance(expr, Literal):
        return VALUE_SLOT
    raise TypeError(f"not an expression node: {expr!r}")


def _skeleton_condition(cond: Condition) -> str:
    if isinstance(cond, BinaryCondition):
        if isinstance(cond.right, Query):
            right = f"( {skeleton_of_query(cond.right)} )"
        else:
            right = _skeleton_expr(cond.right)
        return f"{_skeleton_expr(cond.left)} {cond.op} {right}"
    if isinstance(cond, InCondition):
        keyword = "NOT IN" if cond.negated else "IN"
        if cond.subquery is not None:
            return f"{COLUMN_SLOT} {keyword} ( {skeleton_of_query(cond.subquery)} )"
        return f"{COLUMN_SLOT} {keyword} ( {VALUE_SLOT} )"
    if isinstance(cond, BetweenCondition):
        return f"{COLUMN_SLOT} BETWEEN {VALUE_SLOT} AND {VALUE_SLOT}"
    if isinstance(cond, LikeCondition):
        keyword = "NOT LIKE" if cond.negated else "LIKE"
        return f"{COLUMN_SLOT} {keyword} {VALUE_SLOT}"
    if isinstance(cond, NullCondition):
        keyword = "IS NOT NULL" if cond.negated else "IS NULL"
        return f"{COLUMN_SLOT} {keyword}"
    if isinstance(cond, CompoundCondition):
        joiner = f" {cond.op.upper()} "
        return joiner.join(_skeleton_condition(sub) for sub in cond.conditions)
    raise TypeError(f"not a condition node: {cond!r}")
