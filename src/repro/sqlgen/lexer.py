"""A small SQL lexer for the SQLite dialect subset used by the corpus."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SQLSyntaxError


class TokenKind(enum.Enum):
    """Lexical category of a SQL token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    STAR = "star"
    EOF = "eof"


#: Reserved words recognized as keywords (upper-cased on output).
KEYWORDS = frozenset(
    {
        "select", "distinct", "from", "where", "group", "by", "having",
        "order", "limit", "offset", "join", "inner", "left", "right",
        "outer", "on", "as", "and", "or", "not", "in", "like", "between",
        "is", "null", "asc", "desc", "union", "intersect", "except",
        "exists", "case", "when", "then", "else", "end", "cast",
        "all",
    }
)

#: Function names kept as identifiers but recognized by the parser.
FUNCTIONS = frozenset(
    {"count", "sum", "avg", "min", "max", "abs", "round", "length",
     "substr", "upper", "lower", "strftime", "iif", "coalesce"}
)

_OPERATORS = ("<>", "<=", ">=", "!=", "||", "=", "<", ">", "+", "-", "/", "%")


@dataclass(frozen=True)
class SQLToken:
    """One lexical token with its source position."""

    kind: TokenKind
    value: str
    position: int

    def upper(self) -> str:
        return self.value.upper()

    def lower(self) -> str:
        return self.value.lower()


def tokenize_sql(sql: str) -> list[SQLToken]:
    """Tokenize ``sql`` into a list ending with an EOF token.

    Raises :class:`SQLSyntaxError` on unterminated strings or stray
    characters.
    """
    tokens: list[SQLToken] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            end = _scan_quoted(sql, i, "'")
            tokens.append(SQLToken(TokenKind.STRING, sql[i:end], i))
            i = end
            continue
        if ch in ('"', "`"):
            closing = '"' if ch == '"' else "`"
            end = _scan_quoted(sql, i, closing)
            name = sql[i + 1:end - 1]
            tokens.append(SQLToken(TokenKind.IDENTIFIER, name, i))
            i = end
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            end = i
            seen_dot = False
            while end < n and (sql[end].isdigit() or (sql[end] == "." and not seen_dot)):
                seen_dot = seen_dot or sql[end] == "."
                end += 1
            tokens.append(SQLToken(TokenKind.NUMBER, sql[i:end], i))
            i = end
            continue
        if ch.isalpha() or ch == "_":
            end = i
            while end < n and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[i:end]
            kind = TokenKind.KEYWORD if word.lower() in KEYWORDS else TokenKind.IDENTIFIER
            tokens.append(SQLToken(kind, word, i))
            i = end
            continue
        if ch == "*":
            tokens.append(SQLToken(TokenKind.STAR, "*", i))
            i += 1
            continue
        op = next((o for o in _OPERATORS if sql.startswith(o, i)), None)
        if op is not None:
            tokens.append(SQLToken(TokenKind.OPERATOR, op, i))
            i += len(op)
            continue
        if ch in "(),.;":
            tokens.append(SQLToken(TokenKind.PUNCT, ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r} at {i}", sql=sql, position=i)
    tokens.append(SQLToken(TokenKind.EOF, "", n))
    return tokens


def _scan_quoted(sql: str, start: int, closing: str) -> int:
    """Return the index one past the closing quote; handles '' escapes."""
    i = start + 1
    n = len(sql)
    while i < n:
        if sql[i] == closing:
            if closing == "'" and i + 1 < n and sql[i + 1] == "'":
                i += 2
                continue
            return i + 1
        i += 1
    raise SQLSyntaxError(
        f"unterminated {closing} literal starting at {start}", sql=sql, position=start
    )
