"""Retrieval substrate: BM25 index, LCS matching, coarse-to-fine values."""

from repro.retrieval.bm25 import BM25Index
from repro.retrieval.lcs import longest_common_substring, lcs_match_degree
from repro.retrieval.value_retriever import MatchedValue, ValueRetriever

__all__ = [
    "BM25Index",
    "MatchedValue",
    "ValueRetriever",
    "lcs_match_degree",
    "longest_common_substring",
]
