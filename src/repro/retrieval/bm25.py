"""BM25 inverted index built from scratch.

Stands in for the Lucene/pyserini index the paper uses for the
coarse-grained stage of value retrieval (§6.2).  Documents are short
strings (database values); the query is the user's question.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.text.tokenize import sentence_tokens


@dataclass(frozen=True)
class ScoredDocument:
    """One BM25 search hit."""

    doc_id: Hashable
    score: float
    text: str


class BM25Index:
    """Okapi BM25 inverted index over short text documents.

    Parameters follow the standard formulation; ``k1`` controls term
    frequency saturation and ``b`` the length normalization.
    """

    def __init__(self, k1: float = 1.2, b: float = 0.75):
        if k1 < 0.0:
            raise ValueError(f"k1 must be non-negative, got {k1}")
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must lie in [0, 1], got {b}")
        self.k1 = k1
        self.b = b
        self._postings: dict[str, list[tuple[int, int]]] = defaultdict(list)
        self._doc_ids: list[Hashable] = []
        self._doc_texts: list[str] = []
        self._doc_lengths: list[int] = []
        self._total_length = 0

    def __len__(self) -> int:
        return len(self._doc_ids)

    @property
    def average_length(self) -> float:
        if not self._doc_ids:
            return 0.0
        return self._total_length / len(self._doc_ids)

    def add(self, doc_id: Hashable, text: str) -> None:
        """Index one document under ``doc_id``."""
        tokens = sentence_tokens(text)
        internal = len(self._doc_ids)
        self._doc_ids.append(doc_id)
        self._doc_texts.append(text)
        self._doc_lengths.append(len(tokens))
        self._total_length += len(tokens)
        for token, freq in Counter(tokens).items():
            self._postings[token].append((internal, freq))

    def add_all(self, documents: Sequence[tuple[Hashable, str]]) -> None:
        for doc_id, text in documents:
            self.add(doc_id, text)

    def _idf(self, token: str) -> float:
        doc_freq = len(self._postings.get(token, ()))
        if doc_freq == 0:
            return 0.0
        count = len(self._doc_ids)
        return math.log(1.0 + (count - doc_freq + 0.5) / (doc_freq + 0.5))

    def search(self, query: str, top_k: int = 100) -> list[ScoredDocument]:
        """Top-``top_k`` documents for ``query``, highest score first.

        Ties break deterministically by insertion order.
        """
        if top_k <= 0 or not self._doc_ids:
            return []
        scores: dict[int, float] = defaultdict(float)
        avg_len = self.average_length or 1.0
        # dict.fromkeys dedupes in first-occurrence order, so the float
        # summation order (and thus the scores) is independent of
        # PYTHONHASHSEED (DET001).
        for token in dict.fromkeys(sentence_tokens(query)):
            idf = self._idf(token)
            if idf == 0.0:
                continue
            for internal, freq in self._postings[token]:
                length_norm = 1.0 - self.b + self.b * self._doc_lengths[internal] / avg_len
                tf_component = freq * (self.k1 + 1.0) / (freq + self.k1 * length_norm)
                scores[internal] += idf * tf_component
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return [
            ScoredDocument(
                doc_id=self._doc_ids[internal],
                score=score,
                text=self._doc_texts[internal],
            )
            for internal, score in ranked[:top_k]
        ]
