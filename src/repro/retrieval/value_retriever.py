"""Coarse-to-fine value retriever (§6.2).

Stage 1 (coarse): a BM25 index over every distinct text value in the
database pulls a few hundred candidates for the question.
Stage 2 (fine): the longest-common-substring match degree re-ranks the
candidates and keeps only confident matches.

The retriever also supports an ``exhaustive`` mode that skips BM25 and
runs LCS against every value — the quadratic baseline the paper
explicitly rejects, kept here for the speed benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import re

from repro.db.database import Database
from repro.retrieval.bm25 import BM25Index
from repro.retrieval.lcs import lcs_match_degree, longest_common_substring


@dataclass(frozen=True)
class MatchedValue:
    """A database value matched against the question."""

    table: str
    column: str
    value: str
    degree: float

    def render(self) -> str:
        """Prompt rendering, e.g. ``district.a2 = 'Jesenik'``."""
        escaped = self.value.replace("'", "''")
        return f"{self.table}.{self.column} = '{escaped}'"


class ValueRetriever:
    """Retrieve question-relevant database values, coarse-to-fine."""

    def __init__(
        self,
        database: Database,
        coarse_k: int = 200,
        min_degree: float = 0.5,
        max_matches: int = 6,
    ):
        if coarse_k <= 0:
            raise ValueError(f"coarse_k must be positive, got {coarse_k}")
        self.database = database
        self.coarse_k = coarse_k
        self.min_degree = min_degree
        self.max_matches = max_matches
        self._index = BM25Index()
        self._values: list[tuple[str, str, str]] = []
        for position, (table, column, value) in enumerate(database.iter_text_values()):
            self._values.append((table, column, value))
            self._index.add(position, value)

    @property
    def indexed_value_count(self) -> int:
        return len(self._values)

    def retrieve(self, question: str) -> list[MatchedValue]:
        """Best-matching values for ``question`` via BM25 then LCS."""
        hits = self._index.search(question, top_k=self.coarse_k)
        candidates = ((self._values[hit.doc_id]) for hit in hits)
        return self._fine_rank(question, candidates)

    def retrieve_exhaustive(self, question: str) -> list[MatchedValue]:
        """LCS over every indexed value — the quadratic baseline."""
        return self._fine_rank(question, iter(self._values))

    def _fine_rank(self, question, candidates) -> list[MatchedValue]:
        matches: list[MatchedValue] = []
        seen: set[tuple[str, str, str]] = set()
        for table, column, value in candidates:
            key = (table, column, value)
            if key in seen:
                continue
            seen.add(key)
            degree = lcs_match_degree(question, value)
            if degree >= self.min_degree or self._entity_containment(question, value):
                matches.append(
                    MatchedValue(table=table, column=column, value=value, degree=degree)
                )
        matches.sort(key=lambda match: (-match.degree, -len(match.value)))
        return matches[:self.max_matches]

    @staticmethod
    def _entity_containment(question: str, value: str) -> bool:
        """True when the question mentions an entity the value contains.

        "clients in Graz" matches the stored value "City of Graz": the
        shared substring is a whole, capitalized (entity-like) question
        word.  This recovers values whose stored form wraps the user's
        mention, without opening the door to stopword-level noise.
        """
        shared = longest_common_substring(question, value).strip()
        if len(shared) < 3 or not shared[0].isupper():
            return False
        return bool(re.search(rf"\b{re.escape(shared)}\b", question))
