"""Longest common substring, the fine-grained value matcher (§6.2).

The paper notes the O(f*u) cost of LCS is why the coarse BM25 stage
exists; we keep the textbook dynamic program so the speed benchmark
(``bench_value_retriever_speed``) measures the genuine trade-off.
"""

from __future__ import annotations


def longest_common_substring(left: str, right: str) -> str:
    """The longest contiguous substring shared by the two strings.

    Comparison is case-insensitive; the returned substring preserves the
    casing of ``right``.  Ties favor the earliest occurrence in
    ``right``.
    """
    if not left or not right:
        return ""
    low_left = left.lower()
    low_right = right.lower()
    best_len = 0
    best_end = 0
    previous = [0] * (len(low_left) + 1)
    for j in range(1, len(low_right) + 1):
        current = [0] * (len(low_left) + 1)
        right_char = low_right[j - 1]
        for i in range(1, len(low_left) + 1):
            if low_left[i - 1] == right_char:
                current[i] = previous[i - 1] + 1
                if current[i] > best_len:
                    best_len = current[i]
                    best_end = j
        previous = current
    return right[best_end - best_len:best_end]


def lcs_match_degree(question: str, value: str) -> float:
    """Degree in [0, 1] to which ``value`` is mentioned by ``question``.

    The longest shared substring is normalized by the value's length, so
    a value fully contained in the question scores 1.0.
    """
    if not value:
        return 0.0
    shared = longest_common_substring(question, value)
    return len(shared) / len(value)
