"""End-to-end evaluation harness: run a parser over a benchmark split."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol

from repro.datasets.base import Text2SQLDataset, Text2SQLExample
from repro.db.database import Database
from repro.errors import GenerationError
from repro.eval.execution import execution_match
from repro.eval.testsuite import TestSuite
from repro.eval.ves import valid_efficiency_score


class SQLGenerator(Protocol):
    """Anything that maps (question, database) to SQL."""

    def generate(self, question: str, database: Database, **kwargs):  # pragma: no cover
        ...


@dataclass
class EvalResult:
    """Aggregate metrics of one evaluation run."""

    name: str
    n_examples: int
    ex: float
    ts: float | None = None
    ves: float | None = None
    mean_latency_s: float = 0.0
    predictions: list[str] = field(default_factory=list, repr=False)

    def as_row(self) -> dict[str, object]:
        row: dict[str, object] = {
            "name": self.name,
            "n": self.n_examples,
            "EX%": round(100 * self.ex, 1),
        }
        if self.ts is not None:
            row["TS%"] = round(100 * self.ts, 1)
        if self.ves is not None:
            row["VES%"] = round(100 * self.ves, 1)
        row["latency_s"] = round(self.mean_latency_s, 3)
        return row


def evaluate_parser(
    parser,
    dataset: Text2SQLDataset,
    split: str = "dev",
    demonstrations_per_question: int | None = None,
    demonstration_retriever=None,
    use_external_knowledge: bool = False,
    compute_ts: bool = False,
    ts_variants: int = 3,
    suites: dict[str, TestSuite] | None = None,
    compute_ves: bool = False,
    ves_runs: int = 3,
    limit: int | None = None,
    name: str = "",
) -> EvalResult:
    """Evaluate ``parser`` on one split of ``dataset``.

    ``demonstrations_per_question`` switches the protocol: ``None``
    runs supervised (the parser must be fitted), ``0`` runs zero-shot
    prompting, and ``k > 0`` runs k-shot ICL via the required
    ``demonstration_retriever``.  External knowledge, when enabled, is
    appended to the question exactly as the paper does for BIRD w/ EK.
    """
    examples = dataset.dev if split == "dev" else dataset.train
    if limit is not None:
        examples = examples[:limit]
    fewshot = demonstrations_per_question is not None
    if fewshot and demonstrations_per_question > 0 and demonstration_retriever is None:
        raise ValueError("few-shot evaluation needs a demonstration retriever")

    suites = suites if suites is not None else {}
    hits = 0
    ts_hits = 0
    ves_total = 0.0
    latencies: list[float] = []
    predictions: list[str] = []

    for example in examples:
        database = dataset.database_of(example)
        kwargs: dict[str, object] = {}
        if use_external_knowledge and example.external_knowledge:
            kwargs["external_knowledge"] = example.external_knowledge
        if fewshot:
            if demonstrations_per_question > 0:
                scored = demonstration_retriever.retrieve(
                    example.question, k=demonstrations_per_question
                )
                kwargs["demonstrations"] = [entry.example for entry in scored]
            else:
                kwargs["demonstrations"] = []
        start = time.perf_counter()
        try:
            result = parser.generate(example.question, database, **kwargs)
            predicted = result.sql
        except GenerationError:
            predicted = "SELECT 1"
        latencies.append(time.perf_counter() - start)
        predictions.append(predicted)

        correct = execution_match(database, predicted, example.sql)
        hits += int(correct)
        if compute_ts:
            if example.db_id not in suites:
                suites[example.db_id] = TestSuite(database, n_variants=ts_variants)
            ts_hits += int(suites[example.db_id].check(predicted, example.sql))
        if compute_ves:
            ves_total += valid_efficiency_score(
                database, predicted, example.sql, runs=ves_runs
            )

    count = max(1, len(examples))
    return EvalResult(
        name=name or dataset.name,
        n_examples=len(examples),
        ex=hits / count,
        ts=(ts_hits / count) if compute_ts else None,
        ves=(ves_total / count) if compute_ves else None,
        mean_latency_s=sum(latencies) / count if latencies else 0.0,
        predictions=predictions,
    )


def pair_samples(
    dataset: Text2SQLDataset, split: str = "train"
) -> list[tuple[Text2SQLExample, Database]]:
    """(example, database) pairs for parser fine-tuning."""
    examples = dataset.train if split == "train" else dataset.dev
    return [(example, dataset.database_of(example)) for example in examples]
