"""End-to-end evaluation harness: run a parser over a benchmark split.

The harness is fault-tolerant: per-example failures are captured and
classified (see the taxonomy in :mod:`repro.eval.execution` plus
``generation_failed`` here) instead of aborting the run.  Examples
whose *gold* query cannot execute are skipped-and-recorded on a
quarantine list — one broken benchmark entry no longer kills an entire
evaluation — and a per-database circuit breaker stops a corrupted
database from consuming the retry budget of every example that
references it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Protocol

from repro.analysis.analyzer import SemanticAnalyzer
from repro.analysis.catalog import SchemaCatalog
from repro.analysis.diagnostics import has_errors
from repro.analysis.equivalence import Verdict, prove_equivalent
from repro.datasets.base import Text2SQLDataset, Text2SQLExample
from repro.db.backends import backend_for_dialect, create_backend
from repro.db.database import Database
from repro.errors import ReproError, SQLSyntaxError
from repro.sqlgen.dialects import transpile
from repro.eval.execution import (
    GOLD_TIMEOUT,
    GOLD_UNEXECUTABLE,
    PREDICTION_TIMEOUT,
    PREDICTION_UNEXECUTABLE,
    MatchOutcome,
    execution_match_outcome,
)
from repro.eval.testsuite import TestSuite
from repro.eval.ves import valid_efficiency_score
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.clock import SYSTEM_CLOCK, Clock
from repro.reliability.retry import RetryPolicy

#: Generation-side failure class (the parser raised before producing SQL).
GENERATION_FAILED = "generation_failed"

#: The prediction executed but carries error-tier semantic diagnostics
#: (hallucinated schema, aggregate misuse, incompatible types) and did
#: not match gold — the silent-wrong-result class executability hides.
PREDICTION_SEMANTIC_ERROR = "prediction_semantic_error"

#: All failure classes a run can report, in reporting order.
FAILURE_CLASSES = (
    GENERATION_FAILED,
    PREDICTION_UNEXECUTABLE,
    PREDICTION_TIMEOUT,
    PREDICTION_SEMANTIC_ERROR,
    GOLD_UNEXECUTABLE,
    GOLD_TIMEOUT,
)

#: SQL served when every generation tier fails (always executable).
SENTINEL_SQL = "SELECT 1"


class SQLGenerator(Protocol):
    """Anything that maps (question, database) to SQL."""

    def generate(self, question: str, database: Database, **kwargs):  # pragma: no cover
        ...


@dataclass(frozen=True)
class FailureRecord:
    """One captured per-example failure (quarantine entry)."""

    index: int
    db_id: str
    question: str
    failure: str
    detail: str = ""


@dataclass
class EvalResult:
    """Aggregate metrics of one evaluation run.

    ``n_scored`` counts the examples whose gold query executed — the
    denominator of EX/TS/VES.  ``failures`` holds nonzero per-class
    failure counts, ``quarantined`` the skipped-and-recorded examples
    (gold-side failures), and ``tiers`` how many answers each
    generation tier produced (``beam`` / ``skeleton`` / ``sentinel``).

    Engine observability: ``stage_timings`` aggregates the per-stage
    traces of every generation (wall time from the injectable Clock,
    cache traffic, executions) — one entry per pipeline stage, empty
    for parsers that do not emit traces.  :meth:`stage_rows` renders
    it for :func:`repro.eval.reporting.format_table`.

    Semantic-analysis accounting: ``diagnostics`` maps analyzer rule
    codes to how often they fired across all predictions, and
    ``executions_avoided`` totals the execution round-trips the static
    passes saved — lint-gate and equivalence-dedup savings inside the
    beam plus two per EX short-circuit (0 for parsers without them).
    ``static_equivalent`` counts predictions proven equivalent to gold
    by the equivalence engine and scored as hits without executing
    either query, and ``beam_deduped`` totals the beam candidates the
    parser collapsed into an already-seen equivalence class.
    """

    name: str
    n_examples: int
    ex: float
    ts: float | None = None
    ves: float | None = None
    mean_latency_s: float = 0.0
    predictions: list[str] = field(default_factory=list, repr=False)
    n_scored: int = 0
    failures: dict[str, int] = field(default_factory=dict)
    quarantined: list[FailureRecord] = field(default_factory=list, repr=False)
    tiers: dict[str, int] = field(default_factory=dict, repr=False)
    diagnostics: dict[str, int] = field(default_factory=dict, repr=False)
    executions_avoided: int = 0
    static_equivalent: int = 0
    beam_deduped: int = 0
    stage_timings: dict[str, dict[str, float]] = field(
        default_factory=dict, repr=False
    )

    @property
    def n_failures(self) -> int:
        return sum(self.failures.values())

    def stage_rows(self) -> list[dict[str, object]]:
        """Per-stage timing rows (pipeline order) for table rendering."""
        rows: list[dict[str, object]] = []
        for stage, agg in self.stage_timings.items():
            calls = int(agg["calls"]) or 1
            rows.append(
                {
                    "stage": stage,
                    "calls": int(agg["calls"]),
                    "total_ms": round(1000 * agg["wall_s"], 2),
                    "mean_ms": round(1000 * agg["wall_s"] / calls, 3),
                    "cache_hit": int(agg["cache_hits"]),
                    "cache_miss": int(agg["cache_misses"]),
                    "exec_used": int(agg["executions_used"]),
                    "exec_avoided": int(agg["executions_avoided"]),
                }
            )
        return rows

    def as_row(self) -> dict[str, object]:
        row: dict[str, object] = {
            "name": self.name,
            "n": self.n_examples,
            "EX%": round(100 * self.ex, 1),
        }
        if self.ts is not None:
            row["TS%"] = round(100 * self.ts, 1)
        if self.ves is not None:
            row["VES%"] = round(100 * self.ves, 1)
        row["latency_s"] = round(self.mean_latency_s, 3)
        if self.failures:
            row["failures"] = self.n_failures
        return row


def evaluate_parser(
    parser,
    dataset: Text2SQLDataset,
    split: str = "dev",
    demonstrations_per_question: int | None = None,
    demonstration_retriever=None,
    use_external_knowledge: bool = False,
    compute_ts: bool = False,
    ts_variants: int = 3,
    suites: dict[str, TestSuite] | None = None,
    compute_ves: bool = False,
    ves_runs: int = 3,
    limit: int | None = None,
    name: str = "",
    deadline_s: float | None = None,
    retry_policy: RetryPolicy | None = None,
    max_retries: int | None = None,
    breaker_threshold: int = 5,
    breaker_recovery_s: float = 30.0,
    clock: Clock | None = None,
    static_eval: bool = True,
    batch: bool = False,
    dialect: str = "sqlite",
) -> EvalResult:
    """Evaluate ``parser`` on one split of ``dataset``.

    ``demonstrations_per_question`` switches the protocol: ``None``
    runs supervised (the parser must be fitted), ``0`` runs zero-shot
    prompting, and ``k > 0`` runs k-shot ICL via the required
    ``demonstration_retriever``.  External knowledge, when enabled, is
    appended to the question exactly as the paper does for BIRD w/ EK.

    Reliability knobs: ``deadline_s`` bounds each query's wall-clock
    execution time, ``max_retries`` (or an explicit ``retry_policy``)
    retries transient generation/execution failures with seeded
    backoff, and each database gets a circuit breaker that opens after
    ``breaker_threshold`` consecutive gold-side failures.  The
    injectable ``clock`` drives deadlines, backoff sleeps, and breaker
    recovery, so tests run without real time passing.

    With ``static_eval`` (the default) a prediction the equivalence
    prover marks EQUIVALENT to gold scores as a hit without executing
    either query (two round-trips saved, counted in
    ``executions_avoided``; occurrences in ``static_equivalent``).
    Sound because EQUIVALENT is rewrite-closed — and audited against
    real execution by the ``-m equivalence`` test suite.  Pass
    ``static_eval=False`` (CLI ``--no-static-eval``) to keep the
    executed path authoritative; note the static path also skips the
    gold-executability probe, so a gold query that both matches the
    prediction canonically *and* fails to execute would score instead
    of quarantining (bundled gold sets are audited executable).

    With ``batch`` (CLI ``--batch``) and a parser exposing
    ``build_engine`` (:class:`repro.core.CodeSParser`), the harness
    holds one staged engine — with its own
    :class:`~repro.engine.cache.StageCache` — per database, so prompt
    builders, analyzers, cost estimators and linking scores are reused
    across every question on that database; the per-stage cache traffic
    shows up in ``stage_timings``.  Per-stage traces are aggregated
    whenever the parser emits them, batch mode or not.

    ``dialect`` (CLI ``--dialect``) runs the whole evaluation on the
    registered backend that speaks it: every database is adapted via
    :func:`repro.db.backends.create_backend`, gold queries are
    transpiled into the dialect, and generation/lint/equivalence all
    operate on that backend's SQL.  Gold queries outside the
    transpilable subset are passed through verbatim (the backend
    classifies them ``gold_unexecutable`` and quarantines the example).
    The default ``"sqlite"`` is the identity: byte-for-byte the
    historical behaviour.
    """
    examples = dataset.dev if split == "dev" else dataset.train
    if limit is not None:
        examples = examples[:limit]
    backend_name = backend_for_dialect(dialect)
    if dialect != "sqlite" and (compute_ts or compute_ves):
        raise ValueError(
            "test-suite and VES scoring require the reference sqlite "
            f"dialect, not {dialect!r}"
        )
    fewshot = demonstrations_per_question is not None
    if fewshot and demonstrations_per_question > 0 and demonstration_retriever is None:
        raise ValueError("few-shot evaluation needs a demonstration retriever")
    if max_retries is not None and max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    if retry_policy is None and max_retries:
        retry_policy = RetryPolicy(max_attempts=max_retries + 1)

    clock = clock or SYSTEM_CLOCK
    suites = suites if suites is not None else {}
    backends: dict[str, object] = {}
    breakers: dict[str, CircuitBreaker] = {}
    analyzers: dict[str, SemanticAnalyzer] = {}
    batch = batch and hasattr(parser, "build_engine")
    engines: dict[str, object] = {}
    stage_timings: dict[str, dict[str, float]] = {}
    hits = 0
    ts_hits = 0
    ves_total = 0.0
    n_scored = 0
    executions_avoided = 0
    static_equivalent = 0
    beam_deduped = 0
    latencies: list[float] = []
    predictions: list[str] = []
    failures: Counter[str] = Counter()
    quarantined: list[FailureRecord] = []
    tiers: Counter[str] = Counter()
    diagnostics: Counter[str] = Counter()

    for index, example in enumerate(examples):
        database = dataset.database_of(example)
        gold_sql = example.sql
        if dialect != "sqlite":
            # Adapt once per database (a content snapshot, not per
            # example) and move gold into the backend's dialect.
            backend = backends.get(example.db_id)
            if backend is None:
                backend = backends[example.db_id] = create_backend(
                    backend_name, database
                )
            database = backend
            try:
                gold_sql = transpile(example.sql, dialect)
            except SQLSyntaxError:
                # Outside the transpilable subset: hand the backend the
                # verbatim text, which classifies it gold_unexecutable.
                gold_sql = example.sql
        breaker = breakers.get(example.db_id)
        if breaker is None:
            breaker = breakers[example.db_id] = CircuitBreaker(
                failure_threshold=breaker_threshold,
                recovery_timeout_s=breaker_recovery_s,
                clock=clock,
                name=example.db_id,
            )
        kwargs: dict[str, object] = {}
        if batch:
            # One engine (and StageCache) per database: builders,
            # analyzers, estimators and linking scores built for the
            # first question on a database serve all the others.
            engine = engines.get(example.db_id)
            if engine is None:
                engine = engines[example.db_id] = parser.build_engine()
            kwargs["engine"] = engine
        if use_external_knowledge and example.external_knowledge:
            kwargs["external_knowledge"] = example.external_knowledge
        if fewshot:
            if demonstrations_per_question > 0:
                scored = demonstration_retriever.retrieve(
                    example.question, k=demonstrations_per_question
                )
                kwargs["demonstrations"] = [entry.example for entry in scored]
            else:
                kwargs["demonstrations"] = []

        # -- generation, degrading to the sentinel on any library error --
        start = clock.now()
        try:
            if retry_policy is not None:
                result = retry_policy.call(
                    lambda: parser.generate(example.question, database, **kwargs),
                    retry_on=(ReproError,),
                    clock=clock,
                )
            else:
                result = parser.generate(example.question, database, **kwargs)
            predicted = result.sql
            tiers[getattr(result, "tier", "beam")] += 1
            executions_avoided += getattr(result, "executions_avoided", 0)
            beam_deduped += getattr(result, "beam_deduped", 0)
            trace = getattr(result, "trace", None)
            if trace is not None:
                for stage_trace in trace.stages:
                    agg = stage_timings.setdefault(
                        stage_trace.stage,
                        {
                            "calls": 0,
                            "wall_s": 0.0,
                            "cache_hits": 0,
                            "cache_misses": 0,
                            "executions_used": 0,
                            "executions_avoided": 0,
                        },
                    )
                    agg["calls"] += 1
                    agg["wall_s"] += stage_trace.wall_s
                    agg["cache_hits"] += stage_trace.cache_hits
                    agg["cache_misses"] += stage_trace.cache_misses
                    agg["executions_used"] += stage_trace.executions_used
                    agg["executions_avoided"] += stage_trace.executions_avoided
        except ReproError as exc:
            predicted = SENTINEL_SQL
            tiers["sentinel"] += 1
            failures[GENERATION_FAILED] += 1
            quarantined.append(
                FailureRecord(
                    index=index,
                    db_id=example.db_id,
                    question=example.question,
                    failure=GENERATION_FAILED,
                    detail=f"{type(exc).__name__}: {exc}",
                )
            )
        latencies.append(clock.now() - start)
        predictions.append(predicted)

        # -- static semantic audit of the prediction --------------------------
        analyzer = analyzers.get(example.db_id)
        if analyzer is None:
            analyzer = analyzers[example.db_id] = SemanticAnalyzer(
                SchemaCatalog.from_database(database),
                capabilities=getattr(database, "capabilities", None),
            )
        prediction_diags = analyzer.analyze_sql(predicted)
        for diagnostic in prediction_diags:
            diagnostics[diagnostic.code] += 1
        semantically_dirty = has_errors(prediction_diags)

        # -- static EX short-circuit -------------------------------------------
        # A prediction provably equivalent to gold needs no execution:
        # both queries would return identical results by construction.
        if (
            static_eval
            and prove_equivalent(
                predicted, gold_sql, analyzer.catalog, dialect=dialect
            )
            is Verdict.EQUIVALENT
        ):
            static_equivalent += 1
            executions_avoided += 2  # skipped prediction + gold round-trips
            outcome = MatchOutcome(True)
        # -- classified scoring behind the database's circuit breaker --
        elif breaker.admit():
            outcome = execution_match_outcome(
                database,
                predicted,
                gold_sql,
                deadline_s=deadline_s,
                retry_policy=retry_policy,
                clock=clock,
            )
            if outcome.failure in (GOLD_UNEXECUTABLE, GOLD_TIMEOUT):
                breaker.record_failure()
            else:
                breaker.record_success()
        else:
            outcome = MatchOutcome(
                False,
                GOLD_UNEXECUTABLE,
                f"circuit open for database {example.db_id!r} "
                f"after repeated gold failures",
            )

        if outcome.failure in (GOLD_UNEXECUTABLE, GOLD_TIMEOUT):
            # A broken gold query says nothing about the parser: skip
            # the example from every denominator, record why.
            failures[outcome.failure] += 1
            quarantined.append(
                FailureRecord(
                    index=index,
                    db_id=example.db_id,
                    question=example.question,
                    failure=outcome.failure,
                    detail=outcome.detail,
                )
            )
            continue

        n_scored += 1
        if outcome.failure is not None:
            failures[outcome.failure] += 1
        elif semantically_dirty and not outcome.matched:
            # Executed, missed, and the analyzer saw why coming: the
            # silent-wrong-result class plain executability cannot flag.
            failures[PREDICTION_SEMANTIC_ERROR] += 1
        hits += int(outcome.matched)
        if compute_ts:
            if example.db_id not in suites:
                suites[example.db_id] = TestSuite(database, n_variants=ts_variants)
            ts_hits += int(suites[example.db_id].check(predicted, example.sql))
        if compute_ves:
            ves_total += valid_efficiency_score(
                database, predicted, example.sql, runs=ves_runs, clock=clock
            )

    count = max(1, n_scored)
    return EvalResult(
        name=name or dataset.name,
        n_examples=len(examples),
        ex=hits / count,
        ts=(ts_hits / count) if compute_ts else None,
        ves=(ves_total / count) if compute_ves else None,
        mean_latency_s=sum(latencies) / len(latencies) if latencies else 0.0,
        predictions=predictions,
        n_scored=n_scored,
        failures={key: failures[key] for key in FAILURE_CLASSES if failures[key]},
        quarantined=quarantined,
        tiers=dict(tiers),
        diagnostics=dict(diagnostics),
        executions_avoided=executions_avoided,
        static_equivalent=static_equivalent,
        beam_deduped=beam_deduped,
        stage_timings=stage_timings,
    )


def pair_samples(
    dataset: Text2SQLDataset, split: str = "train"
) -> list[tuple[Text2SQLExample, Database]]:
    """(example, database) pairs for parser fine-tuning."""
    examples = dataset.train if split == "train" else dataset.dev
    return [(example, dataset.database_of(example)) for example in examples]
