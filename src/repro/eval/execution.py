"""Execution accuracy (EX): do two queries return the same result?"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from repro.db.database import Database
from repro.errors import DeadlineExceededError, ExecutionError
from repro.eval.metrics import results_match
from repro.reliability.clock import Clock
from repro.reliability.deadline import Deadline
from repro.reliability.retry import RetryPolicy

_ORDER_BY_RE = re.compile(r"\border\s+by\b", re.IGNORECASE)

# -- failure taxonomy ---------------------------------------------------------
#
# Execution-time failures are classified per side (whose query failed)
# and per mode (refused by the engine vs. out of wall-clock budget), the
# per-class accounting Rajkumar et al. (2022) argue EX alone hides.
PREDICTION_UNEXECUTABLE = "prediction_unexecutable"
PREDICTION_TIMEOUT = "prediction_timeout"
GOLD_UNEXECUTABLE = "gold_unexecutable"
GOLD_TIMEOUT = "gold_timeout"


@dataclass(frozen=True)
class MatchOutcome:
    """The result of one classified EX comparison.

    ``failure`` is ``None`` for a clean comparison (whether or not it
    matched) or one of the taxonomy constants above; ``detail`` keeps
    the originating error message for quarantine reports.
    """

    matched: bool
    failure: str | None = None
    detail: str = ""


def execution_match_outcome(
    database: Database,
    predicted_sql: str,
    gold_sql: str,
    deadline_s: float | None = None,
    retry_policy: RetryPolicy | None = None,
    clock: Clock | None = None,
) -> MatchOutcome:
    """Classified EX: never raises for query-level failures.

    Each side runs under its own fresh ``deadline_s`` wall-clock budget
    (so a slow gold query cannot starve the prediction's budget) and,
    when a ``retry_policy`` is given, transient execution failures are
    retried with its seeded backoff before being classified.
    """

    def run(sql: str) -> list:
        deadline = (
            Deadline.after(deadline_s, clock=clock) if deadline_s else None
        )
        return database.execute(sql, deadline=deadline)

    def attempt(sql: str) -> list:
        if retry_policy is not None:
            return retry_policy.call(
                lambda: run(sql), retry_on=(ExecutionError,), clock=clock
            )
        return run(sql)

    try:
        gold_rows = attempt(gold_sql)
    except DeadlineExceededError as exc:
        return MatchOutcome(False, GOLD_TIMEOUT, str(exc))
    except ExecutionError as exc:
        return MatchOutcome(False, GOLD_UNEXECUTABLE, str(exc))
    try:
        predicted_rows = attempt(predicted_sql)
    except DeadlineExceededError as exc:
        return MatchOutcome(False, PREDICTION_TIMEOUT, str(exc))
    except ExecutionError as exc:
        return MatchOutcome(False, PREDICTION_UNEXECUTABLE, str(exc))
    ordered = bool(_ORDER_BY_RE.search(gold_sql))
    return MatchOutcome(results_match(predicted_rows, gold_rows, ordered=ordered))


def execution_match(database: Database, predicted_sql: str, gold_sql: str) -> bool:
    """True when the two queries produce the same result on ``database``.

    An unexecutable prediction counts as a miss; an unexecutable gold
    query raises, because that indicates a broken benchmark.
    """
    gold_rows = database.execute(gold_sql)
    try:
        predicted_rows = database.execute(predicted_sql)
    except ExecutionError:
        return False
    ordered = bool(_ORDER_BY_RE.search(gold_sql))
    return results_match(predicted_rows, gold_rows, ordered=ordered)


def execution_accuracy(
    database_pairs: Sequence[tuple[Database, str, str]],
) -> float:
    """Mean EX over ``(database, predicted_sql, gold_sql)`` triples."""
    if not database_pairs:
        return 0.0
    hits = sum(
        1 for database, predicted, gold in database_pairs
        if execution_match(database, predicted, gold)
    )
    return hits / len(database_pairs)
