"""Execution accuracy (EX): do two queries return the same result?"""

from __future__ import annotations

import re
from typing import Sequence

from repro.db.database import Database
from repro.errors import ExecutionError
from repro.eval.metrics import results_match

_ORDER_BY_RE = re.compile(r"\border\s+by\b", re.IGNORECASE)


def execution_match(database: Database, predicted_sql: str, gold_sql: str) -> bool:
    """True when the two queries produce the same result on ``database``.

    An unexecutable prediction counts as a miss; an unexecutable gold
    query raises, because that indicates a broken benchmark.
    """
    gold_rows = database.execute(gold_sql)
    try:
        predicted_rows = database.execute(predicted_sql)
    except ExecutionError:
        return False
    ordered = bool(_ORDER_BY_RE.search(gold_sql))
    return results_match(predicted_rows, gold_rows, ordered=ordered)


def execution_accuracy(
    database_pairs: Sequence[tuple[Database, str, str]],
) -> float:
    """Mean EX over ``(database, predicted_sql, gold_sql)`` triples."""
    if not database_pairs:
        return 0.0
    hits = sum(
        1 for database, predicted, gold in database_pairs
        if execution_match(database, predicted, gold)
    )
    return hits / len(database_pairs)
