"""Evaluation: execution accuracy, test-suite accuracy, VES, AUC."""

from repro.eval.metrics import roc_auc, results_match
from repro.eval.execution import execution_accuracy, execution_match
from repro.eval.testsuite import TestSuite, test_suite_accuracy
from repro.eval.ves import valid_efficiency_score
from repro.eval.harness import EvalResult, evaluate_parser, pair_samples
from repro.eval.reporting import format_table, print_table

__all__ = [
    "EvalResult",
    "TestSuite",
    "evaluate_parser",
    "execution_accuracy",
    "execution_match",
    "format_table",
    "pair_samples",
    "print_table",
    "results_match",
    "roc_auc",
    "test_suite_accuracy",
    "valid_efficiency_score",
]
