"""Evaluation: execution accuracy, test-suite accuracy, VES, AUC."""

from repro.eval.metrics import roc_auc, results_match
from repro.eval.execution import (
    GOLD_TIMEOUT,
    GOLD_UNEXECUTABLE,
    PREDICTION_TIMEOUT,
    PREDICTION_UNEXECUTABLE,
    MatchOutcome,
    execution_accuracy,
    execution_match,
    execution_match_outcome,
)
from repro.eval.conformance import (
    ConformanceReport,
    DialectReport,
    Divergence,
    bundled_dataset_builders,
    run_conformance,
)
from repro.eval.testsuite import TestSuite, test_suite_accuracy
from repro.eval.ves import valid_efficiency_score
from repro.eval.harness import (
    FAILURE_CLASSES,
    GENERATION_FAILED,
    EvalResult,
    FailureRecord,
    evaluate_parser,
    pair_samples,
)
from repro.eval.reporting import format_failure_report, format_table, print_table

__all__ = [
    "ConformanceReport",
    "DialectReport",
    "Divergence",
    "EvalResult",
    "FAILURE_CLASSES",
    "FailureRecord",
    "GENERATION_FAILED",
    "GOLD_TIMEOUT",
    "GOLD_UNEXECUTABLE",
    "MatchOutcome",
    "PREDICTION_TIMEOUT",
    "PREDICTION_UNEXECUTABLE",
    "TestSuite",
    "bundled_dataset_builders",
    "evaluate_parser",
    "run_conformance",
    "execution_accuracy",
    "execution_match",
    "execution_match_outcome",
    "format_failure_report",
    "format_table",
    "pair_samples",
    "print_table",
    "results_match",
    "roc_auc",
    "test_suite_accuracy",
    "valid_efficiency_score",
]
