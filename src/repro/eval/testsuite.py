"""Test-suite accuracy (TS) via automated database augmentation.

EX can produce false positives: a wrong SQL query may coincidentally
return the right rows on one database instance.  Following Zhong et
al. [85], TS re-checks execution equivalence on several content
variants of the database; only predictions that agree with the gold
query on *every* variant pass.

Variants are generated deterministically: rows are resampled (dropped /
duplicated) and numeric cells are jittered, while text values are kept
so that value predicates still have something to match.
"""

from __future__ import annotations

import random
from typing import Any

from repro.db.database import Database
from repro.eval.execution import execution_match

Row = tuple[Any, ...]


def _perturb_rows(
    rows: list[Row],
    schema_types: list[str],
    rng: random.Random,
) -> list[Row]:
    if not rows:
        return []
    resampled: list[Row] = []
    for row in rows:
        if rng.random() < 0.2:
            continue  # drop this row in the variant
        new_row = []
        for cell, col_type in zip(row, schema_types):
            numeric = isinstance(cell, (int, float)) and not isinstance(cell, bool)
            if not numeric or col_type == "KEY":
                new_row.append(cell)
            elif col_type == "INTEGER":
                new_row.append(int(cell) + rng.randint(-2, 2))
            else:
                new_row.append(round(float(cell) * rng.uniform(0.8, 1.2), 2))
        resampled.append(tuple(new_row))
    if not resampled:
        resampled = [rows[0]]
    return resampled


class TestSuite:
    """A set of database variants used for TS evaluation."""

    __test__ = False  # not a pytest test class

    def __init__(self, database: Database, n_variants: int = 4, seed: int = 0):
        if n_variants < 1:
            raise ValueError(f"need at least one variant, got {n_variants}")
        self.original = database
        self.variants: list[Database] = []
        snapshot = database.all_rows()
        # Key columns (PKs and FK endpoints) must keep their values or
        # joins in the evaluated queries would silently break.
        key_columns: set[tuple[str, str]] = set()
        for fkey in database.schema.foreign_keys:
            key_columns.add((fkey.src_table.lower(), fkey.src_column.lower()))
            key_columns.add((fkey.dst_table.lower(), fkey.dst_column.lower()))
        for index in range(n_variants):
            rng = random.Random(f"{seed}:{index}")
            rows: dict[str, list[Row]] = {}
            for table in database.schema.tables:
                types = [
                    "KEY"
                    if column.is_primary
                    or (table.name.lower(), column.name.lower()) in key_columns
                    else column.type.upper()
                    for column in table.columns
                ]
                rows[table.name] = _perturb_rows(snapshot[table.name], types, rng)
            self.variants.append(database.clone_with_rows(rows))

    def databases(self) -> list[Database]:
        """Original plus all variants."""
        return [self.original, *self.variants]

    def check(self, predicted_sql: str, gold_sql: str) -> bool:
        """TS check: prediction must match gold on every database."""
        return all(
            execution_match(db, predicted_sql, gold_sql) for db in self.databases()
        )

    def close(self) -> None:
        for variant in self.variants:
            variant.close()


def test_suite_accuracy(
    suites: list[TestSuite], predictions: list[str], golds: list[str]
) -> float:
    """Mean TS over aligned (suite, prediction, gold) triples."""
    if not suites:
        return 0.0
    if not (len(suites) == len(predictions) == len(golds)):
        raise ValueError("suites, predictions and golds must align")
    hits = sum(
        1 for suite, pred, gold in zip(suites, predictions, golds)
        if suite.check(pred, gold)
    )
    return hits / len(suites)
