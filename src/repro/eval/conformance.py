"""Cross-dialect conformance suite.

Every bundled gold query is transpiled into each registered backend's
dialect, executed there, and result-compared against the reference
SQLite execution.  The suite is the empirical backstop behind the
multi-backend refactor: the dialect emitters and the columnar executor
are only trusted because every gold set agrees with SQLite row-for-row
(ordered when the gold query orders, as a multiset otherwise — the
same comparison EX uses).

Outcome classes per (example, backend):

- ``matched``   — backend rows equal the SQLite rows.
- ``divergent`` — both executed, rows differ.  Always a bug in an
  emitter or an executor; the report carries the divergent SQL.
- ``error``     — the backend refused SQL that SQLite executed.
- ``skipped``   — the gold query is outside the transpilable subset or
  does not execute on the *reference* engine; nothing to compare.

``run_conformance`` drives the suite programmatically;
``repro conformance`` is the CLI entry point (exit 0 = all matched,
1 = divergences or errors, 2 = internal failure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.datasets import (
    DR_SPIDER_PERTURBATIONS,
    build_aminer_simplified,
    build_bank_financials,
    build_bird,
    build_dr_spider,
    build_spider,
    build_spider_variant,
)
from repro.datasets.base import Text2SQLDataset
from repro.db.backends import available_backends, backend_dialect, create_backend
from repro.errors import ExecutionError, SQLSyntaxError
from repro.eval.execution import _ORDER_BY_RE
from repro.eval.metrics import results_match
from repro.reliability.deadline import Deadline
from repro.sqlgen.dialects import transpile

#: Reference backend every other backend is compared against.
REFERENCE_BACKEND = "sqlite"


def bundled_dataset_builders() -> dict[str, Callable[[], Text2SQLDataset]]:
    """Every bundled gold set, keyed by name, in reporting order.

    Covers the two benchmarks, the two domain corpora, the three Spider
    variants, and all seventeen Dr.Spider perturbations.
    """
    builders: dict[str, Callable[[], Text2SQLDataset]] = {
        "spider": build_spider,
        "bird": build_bird,
        "bank-financials": build_bank_financials,
        "aminer-simplified": build_aminer_simplified,
    }
    for variant in ("spider-syn", "spider-realistic", "spider-dk"):
        builders[variant] = (
            lambda v=variant: build_spider_variant(v)
        )
    for names in DR_SPIDER_PERTURBATIONS.values():
        for perturbation in names:
            builders[f"dr-spider-{perturbation}"] = (
                lambda p=perturbation: build_dr_spider(p)
            )
    return builders


@dataclass(frozen=True)
class Divergence:
    """One gold query a backend disagreed with SQLite on."""

    dataset: str
    db_id: str
    question: str
    gold_sql: str
    dialect_sql: str
    kind: str  # "divergent" | "error"
    detail: str = ""


@dataclass
class DialectReport:
    """Conformance tallies of one backend against the reference."""

    backend: str
    dialect: str
    executed: int = 0
    matched: int = 0
    divergent: int = 0
    errors: int = 0
    skipped: int = 0
    per_dataset: dict[str, dict[str, int]] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every executed example matched the reference."""
        return self.divergent == 0 and self.errors == 0

    def record(self, dataset: str, outcome: str) -> None:
        tally = self.per_dataset.setdefault(
            dataset, {"matched": 0, "divergent": 0, "error": 0, "skipped": 0}
        )
        tally[outcome] += 1
        if outcome == "skipped":
            self.skipped += 1
            return
        self.executed += 1
        if outcome == "matched":
            self.matched += 1
        elif outcome == "divergent":
            self.divergent += 1
        else:
            self.errors += 1

    def as_row(self) -> dict[str, object]:
        return {
            "backend": self.backend,
            "dialect": self.dialect,
            "executed": self.executed,
            "matched": self.matched,
            "divergent": self.divergent,
            "errors": self.errors,
            "skipped": self.skipped,
            "ok": self.ok,
        }


@dataclass
class ConformanceReport:
    """Suite-level result: one :class:`DialectReport` per backend."""

    reports: dict[str, DialectReport] = field(default_factory=dict)
    datasets: tuple[str, ...] = ()
    total_examples: int = 0

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports.values())

    def render(self, max_divergences: int = 10) -> str:
        """Human-readable per-dialect divergence report."""
        lines = [
            f"conformance over {self.total_examples} gold examples "
            f"across {len(self.datasets)} sets"
        ]
        for report in self.reports.values():
            lines.append(
                f"  {report.backend} ({report.dialect}): "
                f"{report.matched}/{report.executed} matched, "
                f"{report.divergent} divergent, {report.errors} errors, "
                f"{report.skipped} skipped"
                + ("" if report.ok else "  [FAIL]")
            )
            for entry in report.divergences[:max_divergences]:
                lines.append(
                    f"    {entry.kind} [{entry.dataset}/{entry.db_id}] "
                    f"{entry.gold_sql!r} -> {entry.dialect_sql!r}"
                    + (f": {entry.detail}" if entry.detail else "")
                )
            hidden = len(report.divergences) - max_divergences
            if hidden > 0:
                lines.append(f"    ... and {hidden} more")
        return "\n".join(lines)


def _gold_examples(dataset: Text2SQLDataset) -> Iterable:
    for split in (dataset.train, dataset.dev):
        for example in split:
            yield example


def run_conformance(
    datasets: Sequence[Text2SQLDataset] | None = None,
    backends: Sequence[str] | None = None,
    deadline_s: float | None = None,
    max_divergences_kept: int = 100,
) -> ConformanceReport:
    """Run the cross-dialect conformance suite.

    ``datasets`` defaults to every bundled gold set
    (:func:`bundled_dataset_builders`); ``backends`` to every registered
    backend except the reference.  ``deadline_s``, when set, bounds each
    backend-side execution.  At most ``max_divergences_kept``
    divergence records are retained per backend (tallies always count
    everything).
    """
    if datasets is None:
        datasets = [build() for build in bundled_dataset_builders().values()]
    if backends is None:
        backends = tuple(
            name for name in available_backends() if name != REFERENCE_BACKEND
        )
    report = ConformanceReport(
        datasets=tuple(dataset.name for dataset in datasets)
    )
    for name in backends:
        # Instantiate one throwaway backend to learn its dialect; the
        # per-database instances are created inside the dataset loop.
        report.reports[name] = DialectReport(backend=name, dialect="")

    for dataset in datasets:
        adapted: dict[tuple[str, str], object] = {}
        for example in _gold_examples(dataset):
            report.total_examples += 1
            database = dataset.database_of(example)
            try:
                reference_rows = database.execute(example.sql)
            except ExecutionError:
                for name in backends:
                    report.reports[name].record(dataset.name, "skipped")
                continue
            ordered = bool(_ORDER_BY_RE.search(example.sql))
            for name in backends:
                dialect_report = report.reports[name]
                backend = adapted.get((name, example.db_id))
                if backend is None:
                    backend = adapted[(name, example.db_id)] = create_backend(
                        name, database
                    )
                if not dialect_report.dialect:
                    dialect_report.dialect = backend_dialect(backend)
                try:
                    dialect_sql = transpile(
                        example.sql, backend_dialect(backend)
                    )
                except SQLSyntaxError:
                    dialect_report.record(dataset.name, "skipped")
                    continue
                deadline = (
                    Deadline.after(deadline_s) if deadline_s else None
                )
                try:
                    rows = backend.execute(dialect_sql, deadline=deadline)
                except ExecutionError as exc:
                    dialect_report.record(dataset.name, "error")
                    if len(dialect_report.divergences) < max_divergences_kept:
                        dialect_report.divergences.append(
                            Divergence(
                                dataset=dataset.name,
                                db_id=example.db_id,
                                question=example.question,
                                gold_sql=example.sql,
                                dialect_sql=dialect_sql,
                                kind="error",
                                detail=str(exc),
                            )
                        )
                    continue
                if results_match(rows, reference_rows, ordered=ordered):
                    dialect_report.record(dataset.name, "matched")
                else:
                    dialect_report.record(dataset.name, "divergent")
                    if len(dialect_report.divergences) < max_divergences_kept:
                        dialect_report.divergences.append(
                            Divergence(
                                dataset=dataset.name,
                                db_id=example.db_id,
                                question=example.question,
                                gold_sql=example.sql,
                                dialect_sql=dialect_sql,
                                kind="divergent",
                                detail=(
                                    f"{len(rows)} rows vs "
                                    f"{len(reference_rows)} reference rows"
                                ),
                            )
                        )
    return report
