"""Valid efficiency score (VES), BIRD's execution-efficiency metric.

For a correctly predicted query the score is the ratio of the gold
query's execution time to the predicted query's execution time (so a
prediction faster than gold scores above 1); incorrect predictions
score 0.  The paper notes VES is noisy, so the number of timing runs is
a parameter (BIRD uses 100; we default lower for CPU-bound runs).
"""

from __future__ import annotations

from repro.db.database import Database
from repro.errors import ExecutionError
from repro.eval.execution import execution_match
from repro.reliability.clock import SYSTEM_CLOCK, Clock


def _median_runtime(
    database: Database, sql: str, runs: int, clock: Clock
) -> float:
    samples: list[float] = []
    for _ in range(runs):
        start = clock.now()
        database.execute(sql)
        samples.append(clock.now() - start)
    samples.sort()
    return samples[len(samples) // 2]


def valid_efficiency_score(
    database: Database,
    predicted_sql: str,
    gold_sql: str,
    runs: int = 5,
    clock: Clock | None = None,
) -> float:
    """VES of one prediction (0.0 when the prediction is wrong).

    Timing reads the injectable ``clock`` (the real monotonic clock by
    default), so tests can measure with a fake clock and no real time.
    """
    if runs < 1:
        raise ValueError(f"runs must be at least 1, got {runs}")
    clock = clock or SYSTEM_CLOCK
    if not execution_match(database, predicted_sql, gold_sql):
        return 0.0
    try:
        predicted_time = _median_runtime(database, predicted_sql, runs, clock)
    except ExecutionError:
        return 0.0
    gold_time = _median_runtime(database, gold_sql, runs, clock)
    if predicted_time <= 0.0:
        return 1.0
    return gold_time / predicted_time
