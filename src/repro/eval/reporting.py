"""Plain-text tables for benchmark output (paper-style rows)."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(rows: Sequence[dict[str, Any]], title: str = "") -> str:
    """Render rows of dicts as an aligned text table.

    Column order follows the first row; missing cells render as ``-``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [
        [_cell(row.get(column, "-")) for column in columns] for row in rows
    ]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for line in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def print_table(rows: Sequence[dict[str, Any]], title: str = "") -> None:
    print()
    print(format_table(rows, title=title))
    print()


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
