"""Plain-text tables for benchmark output (paper-style rows)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.eval.harness import EvalResult


def format_table(rows: Sequence[dict[str, Any]], title: str = "") -> str:
    """Render rows of dicts as an aligned text table.

    Column order follows the first row; missing cells render as ``-``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [
        [_cell(row.get(column, "-")) for column in columns] for row in rows
    ]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for line in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def print_table(rows: Sequence[dict[str, Any]], title: str = "") -> None:
    print()
    print(format_table(rows, title=title))
    print()


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_stage_report(result: "EvalResult") -> str:
    """Aggregated per-stage engine timings of a run.

    Empty string when the parser emitted no traces, so callers can
    unconditionally ``print`` the report.
    """
    if not result.stage_timings:
        return ""
    return format_table(
        result.stage_rows(), title=f"per-stage timing for {result.name}"
    )


def format_serving_report(metrics, title: str = "serving metrics") -> str:
    """Render a :class:`repro.serving.metrics.ServerMetrics` snapshot.

    Deterministic for deterministic inputs (stable row order, the same
    ``%.4g`` float formatting as every other table), which is what
    makes ``repro loadgen --seed`` byte-stable.
    """
    lines = [format_table(metrics.as_rows(), title=title)]
    if metrics.stage_wall_s:
        stage_rows = [
            {"stage": stage, "wall s": round(wall_s, 6)}
            for stage, wall_s in metrics.stage_wall_s.items()
        ]
        lines.append("")
        lines.append(format_table(stage_rows, title="stage wall time (sum)"))
    return "\n".join(lines)


def format_failure_report(result: "EvalResult", max_quarantined: int = 10) -> str:
    """Per-class failure counts plus the quarantine list of a run.

    Returns an empty string for a clean run, so callers can
    unconditionally ``print`` the report.
    """
    if not result.failures and not result.quarantined:
        return ""
    lines = [f"failures for {result.name} ({result.n_failures} total):"]
    for failure_class, count in result.failures.items():
        lines.append(f"  {failure_class:<24} {count}")
    if result.quarantined:
        lines.append(
            f"quarantined examples ({len(result.quarantined)} "
            f"skipped or degraded):"
        )
        for record in result.quarantined[:max_quarantined]:
            question = record.question
            if len(question) > 48:
                question = question[:45] + "..."
            lines.append(
                f"  [{record.index}] {record.db_id} {record.failure}: "
                f"{question}"
            )
            if record.detail:
                detail = record.detail
                if len(detail) > 72:
                    detail = detail[:69] + "..."
                lines.append(f"      {detail}")
        hidden = len(result.quarantined) - max_quarantined
        if hidden > 0:
            lines.append(f"  ... {hidden} more")
    return "\n".join(lines)
