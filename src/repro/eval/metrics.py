"""Metric primitives: result-set comparison and ROC AUC."""

from __future__ import annotations

from collections import Counter
from typing import Any, Sequence

import numpy as np

Row = tuple[Any, ...]


def _canonical_cell(cell: Any) -> Any:
    """Normalize a cell so 1 == 1.0 and floats compare with tolerance."""
    if isinstance(cell, bool):
        return int(cell)
    if isinstance(cell, float):
        if cell.is_integer():
            return int(cell)
        return round(cell, 6)
    return cell


def _canonical_row(row: Row) -> Row:
    return tuple(_canonical_cell(cell) for cell in row)


def results_match(
    predicted: Sequence[Row], gold: Sequence[Row], ordered: bool = False
) -> bool:
    """Compare two result sets.

    When ``ordered`` is False (the common case — no ORDER BY in the gold
    query) rows are compared as multisets; otherwise order matters.
    """
    pred_rows = [_canonical_row(row) for row in predicted]
    gold_rows = [_canonical_row(row) for row in gold]
    if ordered:
        return pred_rows == gold_rows
    return Counter(pred_rows) == Counter(gold_rows)


def roc_auc(labels: Sequence[int], scores: Sequence[float]) -> float:
    """Area under the ROC curve via the rank statistic.

    Ties in scores contribute half.  Returns 0.5 when only one class is
    present (no ranking information).
    """
    labels_arr = np.asarray(labels, dtype=np.float64)
    scores_arr = np.asarray(scores, dtype=np.float64)
    if labels_arr.shape != scores_arr.shape:
        raise ValueError("labels and scores must have the same length")
    positives = int(np.sum(labels_arr == 1))
    negatives = int(np.sum(labels_arr == 0))
    if positives == 0 or negatives == 0:
        return 0.5
    order = np.argsort(scores_arr, kind="mergesort")
    ranks = np.empty(len(scores_arr), dtype=np.float64)
    sorted_scores = scores_arr[order]
    i = 0
    rank_position = 1.0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        mean_rank = (rank_position + rank_position + (j - i)) / 2.0
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        rank_position += j - i + 1
        i = j + 1
    positive_rank_sum = float(np.sum(ranks[labels_arr == 1]))
    return (positive_rank_sum - positives * (positives + 1) / 2.0) / (
        positives * negatives
    )
