"""Per-database resource cache shared across questions in batch mode.

Prompt builders, semantic analyzers (with their schema catalogs), cost
estimators, value-retrieval results and linking scores are all
derivable from the database alone (or from ``(database, question)``)
and are expensive to rebuild per question.  The :class:`StageCache`
gives them an explicit, clearable lifecycle: stages resolve resources
through :meth:`get`, hit/miss counters feed the per-stage trace, and
:meth:`clear` drops everything (tests, database swaps, memory bounds).

Long serving runs touch many ``(database, question)`` keys, so the
cache can be bounded: with a ``capacity`` it evicts in LRU order and
counts evictions, keeping one engine's working set from growing
without limit.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable


class StageCache:
    """Keyed factory cache with hit/miss accounting and optional LRU bounds.

    Keys are ``(kind, *key_parts)`` tuples — e.g. ``("builder", db_key)``
    — so one cache instance can hold every resource kind the stages
    need while :meth:`clear_kind` can still evict selectively.

    ``capacity`` bounds the number of entries; when full, the least
    recently *used* entry (reads refresh recency) is evicted and the
    ``evictions`` counter incremented.  ``None`` means unbounded, the
    pre-serving behaviour.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._store: dict[tuple, Any] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, kind: str, key: Hashable, factory: Callable[[], Any]) -> Any:
        """The cached value for ``(kind, key)``, building it on first use."""
        full_key = (kind, key)
        if full_key in self._store:
            self.hits += 1
            # LRU bookkeeping: re-insertion moves the key to the end.
            value = self._store[full_key] = self._store.pop(full_key)
            return value
        self.misses += 1
        value = self._store[full_key] = factory()
        if self.capacity is not None and len(self._store) > self.capacity:
            self._store.pop(next(iter(self._store)))
            self.evictions += 1
        return value

    def clear(self) -> None:
        """Drop every cached resource (counters included)."""
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def absorb(self, other: "StageCache") -> int:
        """Copy ``other``'s entries into this cache; returns how many.

        Existing keys keep their local value (this cache's entries are
        fresher by definition — it is the one serving traffic), and
        absorbed entries enter at the *LRU* end for the same reason:
        under later capacity pressure the donor's cold entries evict
        before anything this cache was actively using.  Absorbing
        never evicts local entries — when capacity is short, only the
        donor's most recently used entries are taken and the rest are
        dropped.  Used by the sharding layer's warm handoff: when a
        shard moves between in-process workers, the new owner absorbs
        the old owner's warm per-database resources instead of
        rebuilding them.
        """
        fresh = {
            full_key: value
            for full_key, value in other._store.items()
            if full_key not in self._store
        }
        if self.capacity is not None:
            room = self.capacity - len(self._store)
            if room <= 0:
                return 0
            if len(fresh) > room:
                fresh = dict(list(fresh.items())[-room:])
        if fresh:
            merged = dict(fresh)
            merged.update(self._store)
            self._store = merged
        return len(fresh)

    def clear_kind(self, kind: str) -> int:
        """Evict all entries of one resource kind; returns how many."""
        doomed = [key for key in self._store if key[0] == kind]
        for key in doomed:
            del self._store[key]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, full_key: tuple) -> bool:
        return full_key in self._store

    @property
    def stats(self) -> dict[str, int | None]:
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "capacity": self.capacity,
        }
