"""The nine pipeline stages of the staged inference engine.

INTERNAL MODULE (ARCH004): only :mod:`repro.engine` may import it.
Everything else consumes stages through
:func:`repro.engine.build_default_engine`.

Execution order and contracts over the shared
:class:`~repro.engine.context.InferenceContext`.  Each stage class
declares ``reads`` / ``writes`` tuples; the STAGE001 rule in
``repro.staticcheck`` verifies them against the actual ``ctx``
attribute accesses, and the table below is rendered from the
declarations by :func:`contract_table` (a tier-1 test pins the two
together — edit the tuples, then regenerate this block)::

    value_retrieve  reads:  question, external_knowledge, database
                    writes: linking_question, builder, matched
    schema_link     reads:  question, linking_question, matched, builder, database
                    writes: filtered, schema, scores
    prompt_build    reads:  question, builder, filtered, matched, schema, scores
                    writes: prompt, inst_ctx
    candidate_gen   reads:  question, demonstrations, effort, inst_ctx, database
                    writes: templates, raw_candidates
    rank            reads:  question, effort, raw_candidates, matched, scores, degrade, database
                    writes: candidates, beam
    lint_gate       reads:  beam, database
                    writes: analyzer, ordered, lint, demoted
    equiv_dedup     reads:  ordered, analyzer, database
                    writes: analyzer, estimator, groups, representatives, beam_deduped
    execute_beam    reads:  groups, representatives, ordered, beam_deduped, database
                    writes: chosen, tier, executions_used, executed, dedup_avoided
    degrade         reads:  chosen, tier, degrade, inst_ctx, beam, demoted, ordered, executed, dedup_avoided, database
                    writes: chosen, tier, executions_avoided

``database`` appears in most read sets because the per-database memo
helpers key their caches on ``id(ctx.database)``; ``ctx.cache`` and
``ctx.trace`` are engine plumbing and ambient (never declared).
Reading your own write (``degrade`` re-reading ``chosen``) needs no
read declaration unless, as for ``degrade``, the *incoming* value from
an earlier stage is itself an input.

``value_retrieve`` runs before ``schema_link`` because the §6.1 schema
filter *consumes* the §6.2 matched values (Algorithm 1 does the same);
the prompt text is serialized last because it depends on the filtered
schema but nothing downstream depends on the text itself.

The stage bodies are line-for-line ports of the pre-refactor
``CodeSParser.generate`` monolith; the golden parity suite
(``pytest -m engine``) pins them to its captured outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.analyzer import SemanticAnalyzer
from repro.analysis.catalog import SchemaCatalog
from repro.analysis.cost import CostEstimator
from repro.analysis.diagnostics import has_errors
from repro.analysis.equivalence import canonical_key_sql
from repro.core.ranking import (
    SENTINEL_SQL,
    blend_scores,
    count_mismatch,
    lint_gated_order,
    projection_filter_overlap,
    value_bonus,
)
from repro.core.slotfill import InstantiationContext, instantiate_template
from repro.core.structure import structure_prior
from repro.db.backends.base import backend_dialect
from repro.engine.context import InferenceContext
from repro.errors import GenerationError
from repro.linking.features import (
    MemoizedSchemaFeatureExtractor,
    SchemaFeatureExtractor,
)
from repro.linking.lexical import LexicalSchemaScorer
from repro.promptgen.builder import (
    DatabasePrompt,
    PromptBuilder,
    apply_schema_ablations,
)
from repro.sqlgen.dialects import emitter_for
from repro.text.embedder import MemoizedEmbedder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.parser import CodeSParser
    from repro.linking.classifier import SchemaItemClassifier


@dataclass(frozen=True)
class _LinkAssets:
    """Per-database schema-linking assets sharing one embedding memo.

    Profiling shows hashed-n-gram embedding dominates request time, and
    linking embeds the same texts over and over: the question once per
    schema item per scoring pass, every item's name/comment once per
    question.  Bundling the extractor, the lexical scorer, and a
    classifier scoring view around one :class:`MemoizedEmbedder` —
    resolved through the :class:`StageCache`, so scoped per database —
    makes the repeats free while producing bit-identical scores.
    """

    extractor: SchemaFeatureExtractor
    lexical: LexicalSchemaScorer
    classifier: "SchemaItemClassifier | None"


class _SqlMemos:
    """Per-database memos for pure per-SQL computations.

    Ranked candidates repeat heavily across questions on one schema
    (common templates instantiate to the same SQL), and the LM prior,
    canonical equivalence key, lint diagnostics, and static cost of a
    given SQL string never change for a fixed database.  Memoizing them
    per database turns the repeats into dict hits with bit-identical
    values.  Each memo is LRU-bounded by ``capacity``.
    """

    STORES = ("lm", "key", "lint", "cost")

    def __init__(self, capacity: int | None = 4096):
        self.capacity = capacity
        self._stores: dict[str, dict] = {name: {} for name in self.STORES}
        self.hits = 0
        self.misses = 0

    def get(self, store_name: str, sql: str, factory):
        store = self._stores[store_name]
        if sql in store:
            self.hits += 1
            # LRU bookkeeping: re-insertion moves the key to the end.
            value = store[sql] = store.pop(sql)
            return value
        self.misses += 1
        value = store[sql] = factory()
        if self.capacity is not None and len(store) > self.capacity:
            store.pop(next(iter(store)))
        return value


def _sql_memos(ctx: InferenceContext, parser: "CodeSParser") -> _SqlMemos:
    """The per-database SQL memos, resolved through the cache.

    Keyed by the parser's *router*, not its bare LM: two parsers
    sharing an LM but routing through different provider topologies
    may legitimately observe different scores (a failover can answer
    from a different provider), so their memos must not alias.  The
    backend's dialect is part of the key because the lint, canonical
    key, and cost memos all parse the SQL *in that dialect*: the same
    text can mean different queries under different dialects.
    """
    return ctx.cache.get(
        "sql_memos",
        (id(ctx.database), id(parser.router), backend_dialect(ctx.database)),
        _SqlMemos,
    )


def _link_assets(ctx: InferenceContext, parser: "CodeSParser") -> _LinkAssets:
    """The per-database linking assets, resolved through the cache."""

    def build() -> _LinkAssets:
        extractor = MemoizedSchemaFeatureExtractor(
            embedder=MemoizedEmbedder(parser.embedder),
            use_comments=parser.options.include_comments,
        )
        classifier = (
            parser.classifier.with_extractor(extractor)
            if parser.classifier is not None
            else None
        )
        return _LinkAssets(
            extractor=extractor,
            lexical=LexicalSchemaScorer(extractor),
            classifier=classifier,
        )

    return ctx.cache.get(
        "link_assets",
        (
            id(ctx.database),
            id(parser.classifier),
            id(parser.options),
            id(parser.embedder),
        ),
        build,
    )


class _ParserStage:
    """Base: a stage bound to the parser whose model assets it uses."""

    name = "abstract"

    def __init__(self, parser: "CodeSParser"):
        self.parser = parser

    def run(self, ctx: InferenceContext) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class ValueRetrieveStage(_ParserStage):
    """Resolve the per-database prompt builder and retrieve values (§6.2).

    External knowledge clarifies *schema linking* ("'title' refers to
    book.t2"); it is not part of the user's ask, so value retrieval
    stays on the bare question while ``linking_question`` carries the
    augmented form for the filter and scorers downstream.
    """

    name = "value_retrieve"
    reads = ("question", "external_knowledge", "database")
    writes = ("linking_question", "builder", "matched")

    def run(self, ctx: InferenceContext) -> None:
        parser = self.parser
        ctx.linking_question = ctx.question
        if ctx.external_knowledge:
            ctx.linking_question = f"{ctx.question} ({ctx.external_knowledge})"
        assets = _link_assets(ctx, parser)
        ctx.builder = ctx.cache.get(
            "builder",
            (id(ctx.database), id(parser.options)),
            lambda: PromptBuilder(
                ctx.database, classifier=assets.classifier, options=parser.options
            ),
        )
        matched = ctx.cache.get(
            "values",
            (id(ctx.builder), ctx.question),
            lambda: ctx.builder.retrieve_values(ctx.question),
        )
        ctx.matched = list(matched)


class SchemaLinkStage(_ParserStage):
    """Filter the schema (§6.1) and score its items for slot filling.

    Surface evidence (names, comments, matched values) backs up the
    trained classifier: on schemas unlike the training distribution
    (renamed columns, new domains) the classifier is blind where the
    lexical signal still reads the comments.
    """

    name = "schema_link"
    reads = ("question", "linking_question", "matched", "builder", "database")
    writes = ("filtered", "schema", "scores")

    def run(self, ctx: InferenceContext) -> None:
        parser = self.parser
        linked = ctx.cache.get(
            "link",
            (id(ctx.builder), id(parser.classifier), ctx.question, ctx.linking_question),
            lambda: self._link(ctx),
        )
        ctx.filtered, ctx.schema, ctx.scores = linked

    def _link(self, ctx: InferenceContext):
        parser = self.parser
        assets = _link_assets(ctx, parser)
        filtered = ctx.builder.filter_schema(ctx.linking_question, ctx.matched)
        effective = apply_schema_ablations(filtered.schema, parser.options)
        lexical = assets.lexical.score_schema(
            ctx.linking_question, effective, ctx.matched
        )
        if parser.classifier is not None and parser.classifier.trained:
            learned = assets.classifier.score_schema(
                ctx.linking_question, effective, ctx.matched
            )
            scores = blend_scores(learned, lexical)
        else:
            scores = lexical
        return filtered, effective, scores


class PromptBuildStage(_ParserStage):
    """Serialize the database prompt (§6.3) and seed slot filling."""

    name = "prompt_build"
    reads = ("question", "builder", "filtered", "matched", "schema", "scores")
    writes = ("prompt", "inst_ctx")

    def run(self, ctx: InferenceContext) -> None:
        parser = self.parser
        text = ctx.builder.serialize_prompt(ctx.filtered.schema, ctx.matched)
        ctx.prompt = DatabasePrompt(
            text=text,
            schema=ctx.schema,
            matched_values=tuple(ctx.matched),
            kept_tables=ctx.filtered.kept_tables,
            options=parser.options,
        )
        representative = None
        if parser.options.include_representative_values:
            representative = ctx.builder.representative_values
        ctx.inst_ctx = InstantiationContext(
            question=ctx.question,
            schema=ctx.schema,
            scores=ctx.scores,
            matched_values=ctx.matched,
            use_types=parser.options.include_column_types,
            slot_depth=parser.config.slot_depth,
            representative=representative,
        )


class CandidateGenStage(_ParserStage):
    """Retrieve templates (§8.2) and instantiate them on the schema.

    With demonstrations the engine runs in few-shot ICL mode: templates
    come from the demonstrations, discounted when their skeleton lies
    outside the model's pre-training bank (without fine-tuning a model
    can only reliably *produce* structures it absorbed — this is where
    incremental pre-training pays off at inference time).  The skeleton
    bank backs up sparse or weakly matching templates with the model's
    whole structural repertoire, ranked by question-cue fit.
    """

    name = "candidate_gen"
    reads = ("question", "demonstrations", "effort", "inst_ctx", "database")
    writes = ("templates", "raw_candidates")

    def run(self, ctx: InferenceContext) -> None:
        if ctx.effort != "full":
            # Load shedding: the ladder asked for a cheaper tier, so
            # the beam machinery is skipped entirely and the degrade
            # stage answers from the skeleton bank (or the sentinel).
            return
        parser = self.parser
        in_context_mode = ctx.demonstrations is not None
        if in_context_mode:
            entries = parser._entries_from(ctx.demonstrations)
        else:
            entries = parser._index
        top_n = 2 + parser.config.slot_depth
        templates = parser._retrieve_templates(ctx.question, entries, top_n)
        if in_context_mode:
            templates = [
                (template, sim if parser._knows_skeleton(template) else 0.35 * sim)
                for template, sim in templates
            ]
        best_sim = max((sim for _, sim in templates), default=0.0)
        if templates and best_sim >= 0.45:
            bank_quota = max(1, parser.config.slot_depth)
        else:
            bank_quota = max(12, 6 * parser.config.slot_depth)
        for template in parser._skeleton_bank[:bank_quota]:
            prior = structure_prior(ctx.question, template)
            templates.append((template, 0.35 * prior))
        ctx.templates = templates

        # Candidates are emitted in the backend's own dialect, so every
        # downstream consumer (lint, dedup, execution) sees SQL the
        # backend actually accepts.  On the default SQLite backend this
        # is byte-identical to the historical serializer.
        emitter = emitter_for(backend_dialect(ctx.database))
        raw: list[tuple[str, object, float, int]] = []
        seen: set[str] = set()
        for template, retrieval_sim in templates:
            for candidate in instantiate_template(template, ctx.inst_ctx):
                filled = candidate.query
                sql = emitter.serialize(filled)
                key = sql.lower()
                if key in seen:
                    continue
                seen.add(key)
                raw.append(
                    (sql, filled, retrieval_sim, candidate.ungrounded_literals)
                )
        ctx.raw_candidates = raw


class RankStage(_ParserStage):
    """Score candidates (retrieval sim + linking + LM prior + heuristics)
    and cut the beam."""

    name = "rank"
    reads = ("question", "effort", "raw_candidates", "matched", "scores", "degrade", "database")
    writes = ("candidates", "beam")

    def run(self, ctx: InferenceContext) -> None:
        if ctx.effort != "full":
            return
        parser = self.parser
        scores = ctx.scores
        memos = _sql_memos(ctx, parser)
        candidates: list[tuple[str, float]] = []
        for sql, filled, retrieval_sim, ungrounded in ctx.raw_candidates:
            used = filled.columns_used()
            link_quality = (
                sum(scores.columns.get(col, 0.0) for col in used) / len(used)
                if used
                else 0.0
            )
            tables = filled.tables_used()
            table_quality = (
                sum(scores.tables.get(name, 0.0) for name in tables) / len(tables)
                if tables
                else 0.0
            )
            score = (
                2.0 * retrieval_sim
                + 0.5 * link_quality
                + 0.4 * table_quality
                # The LM prior flows through the provider router — the
                # reliability boundary (failover, hedging, breakers)
                # between the engine and whatever backs the model.
                + 0.08 * memos.get("lm", sql, lambda: parser.router.score(sql))
                + 0.25 * value_bonus(filled, ctx.matched)
                - 0.1 * projection_filter_overlap(filled)
                - 0.5 * count_mismatch(filled, ctx.question)
                - 0.3 * ungrounded
            )
            candidates.append((sql, score))
        if not candidates and not ctx.degrade:
            raise GenerationError(
                f"no SQL candidate could be built for question {ctx.question!r}"
            )
        candidates.sort(key=lambda pair: -pair[1])
        ctx.candidates = candidates
        ctx.beam = [sql for sql, _ in candidates[: parser.config.beam_size]]


class LintGateStage(_ParserStage):
    """Sink statically dirty candidates below clean ones (PR 2).

    The analyzer's catalog deliberately uses the *unfiltered* schema:
    the prompt's filtered view drops low-scoring columns, and a beam
    candidate referencing a real-but-unprompted column is valid SQL,
    not a hallucination.
    """

    name = "lint_gate"
    reads = ("beam", "database")
    writes = ("analyzer", "ordered", "lint", "demoted")

    def run(self, ctx: InferenceContext) -> None:
        parser = self.parser
        ctx.lint = {}
        if parser.lint_gate and ctx.beam:
            ctx.analyzer = _analyzer(ctx)
            memos = _sql_memos(ctx, parser)
            analyzer = ctx.analyzer
            ctx.ordered, ctx.lint = lint_gated_order(
                ctx.beam,
                analyzer,
                analyze=lambda sql: memos.get(
                    "lint", sql, lambda: tuple(analyzer.analyze_sql(sql))
                ),
            )
        else:
            ctx.ordered = list(ctx.beam)
        ctx.demoted = {
            sql for sql, diags in ctx.lint.items() if has_errors(diags)
        }


class EquivDedupStage(_ParserStage):
    """Collapse canonically-equivalent candidates into one execution (PR 3).

    Grouping runs on the linted order, so classes inherit the gate's
    clean-first rank; each class executes only its statically cheapest
    member.  Sound because equivalent queries share executability and
    results.
    """

    name = "equiv_dedup"
    reads = ("ordered", "analyzer", "database")
    writes = ("analyzer", "estimator", "groups", "representatives", "beam_deduped")

    def run(self, ctx: InferenceContext) -> None:
        parser = self.parser
        if parser.equivalence_dedup and ctx.ordered:
            ctx.analyzer = _analyzer(ctx)
            dialect = backend_dialect(ctx.database)
            ctx.estimator = ctx.cache.get(
                "estimator",
                id(ctx.database),
                lambda: CostEstimator(ctx.analyzer.catalog, dialect=dialect),
            )
            memos = _sql_memos(ctx, parser)
            estimator = ctx.estimator
            groups: list[list[str]] = []
            group_of: dict[str, int] = {}
            for sql in ctx.ordered:
                group_key = memos.get(
                    "key", sql, lambda: canonical_key_sql(sql, dialect)
                )
                if group_key in group_of:
                    groups[group_of[group_key]].append(sql)
                else:
                    group_of[group_key] = len(groups)
                    groups.append([sql])
            ctx.groups = groups
            ctx.beam_deduped = len(ctx.ordered) - len(groups)
            ctx.representatives = [
                min(
                    group,
                    key=lambda sql: memos.get(
                        "cost", sql, lambda: estimator.estimate_sql(sql)
                    ),
                )
                for group in groups
            ]
        else:
            ctx.groups = [[sql] for sql in ctx.ordered]
            ctx.beam_deduped = 0
            ctx.representatives = [group[0] for group in ctx.groups]


class ExecuteBeamStage(_ParserStage):
    """Execution-guided selection (§9.1.4): first class that executes wins."""

    name = "execute_beam"
    reads = ("groups", "representatives", "ordered", "beam_deduped", "database")
    writes = ("chosen", "tier", "executions_used", "executed", "dedup_avoided")

    def run(self, ctx: InferenceContext) -> None:
        ctx.chosen = None
        ctx.tier = "beam"
        ctx.executions_used = 0
        ctx.executed = set()
        # Full fall-through skips every duplicate; a winner recomputes
        # the saving from its class's first-ranked member below.
        ctx.dedup_avoided = ctx.beam_deduped
        for group, representative in zip(ctx.groups, ctx.representatives):
            ctx.executions_used += 1
            ctx.executed.add(representative)
            if ctx.database.is_executable(representative):
                ctx.chosen = representative
                # Without dedup the loop would have stopped at this
                # class's first-ranked member; everything above it in
                # the linted order minus the classes actually executed
                # was saved by sharing executions.
                ctx.dedup_avoided = ctx.ordered.index(group[0]) - (
                    ctx.executions_used - 1
                )
                break


class DegradeStage(_ParserStage):
    """Degradation ladder (PR 1): beam → skeleton bank → safe sentinel.

    Each tier only answers when the previous one produced nothing
    executable.  Also settles the ``executions_avoided`` accounting:
    demoted candidates that outranked the winner in the raw beam
    (round-trips the ungated loop would have spent) plus duplicates
    that shared a representative's execution.
    """

    name = "degrade"
    reads = ("chosen", "tier", "degrade", "inst_ctx", "beam", "demoted", "ordered", "executed", "dedup_avoided", "database")
    writes = ("chosen", "tier", "executions_avoided")

    def run(self, ctx: InferenceContext) -> None:
        parser = self.parser
        if ctx.chosen is None and ctx.degrade:
            ctx.chosen = parser._skeleton_fallback(ctx.database, ctx.inst_ctx)
            ctx.tier = "skeleton"
        if ctx.chosen is None:
            if ctx.degrade:
                ctx.chosen = SENTINEL_SQL
                ctx.tier = "sentinel"
            else:
                # Legacy behaviour: surface the best-ranked candidate
                # even though it does not execute.
                ctx.chosen = ctx.ordered[0]
                ctx.tier = "beam"
        ctx.executions_avoided = 0
        if ctx.tier == "beam" and ctx.chosen in ctx.beam:
            ctx.executions_avoided = sum(
                1
                for sql in ctx.beam[: ctx.beam.index(ctx.chosen)]
                if sql in ctx.demoted and sql not in ctx.executed
            )
        ctx.executions_avoided += ctx.dedup_avoided


def _analyzer(ctx: InferenceContext) -> SemanticAnalyzer:
    """The per-database semantic analyzer, resolved through the cache."""
    if ctx.analyzer is not None:
        return ctx.analyzer
    return ctx.cache.get(
        "analyzer",
        id(ctx.database),
        lambda: SemanticAnalyzer(
            SchemaCatalog.from_database(ctx.database),
            capabilities=getattr(ctx.database, "capabilities", None),
        ),
    )


#: Stage classes in execution order.
DEFAULT_STAGE_CLASSES = (
    ValueRetrieveStage,
    SchemaLinkStage,
    PromptBuildStage,
    CandidateGenStage,
    RankStage,
    LintGateStage,
    EquivDedupStage,
    ExecuteBeamStage,
    DegradeStage,
)


def contract_table() -> str:
    """The module-docstring contract block, rendered from declarations.

    Single source of truth is the ``reads`` / ``writes`` class
    attributes; a tier-1 test asserts this rendering appears verbatim
    in the module docstring so the prose can never drift from the
    checked contracts again.
    """
    width = max(len(cls.name) for cls in DEFAULT_STAGE_CLASSES)
    lines = []
    for cls in DEFAULT_STAGE_CLASSES:
        lines.append(f"{cls.name:<{width}}  reads:  {', '.join(cls.reads)}")
        lines.append(f"{'':<{width}}  writes: {', '.join(cls.writes)}")
    return "\n".join(lines)


def default_stages(parser: "CodeSParser"):
    """The canonical nine-stage list bound to ``parser``'s model assets."""
    return tuple(stage_cls(parser) for stage_cls in DEFAULT_STAGE_CLASSES)
