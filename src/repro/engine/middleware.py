"""Cross-cutting middleware: fault injection re-targeted at stages.

PRs 1–3 injected faults by wrapping whole components (FaultyDatabase,
FlakyLLM) or splicing hooks into the generate() monolith
(``beam_perturber``).  With the staged engine, fault injection is just
middleware: each injector targets one stage by name and perturbs its
inputs/outputs or raises, without the pipeline knowing it exists.  The
existing perturbers (:class:`repro.reliability.faults.SchemaHallucinator`,
:class:`~repro.reliability.faults.BeamDuplicator`) plug in unchanged
through :class:`BeamPerturbMiddleware`.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable

from repro.errors import GenerationError
from repro.reliability.clock import SYSTEM_CLOCK, Clock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import InferenceContext
    from repro.engine.engine import Stage

#: A beam perturber: rewrites the candidate list (reliability.faults).
BeamPerturber = Callable[[list[str]], list[str]]


class BeamPerturbMiddleware:
    """Apply a beam perturber right after the ``rank`` stage cuts the beam.

    Exactly where the monolith invoked ``beam_perturber`` — after the
    beam cut, before the lint gate — so SchemaHallucinator /
    BeamDuplicator behave identically as middleware.  ``provider`` is
    read per call, so installing the middleware once and flipping the
    parser's ``beam_perturber`` attribute later still works.
    """

    def __init__(
        self,
        perturber: BeamPerturber | None = None,
        provider: Callable[[], BeamPerturber | None] | None = None,
        stage: str = "rank",
    ):
        if perturber is not None and provider is not None:
            raise ValueError("pass either perturber or provider, not both")
        self._perturber = perturber
        self._provider = provider
        self.stage = stage

    def __call__(
        self,
        stage: "Stage",
        ctx: "InferenceContext",
        call_next: Callable[[], None],
    ) -> None:
        call_next()
        if stage.name != self.stage:
            return
        perturber = self._provider() if self._provider else self._perturber
        if perturber is not None and ctx.beam:
            ctx.beam = list(perturber(ctx.beam))


class StageFaultInjector:
    """Raise an injected :class:`GenerationError` entering one stage.

    The stage-granular re-target of :class:`reliability.faults.FlakyLLM`:
    the seeded RNG makes every injected fault reproducible from
    ``(seed, call order)``, and failing a *specific* stage lets tests
    prove a failure in, say, ``equiv_dedup`` degrades exactly like a
    whole-generator failure (the harness taxonomy catches both).
    """

    def __init__(self, stage: str, error_rate: float = 1.0, seed: int = 0):
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(f"error_rate must lie in [0, 1], got {error_rate}")
        self.stage = stage
        self.error_rate = float(error_rate)
        self._rng = random.Random(f"stage-fault:{stage}:{seed}")
        self.injected_failures = 0

    def __call__(
        self,
        stage: "Stage",
        ctx: "InferenceContext",
        call_next: Callable[[], None],
    ) -> None:
        if stage.name == self.stage and self._rng.random() < self.error_rate:
            self.injected_failures += 1
            raise GenerationError(
                f"injected fault entering stage {stage.name!r} "
                f"for {ctx.question[:60]!r}"
            )
        call_next()


class StageLatencyInjector:
    """Sleep (via the injectable clock) before one stage runs.

    Makes per-stage timing observable in tests without real time: with
    a ``FakeClock`` the injected delay shows up, exactly once, in that
    stage's :class:`~repro.engine.trace.StageTrace.wall_s`.
    """

    def __init__(self, stage: str, delay_s: float, clock: Clock | None = None):
        if delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {delay_s}")
        self.stage = stage
        self.delay_s = float(delay_s)
        self.clock = clock or SYSTEM_CLOCK

    def __call__(
        self,
        stage: "Stage",
        ctx: "InferenceContext",
        call_next: Callable[[], None],
    ) -> None:
        if stage.name == self.stage:
            self.clock.sleep(self.delay_s)
        call_next()
