"""The stage composer: run a fixed stage list over a shared context.

An :class:`Engine` owns an ordered list of stages and a middleware
chain that wraps *every* stage call — tracing, fault injection and any
future cross-cutting concern plug in here instead of being spliced
into the hot path.  Middleware composes like WSGI: the first entry is
outermost, and each receives ``(stage, ctx, call_next)``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol, runtime_checkable

from repro.engine.cache import StageCache
from repro.engine.context import InferenceContext

#: Middleware signature: wrap ``call_next()`` (the next middleware, or
#: ultimately ``stage.run(ctx)``) with before/after behaviour.
Middleware = Callable[["Stage", InferenceContext, Callable[[], None]], None]


@runtime_checkable
class Stage(Protocol):
    """One pipeline step with a typed contract over the shared context."""

    #: Stable identifier used in traces, middleware targeting, reports.
    name: str

    def run(self, ctx: InferenceContext) -> None:  # pragma: no cover - protocol
        ...


class Engine:
    """Composes stages and middleware into one inference pipeline."""

    def __init__(
        self,
        stages: Iterable[Stage],
        middleware: Iterable[Middleware] = (),
        cache: StageCache | None = None,
    ):
        self.stages: tuple[Stage, ...] = tuple(stages)
        self.middleware: tuple[Middleware, ...] = tuple(middleware)
        self.cache = cache if cache is not None else StageCache()
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def run(self, ctx: InferenceContext) -> InferenceContext:
        """Run every stage over ``ctx`` in order; returns ``ctx``."""
        ctx.cache = self.cache
        for stage in self.stages:
            self._invoke(stage, ctx)
        return ctx

    def _invoke(self, stage: Stage, ctx: InferenceContext) -> None:
        call: Callable[[], None] = lambda: stage.run(ctx)  # noqa: E731
        for wrapper in reversed(self.middleware):
            call = self._bind(wrapper, stage, ctx, call)
        call()

    @staticmethod
    def _bind(
        wrapper: Middleware,
        stage: Stage,
        ctx: InferenceContext,
        inner: Callable[[], None],
    ) -> Callable[[], None]:
        return lambda: wrapper(stage, ctx, inner)
