"""Per-stage observability: wall time, candidate flow, cache economy.

:class:`TraceRecorder` is an engine middleware that wraps every stage
with an injectable :class:`~repro.reliability.clock.Clock` (ARCH001:
no raw ``time.*`` reads) and appends one :class:`StageTrace` per stage
to the context's :class:`InferenceTrace`.  The trace is what
``repro trace`` prints and what the batch eval harness aggregates into
per-stage timing rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.reliability.clock import SYSTEM_CLOCK, Clock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.context import InferenceContext
    from repro.engine.engine import Stage


@dataclass(frozen=True)
class StageTrace:
    """One stage's execution record.

    ``candidates_in``/``candidates_out`` gauge the working set around
    the stage (see ``InferenceContext.working_size``); ``cache_hits`` /
    ``cache_misses`` are the stage's StageCache traffic; executions are
    the database round-trips the stage spent (``used``) and the ones
    static analysis let it skip (``avoided``).
    """

    stage: str
    wall_s: float
    candidates_in: int = 0
    candidates_out: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executions_used: int = 0
    executions_avoided: int = 0

    def as_row(self) -> dict[str, object]:
        return {
            "stage": self.stage,
            "wall_ms": round(1000 * self.wall_s, 3),
            "cand_in": self.candidates_in,
            "cand_out": self.candidates_out,
            "cache_hit": self.cache_hits,
            "cache_miss": self.cache_misses,
            "exec_used": self.executions_used,
            "exec_avoided": self.executions_avoided,
        }


@dataclass
class InferenceTrace:
    """The ordered stage records of one ``generate()`` call."""

    stages: list[StageTrace] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return sum(stage.wall_s for stage in self.stages)

    def by_stage(self) -> dict[str, StageTrace]:
        return {stage.stage: stage for stage in self.stages}

    def as_rows(self) -> list[dict[str, object]]:
        return [stage.as_row() for stage in self.stages]


class TraceRecorder:
    """Middleware recording a :class:`StageTrace` around every stage."""

    def __init__(self, clock: Clock | None = None):
        self.clock = clock or SYSTEM_CLOCK

    def __call__(
        self,
        stage: "Stage",
        ctx: "InferenceContext",
        call_next: Callable[[], None],
    ) -> None:
        if ctx.trace is None:
            ctx.trace = InferenceTrace()
        cache = ctx.cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        used_before = ctx.executions_used
        avoided_before = ctx.executions_avoided
        candidates_in = ctx.working_size()
        start = self.clock.now()
        try:
            call_next()
        finally:
            ctx.trace.stages.append(
                StageTrace(
                    stage=stage.name,
                    wall_s=self.clock.now() - start,
                    candidates_in=candidates_in,
                    candidates_out=ctx.working_size(),
                    cache_hits=(cache.hits - hits_before) if cache else 0,
                    cache_misses=(cache.misses - misses_before) if cache else 0,
                    executions_used=ctx.executions_used - used_before,
                    executions_avoided=ctx.executions_avoided - avoided_before,
                )
            )
