"""The shared mutable state one inference flows through the engine.

Every stage reads the fields earlier stages produced and writes its
own; the :class:`InferenceContext` is the *only* channel between
stages, so a stage's contract is exactly "reads X, writes Y" — see the
stage docstrings in :mod:`repro.engine._stages` for the full table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.analyzer import SemanticAnalyzer
    from repro.analysis.diagnostics import Diagnostic
    from repro.core.slotfill import InstantiationContext
    from repro.db.database import Database
    from repro.datasets.base import Text2SQLExample
    from repro.engine.cache import StageCache
    from repro.engine.trace import InferenceTrace
    from repro.linking.classifier import SchemaScores
    from repro.linking.schema_filter import FilteredSchema
    from repro.promptgen.builder import DatabasePrompt, PromptBuilder
    from repro.retrieval.value_retriever import MatchedValue


@dataclass
class InferenceContext:
    """Mutable per-question state threaded through the staged pipeline."""

    # -- request (set by the caller, read-only for stages) -------------------
    question: str
    database: "Database"
    demonstrations: "list[Text2SQLExample] | None" = None
    external_knowledge: str = ""
    degrade: bool = True
    #: Effort tier requested by the caller: ``"full"`` runs the whole
    #: beam pipeline; ``"skeleton"`` skips candidate generation and
    #: ranking so the degrade stage answers from the skeleton bank —
    #: the serving layer's load-shedding ladder picks this under
    #: overload.  Requires ``degrade=True``.
    effort: str = "full"

    # -- engine plumbing (set by Engine.run) ---------------------------------
    cache: "StageCache | None" = field(default=None, repr=False)
    trace: "InferenceTrace | None" = field(default=None, repr=False)

    # -- resolved per-database resources -------------------------------------
    builder: "PromptBuilder | None" = field(default=None, repr=False)
    analyzer: "SemanticAnalyzer | None" = field(default=None, repr=False)
    estimator: Any = field(default=None, repr=False)

    # -- stage artifacts, in pipeline order ----------------------------------
    linking_question: str = ""
    matched: "list[MatchedValue]" = field(default_factory=list, repr=False)
    filtered: "FilteredSchema | None" = field(default=None, repr=False)
    schema: Any = field(default=None, repr=False)  # effective (ablated) view
    scores: "SchemaScores | None" = field(default=None, repr=False)
    prompt: "DatabasePrompt | None" = field(default=None, repr=False)
    inst_ctx: "InstantiationContext | None" = field(default=None, repr=False)
    templates: list = field(default_factory=list, repr=False)
    raw_candidates: list = field(default_factory=list, repr=False)
    candidates: list = field(default_factory=list, repr=False)
    beam: list[str] = field(default_factory=list, repr=False)
    ordered: list[str] = field(default_factory=list, repr=False)
    lint: "dict[str, tuple[Diagnostic, ...]]" = field(
        default_factory=dict, repr=False
    )
    demoted: set[str] = field(default_factory=set, repr=False)
    groups: list[list[str]] = field(default_factory=list, repr=False)
    representatives: list[str] = field(default_factory=list, repr=False)
    beam_deduped: int = 0
    dedup_avoided: int = 0
    executed: set[str] = field(default_factory=set, repr=False)
    executions_used: int = 0
    chosen: str | None = None
    tier: str = "beam"
    executions_avoided: int = 0

    def working_size(self) -> int:
        """Size of the most-derived candidate set produced so far.

        Used by the trace recorder as the candidates-in/out gauge: each
        stage narrows (or widens) the working set, and this reports the
        newest non-empty representation of it.
        """
        for stage_output in (
            self.representatives,
            self.ordered,
            self.beam,
            self.candidates,
            self.raw_candidates,
            self.templates,
        ):
            if stage_output:
                return len(stage_output)
        return 0
