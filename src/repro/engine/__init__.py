"""Staged inference engine: the generate() pipeline as composable parts.

The pipeline the paper describes — prompt construction (§6), template
retrieval (§8), execution-guided beam selection (§9.1.4), plus the
degradation ladder, lint gate and equivalence dedup grown in PRs 1–3 —
runs as nine explicit stages over a shared mutable
:class:`InferenceContext`, composed by an :class:`Engine`:

    value_retrieve → schema_link → prompt_build → candidate_gen →
    rank → lint_gate → equiv_dedup → execute_beam → degrade

Cross-cutting concerns are middleware wrapping every stage — the
:class:`TraceRecorder` (per-stage wall time via the injectable Clock,
candidate counts, cache traffic, executions), and the fault injectors
of :mod:`repro.engine.middleware`.  Per-database resources (prompt
builders, analyzers with their schema catalogs, cost estimators,
linking scores) resolve through a clearable :class:`StageCache`, so
batch evaluation reuses them across every question on a database.

Stage internals live in :mod:`repro.engine._stages` and may not be
imported from outside this package (ARCH004); build pipelines with
:func:`build_default_engine`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.engine.cache import StageCache
from repro.engine.context import InferenceContext
from repro.engine.engine import Engine, Middleware, Stage
from repro.engine.middleware import (
    BeamPerturbMiddleware,
    StageFaultInjector,
    StageLatencyInjector,
)
from repro.engine.trace import InferenceTrace, StageTrace, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.parser import CodeSParser

#: The canonical stage names, in execution order.
STAGE_NAMES = (
    "value_retrieve",
    "schema_link",
    "prompt_build",
    "candidate_gen",
    "rank",
    "lint_gate",
    "equiv_dedup",
    "execute_beam",
    "degrade",
)


def build_default_engine(
    parser: "CodeSParser",
    middleware: Iterable[Middleware] = (),
    cache: StageCache | None = None,
) -> Engine:
    """The nine-stage engine bound to ``parser``'s model assets.

    ``middleware`` wraps every stage (first entry outermost);
    ``cache`` is the per-database :class:`StageCache` (a fresh one per
    engine when omitted, so engines can be isolated per database).
    """
    from repro.engine._stages import default_stages

    return Engine(default_stages(parser), middleware=middleware, cache=cache)


__all__ = [
    "BeamPerturbMiddleware",
    "Engine",
    "InferenceContext",
    "InferenceTrace",
    "Middleware",
    "STAGE_NAMES",
    "Stage",
    "StageCache",
    "StageFaultInjector",
    "StageLatencyInjector",
    "StageTrace",
    "TraceRecorder",
    "build_default_engine",
]
