"""Configuration of the prompt builder.

Every toggle corresponds to an ablation arm in Table 9: the schema
filter, the value retriever, and the four metadata components (column
types, comments, representative values, primary/foreign keys).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PromptOptions:
    """Switches and budgets for database prompt construction."""

    use_schema_filter: bool = True
    use_value_retriever: bool = True
    include_column_types: bool = True
    include_comments: bool = True
    include_representative_values: bool = True
    include_keys: bool = True
    top_k1: int = 6
    top_k2: int = 10
    representative_k: int = 2
    max_prompt_chars: int = 6_000

    def without(self, component: str) -> "PromptOptions":
        """Copy with one named component disabled (ablation helper).

        Component names mirror Table 9's rows: ``schema_filter``,
        ``value_retriever``, ``column_types``, ``comments``,
        ``representative_values``, ``keys``.
        """
        mapping = {
            "schema_filter": "use_schema_filter",
            "value_retriever": "use_value_retriever",
            "column_types": "include_column_types",
            "comments": "include_comments",
            "representative_values": "include_representative_values",
            "keys": "include_keys",
        }
        if component not in mapping:
            raise ValueError(
                f"unknown component {component!r}; expected one of {sorted(mapping)}"
            )
        return replace(self, **{mapping[component]: False})
